"""CI lint sweep: every shipped model, one SARIF artifact.

Lints every DSL file under ``examples/models/`` plus one scenario per
:class:`~repro.engine.scenarios.ScenarioGenerator` template family
(rendered through :func:`~repro.dfd.to_dsl`, so the generator's
builder models exercise the parser's span table too), prints the text
report per model and merges everything into a single SARIF 2.1.0
document (one run per model) for code-scanning upload.

Exit 1 if any model produces an ERROR-level diagnostic — shipped
examples and generated templates must stay structurally clean;
warnings are reported but do not fail the sweep.

    PYTHONPATH=src python scripts/lint_sweep.py [-o lint.sarif]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

from repro.dfd import parse_dsl, to_dsl
from repro.engine import ScenarioGenerator
from repro.lint import render, render_text, run_lint

#: Scenarios generated per sweep — enough to hit every template
#: family and both surgery variants (the stream cycles families).
GENERATED_SCENARIOS = 8


def _example_reports(models_dir: str):
    for path in sorted(glob.glob(os.path.join(models_dir, "*.dsl"))):
        with open(path, "r", encoding="utf-8") as handle:
            system = parse_dsl(handle.read(), validate=False)
        yield run_lint(system, path=path)


def _generated_reports():
    seen = set()
    generator = ScenarioGenerator(seed=0)
    for scenario in generator.generate(GENERATED_SCENARIOS):
        key = (scenario.family, scenario.variant)
        if key in seen:
            continue
        seen.add(key)
        # Round-trip through the DSL so the linted model carries real
        # parser spans, exactly like a user-authored file.
        system = parse_dsl(to_dsl(scenario.system), validate=False)
        yield run_lint(system,
                       path=f"<generated:{scenario.name}>")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models-dir", default="examples/models",
                        help="directory of example DSL files")
    parser.add_argument("-o", "--output", default="lint.sarif",
                        help="merged SARIF output path")
    args = parser.parse_args(argv)

    reports = list(_example_reports(args.models_dir))
    reports.extend(_generated_reports())
    if not reports:
        print("error: no models found to lint", file=sys.stderr)
        return 2

    errors = warnings = 0
    runs = []
    for report in reports:
        sys.stdout.write(render_text(report))
        errors += report.errors
        warnings += report.warnings
        runs.extend(json.loads(render(report, "sarif"))["runs"])

    merged = {
        "$schema": runs and json.loads(
            render(reports[0], "sarif"))["$schema"],
        "version": "2.1.0",
        "runs": runs,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"linted {len(reports)} models: {errors} error(s), "
          f"{warnings} warning(s); wrote {args.output}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
