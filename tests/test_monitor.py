"""Unit tests for runtime monitoring: events, tracker, alerts, runtime."""

import pytest

from repro.casestudies import (
    MEDICAL_SERVICE,
    RESEARCH_SERVICE,
    build_surgery_system,
    surgery_patient,
)
from repro.core import ActionType, GenerationOptions, generate_lts
from repro.core.risk import DisclosureRiskAnalyzer, RiskLevel
from repro.errors import MonitorError, UnknownEventError
from repro.monitor import (
    AlertSeverity,
    DivergenceAlert,
    PrivacyMonitor,
    RiskAlert,
    ServiceRuntime,
    collect_event,
    create_event,
    read_event,
)

USER_VALUES = {"name": "Ada", "dob": "1980-01-01",
               "medical_issues": "cough"}


class TestObservedEvent:
    def test_field_order_insensitive_matching(self, medical_lts):
        first = medical_lts.transitions_from(medical_lts.initial.sid)[0]
        event = collect_event("Receptionist", ["dob", "name"])
        assert event.matches(first)

    def test_wrong_actor_does_not_match(self, medical_lts):
        first = medical_lts.transitions_from(medical_lts.initial.sid)[0]
        assert not collect_event("Doctor", ["name", "dob"]).matches(first)

    def test_describe(self):
        event = read_event("Nurse", "EHR", ["name"])
        assert "read{name}" in event.describe()
        assert "EHR -> Nurse" in event.describe()

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            collect_event("A", [])


class TestPrivacyMonitor:
    def test_tracks_full_session(self, surgery_system, medical_lts):
        monitor = PrivacyMonitor(medical_lts)
        runtime = ServiceRuntime(surgery_system, monitor=monitor)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        assert len(monitor.trace) == 6
        assert not monitor.alerts
        # final state: nurse has treatment
        assert monitor.current_state.vector.has("Nurse", "treatment")

    def test_exposure_of(self, surgery_system, medical_lts):
        monitor = PrivacyMonitor(medical_lts)
        ServiceRuntime(surgery_system, monitor=monitor).run_service(
            MEDICAL_SERVICE, USER_VALUES)
        assert "treatment" in monitor.exposure_of("Nurse")
        assert "diagnosis" not in monitor.exposure_of("Nurse")

    def test_divergence_alert_non_strict(self, medical_lts):
        monitor = PrivacyMonitor(medical_lts, strict=False)
        result = monitor.observe(read_event("Nurse", "EHR", ["name"]))
        assert result is None
        assert len(monitor.alerts) == 1
        assert isinstance(monitor.alerts[0], DivergenceAlert)
        assert monitor.alerts[0].severity is AlertSeverity.CRITICAL

    def test_divergence_strict_raises(self, medical_lts):
        monitor = PrivacyMonitor(medical_lts, strict=True)
        with pytest.raises(UnknownEventError):
            monitor.observe(read_event("Nurse", "EHR", ["name"]))

    def test_risk_alert_on_annotated_transition(self, surgery_system):
        patient = surgery_patient()
        analyzer = DisclosureRiskAnalyzer(surgery_system)
        report = analyzer.analyse(patient)
        lts = report.events[0].transition  # get the annotated LTS
        # regenerate via analyzer to fetch the LTS the events reference
        # (events hold transitions of the generated LTS)
        annotated_lts = None
        # The transition knows its LTS only implicitly; rebuild:
        non_allowed = patient.non_allowed_actors(surgery_system)
        from repro.core import ModelGenerator
        annotated_lts = ModelGenerator(surgery_system).generate(
            GenerationOptions(
                services=(MEDICAL_SERVICE,),
                include_potential_reads=True,
                potential_read_actors=frozenset(non_allowed)))
        analyzer.analyse(patient, lts=annotated_lts)
        monitor = PrivacyMonitor(annotated_lts,
                                 acceptable_risk=RiskLevel.LOW)
        runtime = ServiceRuntime(surgery_system, monitor=monitor)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        # now the administrator actually reads the EHR
        admin_read = read_event(
            "Administrator", "EHR",
            ["diagnosis", "dob", "medical_issues", "name", "treatment"])
        matched = monitor.observe(admin_read)
        assert matched is not None
        risk_alerts = [a for a in monitor.alerts
                       if isinstance(a, RiskAlert)]
        assert len(risk_alerts) == 1
        assert risk_alerts[0].level is RiskLevel.MEDIUM
        assert risk_alerts[0].severity is AlertSeverity.CRITICAL
        assert monitor.critical_alerts()

    def test_on_alert_callback(self, medical_lts):
        seen = []
        monitor = PrivacyMonitor(medical_lts, on_alert=seen.append)
        monitor.observe(read_event("Nurse", "EHR", ["name"]))
        assert len(seen) == 1

    def test_reset(self, surgery_system, medical_lts):
        monitor = PrivacyMonitor(medical_lts)
        ServiceRuntime(surgery_system, monitor=monitor).run_service(
            MEDICAL_SERVICE, USER_VALUES)
        monitor.reset()
        assert monitor.current_state.sid == medical_lts.initial.sid
        assert not monitor.trace


class TestServiceRuntime:
    def test_event_actions_follow_extraction_rules(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        events = runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        actions = [e.action for e in events]
        assert actions == [
            ActionType.COLLECT, ActionType.CREATE, ActionType.READ,
            ActionType.COLLECT, ActionType.CREATE, ActionType.READ,
        ]

    def test_stores_hold_real_records(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        ehr = runtime.store("EHR").snapshot()
        assert len(ehr) == 1
        assert ehr[0]["name"] == "Ada"
        assert ehr[0]["diagnosis"] == "<diagnosis by Doctor>"

    def test_originated_values_override(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES,
                            originated_values={"diagnosis": "bronchitis"})
        ehr = runtime.store("EHR").snapshot()
        assert ehr[0]["diagnosis"] == "bronchitis"

    def test_research_service_renames_anon_fields(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        events = runtime.run_service(RESEARCH_SERVICE, {})
        anon = [e for e in events if e.action is ActionType.ANON][0]
        assert set(anon.fields) == {
            "dob_anon", "medical_issues_anon", "diagnosis_anon",
            "treatment_anon"}
        assert len(runtime.store("AnonEHR")) == 1

    def test_missing_user_values_rejected(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        with pytest.raises(MonitorError, match="missing fields"):
            runtime.run_service(MEDICAL_SERVICE, {"name": "Ada"})

    def test_unknown_store_lookup(self, surgery_system):
        with pytest.raises(MonitorError, match="unknown datastore"):
            ServiceRuntime(surgery_system).store("Ghost")

    def test_policy_enforced_at_runtime(self):
        """A flow the ACL does not back fails at runtime with
        AccessDenied — the static 'unbacked-read' warning made real."""
        from repro.dfd import SystemBuilder
        from repro.errors import AccessDenied
        system = (SystemBuilder("s").schema("S", ["x"])
                  .actor("A").actor("B")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "D", ["x"])
                  .flow(3, "D", "B", ["x"])
                  .allow("A", "create", "D")
                  .build(strict=False))
        runtime = ServiceRuntime(system)
        with pytest.raises(AccessDenied):
            runtime.run_service("svc", {"x": "v"})

    def test_enforcement_can_be_disabled(self):
        from repro.dfd import SystemBuilder
        system = (SystemBuilder("s").schema("S", ["x"])
                  .actor("A").actor("B")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "D", ["x"])
                  .flow(3, "D", "B", ["x"])
                  .build(strict=False))
        runtime = ServiceRuntime(system, enforce_policy=False)
        events = runtime.run_service("svc", {"x": "v"})
        assert len(events) == 3

    def test_events_accumulate_across_sessions(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        assert len(runtime.events) == 12
        assert len(runtime.store("EHR")) == 2
