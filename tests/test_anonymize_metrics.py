"""Tests for the combined privacy-metrics summary and CLI export."""

import json

import pytest

from repro.anonymize import privacy_metrics
from repro.casestudies import table1_records


class TestPrivacyMetrics:
    def test_table1_posture(self, table1):
        metrics = privacy_metrics(table1, ("age", "height"), "weight")
        assert metrics.records == 6
        assert metrics.classes == 3
        assert metrics.k == 2
        # weights within classes are distinct pairs -> distinct l = 2
        assert metrics.distinct_l == 2
        assert 0.0 <= metrics.t <= 1.0
        assert metrics.prosecutor_max == pytest.approx(0.5)
        assert metrics.marketer == pytest.approx(0.5)

    def test_satisfies_thresholds(self, table1):
        metrics = privacy_metrics(table1, ("age", "height"), "weight")
        assert metrics.satisfies(k=2, l_distinct=2)
        assert not metrics.satisfies(k=3)
        assert not metrics.satisfies(l_distinct=3)
        assert not metrics.satisfies(t=0.0)

    def test_summary_table(self, table1):
        metrics = privacy_metrics(table1, ("age", "height"), "weight")
        table = metrics.summary_table()
        assert "k-anonymity" in table
        assert "t-closeness" in table
        assert "prosecutor" in table

    def test_empty_release(self):
        metrics = privacy_metrics([], ("age",), "weight")
        assert metrics.k == 0
        assert metrics.satisfies()  # no thresholds -> trivially true


class TestCliExport:
    @pytest.fixture
    def model_file(self, tmp_path):
        from repro.casestudies import build_surgery_system
        from repro.dfd import to_dsl
        path = tmp_path / "surgery.dsl"
        path.write_text(to_dsl(build_surgery_system()))
        return str(path)

    def test_export_to_stdout(self, model_file, capsys):
        from repro.cli import main
        assert main(["export", model_file,
                     "--services", "MedicalService"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["states"] == 10
        assert data["stats"]["transitions"] == 12

    def test_export_to_file_without_variables(self, model_file,
                                              tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "lts.json"
        assert main(["export", model_file, "--no-variables",
                     "-o", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert "true_variables" not in data["states"][0]
