"""Unit tests for the value-risk engine (paper III.B, Table I)."""

import pytest

from repro.casestudies import table1_records
from repro.core.risk import (
    ValueRiskPolicy,
    render_risk_table,
    risk_sweep,
    value_risk,
)
from repro.datastore import make_records
from repro.errors import PolicyViolationError


@pytest.fixture
def policy():
    return ValueRiskPolicy(sensitive_field="weight", closeness=5.0,
                           confidence=0.9)


class TestPolicy:
    def test_values_match_numeric_closeness(self, policy):
        assert policy.values_match(100, 102)
        assert policy.values_match(100, 105)
        assert not policy.values_match(100, 106)

    def test_values_match_non_numeric_equality(self, policy):
        assert policy.values_match("flu", "flu")
        assert not policy.values_match("flu", "cold")

    def test_validation(self):
        with pytest.raises(ValueError):
            ValueRiskPolicy("w", closeness=-1)
        with pytest.raises(ValueError):
            ValueRiskPolicy("w", confidence=0.0)
        with pytest.raises(ValueError):
            ValueRiskPolicy("w", max_violation_fraction=2.0)


class TestTable1Exact:
    """The six records and three columns of the paper's Table I."""

    def test_height_column(self, table1, policy):
        result = value_risk(table1, ["height"], policy)
        assert [r.fraction for r in result.per_record] == \
            ["2/4", "2/4", "2/4", "2/4", "1/2", "1/2"]
        assert result.violations == 0

    def test_age_column(self, table1, policy):
        result = value_risk(table1, ["age"], policy)
        assert [r.fraction for r in result.per_record] == \
            ["2/2", "2/2", "3/4", "3/4", "1/4", "3/4"]
        assert result.violations == 2

    def test_age_height_column(self, table1, policy):
        result = value_risk(table1, ["age", "height"], policy)
        assert [r.fraction for r in result.per_record] == \
            ["2/2", "2/2", "2/2", "2/2", "1/2", "1/2"]
        assert result.violations == 4

    def test_violations_monotone_in_fields_read(self, table1, policy):
        results = risk_sweep(table1, [["height"], ["age"],
                                      ["age", "height"]], policy)
        assert [r.violations for r in results] == [0, 2, 4]

    def test_render_matches_table_layout(self, table1, policy):
        results = risk_sweep(table1, [["height"], ["age"],
                                      ["age", "height"]], policy)
        text = render_risk_table(table1, ["age", "height", "weight"],
                                 results)
        assert "30-40" in text and "180-200" in text
        assert "2/4" in text and "3/4" in text
        assert "Violations:" in text
        last_line = text.splitlines()[-1]
        assert "0" in last_line and "2" in last_line and "4" in last_line


class TestScoringSemantics:
    def test_empty_fields_read_uses_whole_set(self, policy):
        records = make_records([
            {"weight": 100}, {"weight": 102}, {"weight": 150},
        ])
        result = value_risk(records, [], policy)
        assert [r.fraction for r in result.per_record] == \
            ["2/3", "2/3", "1/3"]

    def test_risk_bounds(self, table1, policy):
        for result in risk_sweep(table1, [["age"], ["height"]], policy):
            for record_risk in result.per_record:
                assert 0 < record_risk.risk <= 1
                assert record_risk.frequency >= 1  # self always matches

    def test_violation_threshold_is_inclusive(self):
        policy = ValueRiskPolicy("w", closeness=0, confidence=0.5)
        records = make_records([
            {"q": 1, "w": 7}, {"q": 1, "w": 7},
            {"q": 1, "w": 8}, {"q": 1, "w": 9},
        ])
        result = value_risk(records, ["q"], policy)
        # w=7 risk = 2/4 = 0.5 -> violated at confidence 0.5
        violated = [r for r in result.per_record if r.violated]
        assert len(violated) == 2

    def test_violation_fraction_and_max_risk(self, table1, policy):
        result = value_risk(table1, ["age"], policy)
        assert result.violation_fraction == pytest.approx(2 / 6)
        assert result.max_risk == 1.0

    def test_empty_records(self, policy):
        result = value_risk([], ["age"], policy)
        assert result.violations == 0
        assert result.violation_fraction == 0.0
        assert result.max_risk == 0.0


class TestEnforcement:
    def test_paper_design_gate(self, table1):
        """IV.B: "a system designer could declare that a number of
        violations above 50% is unacceptable. The system would now
        throw an error if the above data was used"."""
        policy = ValueRiskPolicy("weight", closeness=5.0, confidence=0.9,
                                 max_violation_fraction=0.5)
        result = value_risk(table1, ["age", "height"], policy)
        assert result.violation_fraction > 0.5
        with pytest.raises(PolicyViolationError, match="another form"):
            result.enforce()

    def test_under_threshold_passes(self, table1):
        policy = ValueRiskPolicy("weight", closeness=5.0, confidence=0.9,
                                 max_violation_fraction=0.5)
        value_risk(table1, ["height"], policy).enforce()

    def test_no_threshold_never_raises(self, table1, policy):
        value_risk(table1, ["age", "height"], policy).enforce()

    def test_error_carries_violated_records(self, table1):
        policy = ValueRiskPolicy("weight", closeness=5.0, confidence=0.9,
                                 max_violation_fraction=0.1)
        result = value_risk(table1, ["age"], policy)
        with pytest.raises(PolicyViolationError) as excinfo:
            result.enforce()
        assert len(excinfo.value.violations) == 2
