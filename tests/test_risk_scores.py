"""Unit tests for the decomposable privacy-score module."""

import pytest

from repro.core.risk import (
    FieldScore,
    ScoreWeights,
    composite_score,
    score_fields,
)
from repro.errors import AnalysisError


class TestScoreWeights:
    def test_defaults_privilege_semantic(self):
        weights = ScoreWeights()
        assert weights.items() == (("linkability", 0.2),
                                   ("semantic", 0.5),
                                   ("uniqueness", 0.3))
        assert weights.total == pytest.approx(1.0)

    def test_combine_normalises_by_total(self):
        # (1, 0, 0) and (2, 0, 0) are the same policy
        single = ScoreWeights(semantic=1, uniqueness=0, linkability=0)
        double = ScoreWeights(semantic=2, uniqueness=0, linkability=0)
        assert single.combine(0.8, 0.1, 0.9) == \
            double.combine(0.8, 0.1, 0.9) == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [
        {"semantic": -1},
        {"uniqueness": "heavy"},
        {"linkability": True},
        {"semantic": 0, "uniqueness": 0, "linkability": 0},
    ])
    def test_invalid_weights_are_analysis_errors(self, bad):
        merged = {"semantic": 0.5, "uniqueness": 0.3,
                  "linkability": 0.2, **bad}
        with pytest.raises(AnalysisError, match="score weight"):
            ScoreWeights(**merged)

    def test_from_params_none_is_default_policy(self):
        assert ScoreWeights.from_params(None) == ScoreWeights()

    def test_from_params_merges_partial_mapping(self):
        weights = ScoreWeights.from_params({"semantic": 2})
        assert weights == ScoreWeights(semantic=2, uniqueness=0.3,
                                       linkability=0.2)

    @pytest.mark.parametrize("bad,pattern", [
        (["semantic", 1.0], "must be a mapping"),
        ({"semntic": 1.0}, "unknown score weight names"),
        ({"semantic": -0.5}, "non-negative"),
    ])
    def test_from_params_rejects_malformed_input(self, bad, pattern):
        with pytest.raises(AnalysisError, match=pattern):
            ScoreWeights.from_params(bad)

    def test_cache_key_is_order_stable(self):
        weights = ScoreWeights(semantic=1, uniqueness=2, linkability=3)
        assert weights.cache_key() == (("linkability", 3.0),
                                       ("semantic", 1.0),
                                       ("uniqueness", 2.0))


class TestScoreFields:
    def test_semantic_follows_kind_taxonomy(self, surgery_system):
        by_field = {score.field: score
                    for score in score_fields(surgery_system)}
        assert by_field["name"].semantic == 1.0          # IDENTIFIER
        assert by_field["diagnosis"].semantic == 0.9     # SENSITIVE
        assert by_field["dob"].semantic == 0.7           # QUASI
        assert by_field["appointment"].semantic == 0.2   # REGULAR

    def test_anonymised_variants_are_dampened(self, surgery_system):
        by_field = {score.field: score
                    for score in score_fields(surgery_system)}
        for original in ("diagnosis", "dob", "treatment"):
            anon = by_field[original + "_anon"]
            assert anon.semantic == \
                pytest.approx(by_field[original].semantic / 2)
            assert anon.uniqueness == \
                pytest.approx(by_field[original].uniqueness / 2)

    def test_uniqueness_uses_one_over_k_with_records(self,
                                                     surgery_system):
        # 'dob' pairs share values -> k=2 -> 1/2; one is unique -> the
        # priors are replaced by the measured proxy either way.
        from repro.datastore import Record
        records = [Record({"dob": "1980"}), Record({"dob": "1980"}),
                   Record({"dob": "1990"}), Record({"dob": "1990"})]
        by_field = {score.field: score for score in
                    score_fields(surgery_system, records=records)}
        assert by_field["dob"].uniqueness == pytest.approx(0.5)
        # fields absent from every record keep their kind prior
        assert by_field["name"].uniqueness == 1.0

    def test_linkability_is_reader_fraction(self, surgery_system):
        by_field = {score.field: score
                    for score in score_fields(surgery_system)}
        # 4 of 5 actors can read some store holding 'name'
        assert by_field["name"].linkability == pytest.approx(0.8)
        # anonymised view is readable by the researcher only
        assert by_field["diagnosis_anon"].linkability == \
            pytest.approx(0.2)

    def test_composite_is_weighted_sum(self, surgery_system):
        weights = ScoreWeights(semantic=2, uniqueness=1, linkability=1)
        for score in score_fields(surgery_system, weights=weights):
            assert score.composite == pytest.approx(
                (2 * score.semantic + score.uniqueness
                 + score.linkability) / 4)

    def test_deterministic_and_sorted(self, surgery_system):
        first = score_fields(surgery_system)
        second = score_fields(surgery_system)
        assert first == second
        assert [s.field for s in first] == \
            sorted(surgery_system.personal_fields())

    def test_summary_tuple_rounds_for_the_wire(self):
        score = FieldScore("f", 1 / 3, 2 / 3, 0.1, 0.123456789)
        assert score.summary_tuple() == \
            ("f", 0.333333, 0.666667, 0.1, 0.123457)


class TestCompositeScore:
    def test_mean_of_field_composites(self, surgery_system):
        scores = score_fields(surgery_system)
        assert composite_score(scores) == pytest.approx(
            sum(s.composite for s in scores) / len(scores))

    def test_empty_model_scores_zero(self):
        assert composite_score(()) == 0.0
