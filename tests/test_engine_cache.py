"""The engine's cache stack: LRU, disk, tiering, accounting."""

import os
import pickle

import pytest

from repro.engine import DiskCache, LRUCache, TieredCache, build_cache


class TestLRUCache:
    def test_get_put_and_stats(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "store")
        DiskCache(directory).put("k", {"x": (1, 2)})
        reopened = DiskCache(directory)
        assert reopened.get("k") == {"x": (1, 2)}
        assert reopened.stats.hits == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        directory = str(tmp_path / "store")
        cache = DiskCache(directory)
        cache.put("k", 42)
        with open(os.path.join(directory, "k.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("k") is None
        assert cache.stats.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = DiskCache(str(tmp_path / "store"))
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_no_partial_files_left_behind(self, tmp_path):
        directory = str(tmp_path / "store")
        cache = DiskCache(directory)
        cache.put("k", list(range(100)))
        leftovers = [n for n in os.listdir(directory)
                     if n.endswith(".tmp")]
        assert leftovers == []


class TestTieredCache:
    def test_lower_tier_hit_promotes(self, tmp_path):
        memory = LRUCache(8)
        disk = DiskCache(str(tmp_path / "store"))
        disk.put("k", "v")
        tiered = TieredCache(memory, disk)
        assert tiered.get("k") == "v"
        # Promoted: the next lookup hits the memory layer.
        assert memory.get("k") == "v"
        assert tiered.stats.hits == 1

    def test_put_writes_all_layers(self, tmp_path):
        memory = LRUCache(8)
        disk = DiskCache(str(tmp_path / "store"))
        TieredCache(memory, disk).put("k", "v")
        assert memory.get("k") == "v"
        assert disk.get("k") == "v"

    def test_miss_counts_once_at_tier_level(self, tmp_path):
        tiered = TieredCache(LRUCache(8),
                             DiskCache(str(tmp_path / "store")))
        assert tiered.get("absent") is None
        assert tiered.stats.misses == 1

    def test_requires_a_layer(self):
        with pytest.raises(ValueError):
            TieredCache()


class TestBuildCache:
    def test_memory_only_without_directory(self):
        assert isinstance(build_cache(16), LRUCache)

    def test_tiered_with_directory(self, tmp_path):
        cache = build_cache(16, str(tmp_path / "store"))
        assert isinstance(cache, TieredCache)
        assert isinstance(cache.layers[0], LRUCache)
        assert isinstance(cache.layers[1], DiskCache)

    def test_stats_describe_renders(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        text = cache.stats.describe()
        assert "1 hits / 2 lookups" in text
