"""The engine's cache stack: LRU, disk, tiering, lifecycle,
accounting."""

import os
import pickle

import pytest

from repro.engine import (
    DiskCache,
    LRUCache,
    TieredCache,
    build_cache,
    prune_stores,
    store_report,
)


class TestLRUCache:
    def test_get_put_and_stats(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "store")
        DiskCache(directory).put("k", {"x": (1, 2)})
        reopened = DiskCache(directory)
        assert reopened.get("k") == {"x": (1, 2)}
        assert reopened.stats.hits == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        directory = str(tmp_path / "store")
        cache = DiskCache(directory)
        cache.put("k", 42)
        with open(os.path.join(directory, "k.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("k") is None
        assert cache.stats.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = DiskCache(str(tmp_path / "store"))
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_no_partial_files_left_behind(self, tmp_path):
        directory = str(tmp_path / "store")
        cache = DiskCache(directory)
        cache.put("k", list(range(100)))
        leftovers = [n for n in os.listdir(directory)
                     if n.endswith(".tmp")]
        assert leftovers == []


class TestDiskCacheLifecycle:
    def _aged_cache(self, tmp_path, ages):
        """A cache whose entries' mtimes are backdated by ``ages``
        seconds (entry keys are e0, e1, ...)."""
        import time
        cache = DiskCache(str(tmp_path / "store"))
        now = time.time()
        for index, age in enumerate(ages):
            key = f"e{index}"
            cache.put(key, "x" * 100)
            path = os.path.join(cache.directory, f"{key}.pkl")
            os.utime(path, (now - age, now - age))
        return cache

    def test_entries_report_size_and_age_oldest_first(self, tmp_path):
        cache = self._aged_cache(tmp_path, [10.0, 500.0])
        entries = cache.entries()
        assert [e.key for e in entries] == ["e1", "e0"]
        assert all(e.size > 0 for e in entries)
        assert entries[0].age > entries[1].age
        assert cache.size_bytes() == sum(e.size for e in entries)

    def test_prune_by_age(self, tmp_path):
        cache = self._aged_cache(tmp_path, [10.0, 500.0, 1000.0])
        report = cache.prune(max_age=60.0)
        assert report.removed == 2
        assert report.kept == 1
        assert cache.get("e0") is not None
        assert cache.get("e1") is None
        assert cache.stats.evictions == 2

    def test_prune_by_size_budget_evicts_lru_first(self, tmp_path):
        cache = self._aged_cache(tmp_path, [10.0, 500.0, 1000.0])
        entry_size = cache.entries()[0].size
        report = cache.prune(max_bytes=entry_size)
        assert report.removed == 2
        assert report.kept_bytes <= entry_size
        # The most recently used entry survives.
        assert cache.get("e0") is not None

    def test_hit_refreshes_lru_order(self, tmp_path):
        cache = self._aged_cache(tmp_path, [500.0, 1000.0])
        assert cache.get("e1") is not None     # touch the older entry
        entry_size = cache.entries()[0].size
        cache.prune(max_bytes=entry_size)
        assert cache.get("e1") is not None
        assert cache.get("e0") is None

    def test_constructor_budgets_default_prune(self, tmp_path):
        cache = DiskCache(str(tmp_path / "store"), max_bytes=0)
        cache.put("a", 1)
        report = cache.prune()
        assert report.removed == 1
        assert len(cache) == 0

    def test_prune_without_budgets_is_a_noop(self, tmp_path):
        cache = self._aged_cache(tmp_path, [500.0])
        report = cache.prune()
        assert report.removed == 0
        assert report.kept == 1

    def test_tiered_prune_delegates_to_disk(self, tmp_path):
        tiered = build_cache(8, str(tmp_path / "store"))
        tiered.put("k", "v")
        report = tiered.prune(max_bytes=0)
        assert report.removed == 1
        # The memory layer is untouched (bounded by the LRU itself).
        assert tiered.get("k") == "v"

    def test_store_report_and_prune_stores(self, tmp_path):
        from repro.casestudies import build_surgery_system, \
            surgery_patient
        from repro.engine import AnalysisJob, BatchEngine
        cache_dir = str(tmp_path / "cache")
        engine = BatchEngine(cache_dir=cache_dir)
        engine.run([AnalysisJob(system=build_surgery_system(),
                                user=surgery_patient())])
        report = store_report(cache_dir)
        assert set(report) == {"results", "lts", "taint", "lint"}
        assert report["results"]["entries"] == 1
        assert report["lts"]["bytes"] > 0
        # The taint store only fills under run(screen=True), the lint
        # store only under run(lint=...).
        assert report["taint"]["entries"] == 0
        assert report["lint"]["entries"] == 0
        pruned = prune_stores(cache_dir, max_bytes=0)
        assert pruned["results"].removed == 1
        assert pruned["lts"].removed == 1
        assert store_report(cache_dir)["lts"]["entries"] == 0

    def test_store_report_skips_missing_dir(self, tmp_path):
        assert store_report(str(tmp_path / "nowhere")) == {}
        assert prune_stores(str(tmp_path / "nowhere")) == {}


class TestTieredCache:
    def test_lower_tier_hit_promotes(self, tmp_path):
        memory = LRUCache(8)
        disk = DiskCache(str(tmp_path / "store"))
        disk.put("k", "v")
        tiered = TieredCache(memory, disk)
        assert tiered.get("k") == "v"
        # Promoted: the next lookup hits the memory layer.
        assert memory.get("k") == "v"
        assert tiered.stats.hits == 1

    def test_put_writes_all_layers(self, tmp_path):
        memory = LRUCache(8)
        disk = DiskCache(str(tmp_path / "store"))
        TieredCache(memory, disk).put("k", "v")
        assert memory.get("k") == "v"
        assert disk.get("k") == "v"

    def test_miss_counts_once_at_tier_level(self, tmp_path):
        tiered = TieredCache(LRUCache(8),
                             DiskCache(str(tmp_path / "store")))
        assert tiered.get("absent") is None
        assert tiered.stats.misses == 1

    def test_requires_a_layer(self):
        with pytest.raises(ValueError):
            TieredCache()


class TestBuildCache:
    def test_memory_only_without_directory(self):
        assert isinstance(build_cache(16), LRUCache)

    def test_tiered_with_directory(self, tmp_path):
        cache = build_cache(16, str(tmp_path / "store"))
        assert isinstance(cache, TieredCache)
        assert isinstance(cache.layers[0], LRUCache)
        assert isinstance(cache.layers[1], DiskCache)

    def test_stats_describe_renders(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        text = cache.stats.describe()
        assert "1 hits / 2 lookups" in text
