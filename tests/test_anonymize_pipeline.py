"""Unit tests for the pseudonymisation pipeline (store -> anon store)."""

import pytest

from repro.anonymize import Interval, Pseudonymizer
from repro.casestudies import raw_physical_records, table1_hierarchies
from repro.datastore import RuntimeDatastore
from repro.errors import AnonymizationError
from repro.schema import DataSchema, Field, FieldKind


def _source_store():
    schema = DataSchema("PhysicalSchema", [
        Field("name", kind=FieldKind.IDENTIFIER),
        Field("age", kind=FieldKind.QUASI_IDENTIFIER),
        Field("height", kind=FieldKind.QUASI_IDENTIFIER),
        Field("weight", kind=FieldKind.SENSITIVE),
    ])
    store = RuntimeDatastore("HealthRecords", schema)
    store.load(raw_physical_records())
    return store


def _target_store():
    schema = DataSchema("AnonPhysicalSchema", [
        Field("age_anon"), Field("height_anon"), Field("weight_anon"),
    ])
    return RuntimeDatastore("AnonHealthRecords", schema)


def _pseudonymizer(**kwargs):
    defaults = dict(
        quasi_identifiers=("age", "height"),
        identifiers=("name",),
        hierarchies=table1_hierarchies(),
        method="recoding",
    )
    defaults.update(kwargs)
    return Pseudonymizer(**defaults)


class TestPseudonymizer:
    def test_full_run_reproduces_table1_release(self):
        run = _pseudonymizer().run(_source_store(), k=2,
                                   target=_target_store())
        assert run.k == 2
        assert run.result.k_achieved >= 2
        ages = {r["age_anon"] for r in run.released}
        assert ages == {Interval(20, 30), Interval(30, 40)}
        weights = sorted(r["weight_anon"] for r in run.released)
        assert weights == [80, 100, 102, 110, 110, 111]

    def test_identifiers_dropped(self):
        run = _pseudonymizer().run(_source_store(), k=2)
        assert all("name" not in r and "name_anon" not in r
                   for r in run.released)

    def test_target_loaded_and_cleared_first(self):
        target = _target_store()
        target.load([])
        run = _pseudonymizer().run(_source_store(), k=2, target=target)
        assert len(target) == len(run.released)
        # run again: target is reloaded, not appended
        _pseudonymizer().run(_source_store(), k=2, target=target)
        assert len(target) == len(run.released)

    def test_target_schema_mismatch_rejected(self):
        bad_target = RuntimeDatastore(
            "X", DataSchema("X", [Field("age_anon")]))
        with pytest.raises(AnonymizationError, match="lacks"):
            _pseudonymizer().run(_source_store(), k=2, target=bad_target)

    def test_empty_source_rejected(self):
        empty = RuntimeDatastore(
            "HealthRecords", _source_store().schema)
        with pytest.raises(AnonymizationError, match="no records"):
            _pseudonymizer().run(empty, k=2)

    def test_mondrian_method(self):
        run = _pseudonymizer(method="mondrian", hierarchies=None).run(
            _source_store(), k=2)
        assert run.method == "mondrian"
        assert run.result.k_achieved >= 2

    def test_recoding_requires_hierarchies(self):
        with pytest.raises(AnonymizationError, match="hierarchies"):
            Pseudonymizer(["age"], method="recoding")

    def test_recoding_requires_hierarchy_per_qid(self):
        with pytest.raises(AnonymizationError, match="missing"):
            Pseudonymizer(["age", "shoe_size"],
                          hierarchies=table1_hierarchies())

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            Pseudonymizer(["age"], method="magic")

    def test_run_without_target(self):
        run = _pseudonymizer().run(_source_store(), k=2)
        assert run.target_store is None
        assert len(run.released) == 6
