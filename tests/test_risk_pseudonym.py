"""Unit tests for pseudonymisation risk transitions (paper III.B/IV.B)."""

import pytest

from repro.casestudies import build_research_system, table1_records
from repro.core import (
    ActionType,
    GenerationOptions,
    TransitionKind,
    generate_lts,
)
from repro.core.risk import (
    PseudonymisationRiskAnalyzer,
    ValueRiskPolicy,
)
from repro.errors import AnalysisError, PolicyViolationError


@pytest.fixture
def research_lts(research_system):
    return generate_lts(research_system)


@pytest.fixture
def analyzer(research_system, weight_policy, table1):
    return PseudonymisationRiskAnalyzer(
        research_system, weight_policy, dataset=table1)


class TestRiskTransitionInjection:
    def test_fig4_violation_scores(self, research_lts, analyzer):
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        assert sorted(r.violations for r in risks) == [0, 2, 4]

    def test_fields_read_drive_the_scores(self, research_lts, analyzer):
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        by_fields = {frozenset(r.fields_read): r.violations
                     for r in risks}
        assert by_fields == {
            frozenset({"height_anon"}): 0,
            frozenset({"age_anon"}): 2,
            frozenset({"age_anon", "height_anon"}): 4,
        }

    def test_risk_transitions_marked_and_dotted(self, research_lts,
                                                analyzer):
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        for risk in risks:
            assert risk.transition.kind is TransitionKind.RISK
            assert risk.transition.label.action is ActionType.READ
            assert risk.transition.label.fields == ("weight",)
            assert risk.transition.risk is not None

    def test_target_state_has_sensitive_field(self, research_lts,
                                              analyzer):
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        for risk in risks:
            target = research_lts.state(risk.transition.target)
            assert target.vector.has("Researcher", "weight")

    def test_at_risk_states_require_anon_access(self, research_lts,
                                                analyzer):
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        for risk in risks:
            source = research_lts.state(risk.transition.source)
            assert source.vector.has("Researcher", "weight_anon")

    def test_actor_with_raw_access_excluded(self, research_lts,
                                            analyzer):
        # DataManager can read raw weight from HealthRecords, so no
        # inference risk is modelled for it.
        risks = analyzer.annotate(research_lts,
                                  actors=["DataManager"])
        assert risks == []

    def test_all_actors_default(self, research_lts, analyzer):
        risks = analyzer.annotate(research_lts)
        assert {r.actor for r in risks} == {"Researcher"}

    def test_describe_mentions_scores(self, research_lts, analyzer):
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        texts = [r.describe() for r in risks]
        assert any("violations=4/6" in t for t in texts)


class TestWithoutData:
    def test_unscored_transitions_still_injected(self, research_system,
                                                 weight_policy,
                                                 research_lts):
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, weight_policy, dataset=None)
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        assert len(risks) == 3
        assert all(r.result is None for r in risks)
        assert all("unscored" in r.describe() for r in risks)


class TestEnforcement:
    def test_design_gate_raises(self, research_system, table1,
                                research_lts):
        policy = ValueRiskPolicy("weight", closeness=5.0,
                                 confidence=0.9,
                                 max_violation_fraction=0.5)
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, policy, dataset=table1)
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        with pytest.raises(PolicyViolationError):
            analyzer.enforce(risks)

    def test_gate_passes_with_loose_threshold(self, research_system,
                                              table1, research_lts):
        policy = ValueRiskPolicy("weight", closeness=5.0,
                                 confidence=0.9,
                                 max_violation_fraction=0.7)
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, policy, dataset=table1)
        analyzer.enforce(
            analyzer.annotate(research_lts, actors=["Researcher"]))


class TestErrors:
    def test_unanonymised_sensitive_field_rejected(self, research_system,
                                                   table1, research_lts):
        policy = ValueRiskPolicy("name")
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, policy, dataset=table1)
        with pytest.raises(AnalysisError, match="name_anon"):
            analyzer.annotate(research_lts)

    def test_field_map_missing_entry(self, research_system,
                                     weight_policy, table1,
                                     research_lts):
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, weight_policy, dataset=table1,
            record_field_map={"weight_anon": "weight"})
        with pytest.raises(AnalysisError, match="no entry"):
            analyzer.annotate(research_lts, actors=["Researcher"])

    def test_explicit_field_map(self, research_system, weight_policy,
                                table1, research_lts):
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, weight_policy, dataset=table1,
            record_field_map={
                "age_anon": "age", "height_anon": "height",
                "weight_anon": "weight",
            })
        risks = analyzer.annotate(research_lts, actors=["Researcher"])
        assert sorted(r.violations for r in risks) == [0, 2, 4]
