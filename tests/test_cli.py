"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.dfd import to_dsl

GOOD_MODEL = """
system demo {
  schema S {
    field name: string kind identifier
    field issue: string kind sensitive
  }
  actor Doctor
  actor Auditor
  datastore Records schema S
  service Consult {
    flow 1 User -> Doctor fields [name, issue] purpose "consult"
    flow 2 Doctor -> Records fields [name, issue] purpose "record"
  }
  acl {
    allow Doctor read, create on Records
    allow Auditor read on Records
  }
}
"""

BROKEN_MODEL = """
system demo {
  schema S { field a: string }
  actor A
  service svc { flow 1 User -> Ghost fields [a] }
}
"""


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "model.dsl"
    path.write_text(GOOD_MODEL)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.dsl"
    path.write_text(BROKEN_MODEL)
    return str(path)


class TestValidate:
    def test_valid_model_exits_zero(self, model_file, capsys):
        assert main(["validate", model_file]) == 0
        assert "structurally valid" in capsys.readouterr().out

    def test_broken_model_exits_one(self, broken_file, capsys):
        assert main(["validate", broken_file]) == 1
        out = capsys.readouterr().out
        assert "unknown-node" in out

    def test_missing_file_exits_two(self, capsys):
        assert main(["validate", "/nonexistent.dsl"]) == 2
        assert "error" in capsys.readouterr().err


class TestDot:
    def test_dfd_dot(self, model_file, capsys):
        assert main(["dot", model_file]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out and "subgraph" in out

    def test_lts_dot(self, model_file, capsys):
        assert main(["dot", model_file, "--lts"]) == 0
        assert '"s0"' in capsys.readouterr().out

    def test_lts_dot_with_variables(self, model_file, capsys):
        assert main(["dot", model_file, "--lts", "--variables"]) == 0
        assert "has(" in capsys.readouterr().out

    def test_output_file(self, model_file, tmp_path, capsys):
        out_path = tmp_path / "g.dot"
        assert main(["dot", model_file, "-o", str(out_path)]) == 0
        assert "digraph" in out_path.read_text()
        assert capsys.readouterr().out == ""


class TestLts:
    def test_digest_printed(self, model_file, capsys):
        assert main(["lts", model_file]) == 0
        out = capsys.readouterr().out
        assert "states" in out and "collect: 1" in out

    def test_service_restriction(self, model_file, capsys):
        assert main(["lts", model_file, "--services", "Consult"]) == 0

    def test_unknown_service_exits_two(self, model_file, capsys):
        assert main(["lts", model_file, "--services", "Ghost"]) == 2

    def test_sequence_ordering(self, model_file, capsys):
        assert main(["lts", model_file, "--ordering", "sequence"]) == 0


class TestIdentify:
    def test_table_printed(self, model_file, capsys):
        assert main(["identify", model_file]) == 0
        out = capsys.readouterr().out
        assert "Doctor" in out and "could identify" in out


class TestAnalyse:
    def test_report_and_exit_code(self, model_file, capsys):
        code = main(["analyse", model_file, "--agree", "Consult",
                     "--sensitivity", "issue=high"])
        out = capsys.readouterr().out
        assert "MEDIUM" in out
        assert code == 0  # default --fail-at high

    def test_fail_at_medium(self, model_file, capsys):
        code = main(["analyse", model_file, "--agree", "Consult",
                     "--sensitivity", "issue=high",
                     "--fail-at", "medium"])
        assert code == 1

    def test_numeric_sensitivity(self, model_file, capsys):
        code = main(["analyse", model_file, "--agree", "Consult",
                     "--sensitivity", "issue=0.95",
                     "--default-sensitivity", "0.1"])
        assert code == 0
        assert "MEDIUM" in capsys.readouterr().out

    def test_bad_sensitivity_syntax(self, model_file, capsys):
        assert main(["analyse", model_file, "--agree", "Consult",
                     "--sensitivity", "issue"]) == 2
        assert "field=value" in capsys.readouterr().err

    def test_unknown_service_exits_two(self, model_file, capsys):
        assert main(["analyse", model_file, "--agree", "Ghost"]) == 2


class TestRealCaseStudy:
    def test_surgery_model_through_cli(self, tmp_path, capsys):
        from repro.casestudies import build_surgery_system
        path = tmp_path / "surgery.dsl"
        path.write_text(to_dsl(build_surgery_system()))
        code = main([
            "analyse", str(path),
            "--agree", "MedicalService",
            "--sensitivity", "diagnosis=high",
            "--default-sensitivity", "0.2",
            "--fail-at", "high",
        ])
        out = capsys.readouterr().out
        assert "Administrator" in out
        assert "MEDIUM" in out
        assert code == 0


class TestEngineCommands:
    def test_engine_run_over_models(self, model_file, tmp_path, capsys):
        # A design variant of the same service: the Auditor grant
        # dropped, so the engine reports both models side by side.
        second = tmp_path / "model2.dsl"
        second.write_text(GOOD_MODEL.replace(
            "    allow Auditor read on Records\n", ""))
        code = main([
            "engine", "run", model_file, str(second),
            "--agree", "Consult",
            "--sensitivity", "issue=high",
            "--backend", "serial",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "max risk" in out
        assert "result cache:" in out
        # Submission order is preserved in the per-model lines.
        assert out.index(model_file) < out.index(str(second))

    def test_engine_run_fail_at_gate(self, model_file, capsys):
        code = main([
            "engine", "run", model_file,
            "--agree", "Consult",
            "--sensitivity", "issue=high",
            "--backend", "serial",
            "--fail-at", "medium",
        ])
        assert code == 1

    def test_engine_run_cache_dir_warm_second_call(self, model_file,
                                                   tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["engine", "run", model_file, "--agree", "Consult",
                "--backend", "serial", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_engine_sweep_reports_fleet(self, capsys):
        code = main(["engine", "sweep", "--count", "4",
                     "--backend", "serial", "--personas", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TOTAL" in out
        assert "risk levels:" in out
        assert "result cache:" in out

    def test_engine_sweep_json_output(self, tmp_path, capsys):
        import json
        target = tmp_path / "fleet.json"
        code = main(["engine", "sweep", "--count", "4",
                     "--backend", "serial", "--personas", "1",
                     "--json", "-o", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["jobs"] == 4
        assert "level_histogram" in payload

    def test_engine_run_missing_model_exits_two(self, capsys):
        assert main(["engine", "run", "no-such-file.dsl",
                     "--agree", "Consult"]) == 2

    @pytest.mark.parametrize("kind", [
        "pseudonym", "consent_change", "reidentify"])
    def test_engine_run_accepts_every_kind(self, model_file, kind,
                                           capsys):
        code = main(["engine", "run", model_file,
                     "--agree", "Consult", "--kind", kind,
                     "--backend", "serial"])
        out = capsys.readouterr().out
        assert code == 0
        assert f"[{kind}]" in out

    def test_engine_run_consent_change_params(self, model_file,
                                              capsys):
        code = main(["engine", "run", model_file,
                     "--agree", "Consult",
                     "--kind", "consent_change",
                     "--change-withdraw", "Consult",
                     "--backend", "serial"])
        assert code == 0
        assert "max risk none" in capsys.readouterr().out

    def test_engine_sweep_mixed_kinds(self, capsys):
        code = main(["engine", "sweep", "--count", "4",
                     "--backend", "serial", "--personas", "1",
                     "--kinds", "disclosure", "consent_change"])
        out = capsys.readouterr().out
        assert code == 0
        assert "analysis kinds:" in out
        assert "consent_change=2" in out

    def test_engine_reanalyze_reports_plan(self, model_file, tmp_path,
                                           capsys):
        # A create-only grant edit: the LTS provably survives.
        second = tmp_path / "model2.dsl"
        second.write_text(GOOD_MODEL.replace(
            "    allow Auditor read on Records\n",
            "    allow Auditor read on Records\n"
            "    allow Auditor create on Records\n"))
        code = main(["engine", "reanalyze", model_file, str(second),
                     "--agree", "Consult", "--backend", "serial"])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline:" in out
        assert "change invalidates: analyzers" in out
        assert "re-seeded" in out
        assert "0 LTS generations" in out

    def test_engine_reanalyze_identical_models(self, model_file,
                                               capsys):
        code = main(["engine", "reanalyze", model_file, model_file,
                     "--agree", "Consult", "--backend", "serial"])
        out = capsys.readouterr().out
        assert code == 0
        assert "change invalidates: nothing" in out
        assert "1 result-cache hits" in out

    def test_engine_cache_stats_and_prune(self, model_file, tmp_path,
                                          capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["engine", "run", model_file, "--agree", "Consult",
                     "--backend", "serial",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["engine", "cache", "stats",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "results:" in out
        assert "lts:" in out
        assert main(["engine", "cache", "prune",
                     "--cache-dir", cache_dir,
                     "--max-bytes", "0"]) == 0
        assert "pruned" in capsys.readouterr().out
        assert main(["engine", "cache", "stats",
                     "--cache-dir", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_engine_cache_stats_empty_dir(self, tmp_path, capsys):
        assert main(["engine", "cache", "stats", "--cache-dir",
                     str(tmp_path / "nowhere")]) == 0
        assert "no engine stores" in capsys.readouterr().out

    def test_change_flags_rejected_outside_consent_change(
            self, model_file, capsys):
        """--change-* params enter cache identity but only the
        consent_change kind reads them: misuse is a usage error, not a
        silent cache fork."""
        code = main(["engine", "run", model_file,
                     "--agree", "Consult",
                     "--change-withdraw", "Consult",
                     "--backend", "serial"])
        assert code == 2
        assert "consent_change" in capsys.readouterr().err

    def test_parser_kind_choices_match_the_registry(self):
        """The parser spells the kinds out (to stay import-lazy); this
        pins the list to the registry so a new kind cannot be
        forgotten."""
        from repro.cli import build_parser
        from repro.engine import kind_names
        parser = build_parser()
        text = parser.format_help()  # forces subparser construction
        assert text is not None
        engine_parser = next(
            a for a in parser._subparsers._group_actions
        ).choices["engine"]
        run_parser = next(
            a for a in engine_parser._subparsers._group_actions
        ).choices["run"]
        kind_action = next(a for a in run_parser._actions
                           if a.dest == "kind")
        assert tuple(kind_action.choices) == kind_names()

    def test_engine_sweep_json_stdout_is_pure_json(self, capsys):
        """With --json and no -o, stdout must be parseable JSON; the
        cache accounting line moves to stderr."""
        import json
        code = main(["engine", "sweep", "--count", "2",
                     "--backend", "serial", "--personas", "1",
                     "--json"])
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["jobs"] == 2
        assert "result cache:" in captured.err

    def test_engine_run_json_output(self, model_file, capsys):
        import json
        code = main(["engine", "run", model_file,
                     "--agree", "Consult", "--backend", "serial",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_level"] in ("none", "low", "medium",
                                        "high")
        assert payload["results"][0]["scenario"] == model_file
        assert payload["stats"]["jobs"] == 1

    def test_engine_run_population_kind(self, model_file, capsys):
        code = main(["engine", "run", model_file,
                     "--agree", "Consult", "--kind", "population",
                     "--backend", "serial"])
        assert code == 0
        assert "[population]" in capsys.readouterr().out

    def test_engine_reanalyze_json_output(self, model_file, capsys):
        import json
        code = main(["engine", "reanalyze", model_file, model_file,
                     "--agree", "Consult", "--backend", "serial",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["level"] == "nothing"
        assert payload["baseline"]["stats"]["jobs"] == 1

    def test_engine_cache_stats_json(self, model_file, tmp_path,
                                     capsys):
        import json
        cache_dir = str(tmp_path / "cache")
        assert main(["engine", "run", model_file, "--agree", "Consult",
                     "--backend", "serial",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["engine", "cache", "stats",
                     "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stores"]["results"]["entries"] == 1
        assert main(["engine", "cache", "prune",
                     "--cache-dir", cache_dir, "--max-bytes", "0",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stores"]["results"]["removed"] == 1

    def test_engine_run_invalid_model_structured_error(
            self, broken_file, capsys):
        """Malformed models exit 2 with a structured message, never a
        traceback."""
        code = main(["engine", "run", broken_file,
                     "--agree", "svc", "--backend", "serial"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "structurally invalid" in err

    def test_engine_run_unparsable_model_structured_error(
            self, tmp_path, capsys):
        path = tmp_path / "bad.dsl"
        path.write_text("system { nope")
        code = main(["engine", "run", str(path),
                     "--agree", "Consult", "--backend", "serial"])
        assert code == 2
        assert "does not parse" in capsys.readouterr().err

    def test_cli_and_service_signatures_agree(self, model_file,
                                              capsys):
        """Acceptance: the CLI's --json results carry the same
        signatures the facade (and therefore the HTTP server)
        produces for the equivalent request."""
        import json
        from repro.service import (AnalysisRequest, AnalysisService,
                                   ModelRef, UserSpec,
                                   result_from_dict)
        assert main(["engine", "run", model_file, "--agree", "Consult",
                     "--sensitivity", "issue=high",
                     "--backend", "serial", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        cli_signatures = [result_from_dict(r).signature()
                          for r in payload["results"]]
        service = AnalysisService(backend="serial")
        response = service.analyze(AnalysisRequest(
            models=(ModelRef(path=model_file),),
            user=UserSpec(agree=("Consult",),
                          sensitivities=(("issue", "high"),))))
        assert cli_signatures == list(response.signatures())


class TestServeCommand:
    def test_serve_starts_and_answers_health(self, tmp_path):
        """`repro serve` end to end: bind an ephemeral port, drive it
        over HTTP, shut it down."""
        import json
        import threading
        import urllib.request
        from repro.service import AnalysisService, make_server

        service = AnalysisService(backend="serial",
                                  cache_dir=str(tmp_path / "c"))
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with urllib.request.urlopen(
                    f"http://{host}:{port}/v1/health",
                    timeout=10) as reply:
                payload = json.loads(reply.read())
            assert payload["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_serve_is_wired_into_the_parser(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0",
                                  "--backend", "serial"])
        assert args.port == 0
        assert args.func.__name__ == "_cmd_serve"

    def test_non_engine_commands_do_not_import_the_engine(
            self, model_file):
        """`repro validate` must not pay the engine package's import
        cost (the commands import it lazily)."""
        import subprocess
        import sys
        code = subprocess.run(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             f"main(['validate', {model_file!r}]); "
             "sys.exit('repro.engine' in sys.modules)"],
            env={"PYTHONPATH": "src", "PATH": os.environ["PATH"]},
            cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
            capture_output=True)
        assert code.returncode == 0, code.stderr.decode()


class TestTaintCommand:
    def test_flagged_model_exits_one_with_witness(self, model_file,
                                                  capsys):
        # Auditor holds a read grant on Records but is outside the
        # agreed Consult flows, so the closure must flag it.
        code = main(["taint", model_file, "--agree", "Consult",
                     "--witness"])
        out = capsys.readouterr().out
        assert code == 1
        assert "flagged: Auditor can read" in out
        assert " -> " in out
        assert "certificate:" in out
        assert "verdict: flagged" in out

    def test_clean_model_exits_zero(self, tmp_path, capsys):
        clean = GOOD_MODEL.replace(
            "    allow Auditor read on Records\n", "")
        path = tmp_path / "clean.dsl"
        path.write_text(clean)
        code = main(["taint", str(path), "--agree", "Consult"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: clean" in out

    def test_unknown_service_is_a_usage_error(self, model_file,
                                              capsys):
        # Agreeing to a service the model does not define is rejected
        # before the closure runs, like the exact analyzers do.
        code = main(["taint", model_file, "--agree", "Ghost"])
        assert code == 2

    def test_screened_sweep_reports_skips(self, capsys):
        code = main(["engine", "sweep", "--count", "6",
                     "--backend", "serial", "--personas", "1",
                     "--screen"])
        out = capsys.readouterr().out
        assert code == 0
        assert "taint screen:" in out
