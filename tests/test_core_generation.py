"""Unit tests for LTS generation: extraction rules, interleavings,
preconditions, potential reads and deletes."""

import pytest

from repro.core import (
    ActionType,
    GenerationOptions,
    ModelGenerator,
    TransitionKind,
    generate_lts,
)
from repro.core.reachability import terminal_states
from repro.dfd import SystemBuilder
from repro.errors import GenerationError, StateLimitExceeded


def _linear_system():
    """User -> A -> Store -> B, plus an outsider actor C with a grant."""
    return (
        SystemBuilder("lin")
        .schema("S", [("x", "string", "sensitive"), ("y", "string")])
        .actor("A").actor("B").actor("C")
        .datastore("D", "S")
        .service("svc")
        .flow(1, "User", "A", ["x", "y"])
        .flow(2, "A", "D", ["x", "y"])
        .flow(3, "D", "B", ["y"])
        .allow("A", ["read", "create"], "D")
        .allow("B", "read", "D", ["y"])
        .allow("C", "read", "D", ["x"])
        .allow("C", "delete", "D")
        .build()
    )


class TestExtractionRules:
    def test_user_to_actor_is_collect(self):
        lts = generate_lts(_linear_system())
        collect = lts.transitions_from(lts.initial.sid)[0]
        assert collect.label.action is ActionType.COLLECT
        assert collect.label.actor == "A"

    def test_actor_to_store_is_create(self):
        lts = generate_lts(_linear_system())
        creates = lts.transitions_by_action(ActionType.CREATE)
        assert len(creates) == 1
        assert creates[0].label.schema == "S"

    def test_store_to_actor_is_read(self):
        lts = generate_lts(_linear_system())
        reads = lts.transitions_by_action(ActionType.READ)
        assert len(reads) == 1
        assert reads[0].label.actor == "B"

    def test_actor_to_actor_is_disclose(self):
        system = (SystemBuilder("d")
                  .schema("S", ["x"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "B", ["x"])
                  .build())
        lts = generate_lts(system)
        discloses = lts.transitions_by_action(ActionType.DISCLOSE)
        assert len(discloses) == 1
        # performer is the discloser, effect on the recipient
        assert discloses[0].label.actor == "A"
        target = lts.state(discloses[0].target)
        assert target.vector.has("B", "x")

    def test_anon_store_write_is_anon_with_renamed_fields(self):
        system = (SystemBuilder("a")
                  .schema("S", [("w", "float", "sensitive")])
                  .anonymised_schema("SA", "S")
                  .actor("A")
                  .datastore("DA", "SA", anonymised=True)
                  .service("svc")
                  .flow(1, "User", "A", ["w"])
                  .flow(2, "A", "DA", ["w"])
                  .allow("A", "create", "DA")
                  .build())
        lts = generate_lts(system)
        anons = lts.transitions_by_action(ActionType.ANON)
        assert len(anons) == 1
        assert anons[0].label.fields == ("w_anon",)

    def test_disclose_to_user_keeps_vector(self):
        system = (SystemBuilder("u")
                  .schema("S", ["x"])
                  .actor("A")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "User", ["x"])
                  .build())
        lts = generate_lts(system)
        disclose = lts.transitions_by_action(ActionType.DISCLOSE)[0]
        before = lts.state(disclose.source).vector
        after = lts.state(disclose.target).vector
        assert before == after


class TestStateSemantics:
    def test_has_is_set_by_collect_and_read(self):
        lts = generate_lts(_linear_system())
        finals = terminal_states(lts)
        assert len(finals) == 1
        vector = finals[0].vector
        assert vector.has("A", "x") and vector.has("A", "y")
        assert vector.has("B", "y") and not vector.has("B", "x")

    def test_could_derived_from_store_and_policy(self):
        lts = generate_lts(_linear_system())
        final = terminal_states(lts)[0].vector
        # data in D; policy: B reads y, C reads x, A reads all
        assert final.could("A", "x") and final.could("A", "y")
        assert final.could("B", "y") and not final.could("B", "x")
        assert final.could("C", "x") and not final.could("C", "y")

    def test_could_false_before_create(self):
        lts = generate_lts(_linear_system())
        first = lts.transitions_from(lts.initial.sid)[0]
        after_collect = lts.state(first.target).vector
        assert not after_collect.could("C", "x")

    def test_each_flow_fires_once(self):
        lts = generate_lts(_linear_system())
        # linear chain: 4 states, 3 transitions
        assert len(lts) == 4
        assert len(lts.transitions) == 3


class TestOrderings:
    def _parallel_system(self):
        """Two independent collects can interleave."""
        return (SystemBuilder("p")
                .schema("S", ["x", "y"])
                .actor("A").actor("B")
                .service("svc")
                .flow(1, "User", "A", ["x"])
                .flow(2, "User", "B", ["y"])
                .build())

    def test_dataflow_explores_interleavings(self):
        lts = generate_lts(self._parallel_system())
        # diamond: init, A-collected, B-collected, both
        assert len(lts) == 4
        assert len(lts.transitions) == 4

    def test_sequence_is_linear(self):
        lts = generate_lts(self._parallel_system(),
                           GenerationOptions(ordering="sequence"))
        assert len(lts) == 3
        assert len(lts.transitions) == 2

    def test_sequence_respects_order_labels(self):
        lts = generate_lts(self._parallel_system(),
                           GenerationOptions(ordering="sequence"))
        first = lts.transitions_from(lts.initial.sid)
        assert len(first) == 1
        assert first[0].label.flow_key == ("svc", 1)

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError, match="ordering"):
            GenerationOptions(ordering="random")


class TestOptions:
    def test_service_restriction(self, surgery_system):
        lts = generate_lts(
            surgery_system,
            GenerationOptions(services=("MedicalService",)))
        services = {
            t.label.flow_key[0]
            for t in lts.transitions if t.label.flow_key
        }
        assert services == {"MedicalService"}

    def test_unknown_service_rejected(self, surgery_system):
        from repro.errors import ModelError
        with pytest.raises(ModelError, match="unknown service"):
            generate_lts(surgery_system,
                         GenerationOptions(services=("Ghost",)))

    def test_empty_selection_rejected(self):
        system = (SystemBuilder("e").schema("S", ["x"]).actor("A")
                  .service("svc").flow(1, "User", "A", ["x"])
                  .build())
        with pytest.raises(GenerationError, match="no flows"):
            generate_lts(system, GenerationOptions(services=()))

    def test_max_states_enforced(self, surgery_system):
        with pytest.raises(StateLimitExceeded):
            generate_lts(surgery_system, GenerationOptions(max_states=3))

    def test_initial_store_contents(self):
        system = _linear_system()
        options = GenerationOptions(
            services=("svc",),
            initial_store_contents={"D": ("x", "y")})
        lts = generate_lts(system, options)
        assert lts.initial.vector.could("C", "x")

    def test_initial_contents_validated(self):
        system = _linear_system()
        with pytest.raises(GenerationError, match="not"):
            generate_lts(system, GenerationOptions(
                initial_store_contents={"D": ("ghost",)}))


class TestPotentialReads:
    def test_potential_read_added_for_granted_actor(self):
        lts = generate_lts(_linear_system(), GenerationOptions(
            include_potential_reads=True,
            potential_read_actors=frozenset({"C"})))
        potentials = lts.transitions_of_kind(TransitionKind.POTENTIAL)
        reads = [t for t in potentials
                 if t.label.action is ActionType.READ]
        assert reads
        assert all(t.label.actor == "C" for t in reads)
        assert all(t.label.fields == ("x",) for t in reads)

    def test_potential_read_changes_state(self):
        lts = generate_lts(_linear_system(), GenerationOptions(
            include_potential_reads=True,
            potential_read_actors=frozenset({"C"})))
        read = [t for t in lts.transitions_of_kind(
            TransitionKind.POTENTIAL)
            if t.label.action is ActionType.READ][0]
        assert lts.state(read.target).vector.has("C", "x")
        assert not lts.state(read.source).vector.has("C", "x")

    def test_no_duplicate_noop_reads(self):
        lts = generate_lts(_linear_system(), GenerationOptions(
            include_potential_reads=True,
            potential_read_actors=frozenset({"C"})))
        # after C has read x, no second potential read from that state
        for state in lts.states:
            if state.vector.has("C", "x"):
                actions = [
                    t for t in lts.transitions_from(state.sid)
                    if t.kind is TransitionKind.POTENTIAL
                    and t.label.actor == "C"
                    and t.label.action is ActionType.READ
                ]
                assert not actions

    def test_flow_reads_not_marked_potential(self):
        lts = generate_lts(_linear_system(), GenerationOptions(
            include_potential_reads=True))
        flow_reads = [t for t in lts.transitions
                      if t.label.action is ActionType.READ
                      and t.label.flow_key is not None]
        assert all(t.kind is TransitionKind.FLOW for t in flow_reads)


class TestDeletes:
    def test_delete_clears_could(self):
        lts = generate_lts(_linear_system(), GenerationOptions(
            include_deletes=True,
            delete_actors=frozenset({"C"})))
        deletes = lts.transitions_by_action(ActionType.DELETE)
        assert deletes
        for transition in deletes:
            target = lts.state(transition.target).vector
            assert not target.could("C", "x")

    def test_delete_preserves_has(self):
        lts = generate_lts(_linear_system(), GenerationOptions(
            include_potential_reads=True,
            potential_read_actors=frozenset({"C"}),
            include_deletes=True,
            delete_actors=frozenset({"C"})))
        for transition in lts.transitions_by_action(ActionType.DELETE):
            source = lts.state(transition.source).vector
            target = lts.state(transition.target).vector
            if source.has("C", "x"):
                assert target.has("C", "x")


class TestOriginatedFields:
    def test_originated_field_materialised_on_first_use(self):
        system = (SystemBuilder("o")
                  .schema("S", ["x", "made"])
                  .actor("A", originates=["made"]).actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "B", ["x", "made"])
                  .build())
        lts = generate_lts(system)
        final = terminal_states(lts)[0].vector
        assert final.has("A", "made")
        assert final.has("B", "made")

    def test_flow_with_unoriginated_missing_field_never_enabled(self):
        system = (SystemBuilder("o")
                  .schema("S", ["x", "made"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "B", ["x", "made"])
                  .build(strict=False))
        lts = generate_lts(system)
        assert len(lts.transitions_by_action(ActionType.DISCLOSE)) == 0


class TestDeterminism:
    def test_generation_is_deterministic(self, surgery_system):
        first = generate_lts(surgery_system)
        second = generate_lts(surgery_system)
        assert first.stats() == second.stats()
        first_labels = [t.label for t in first.transitions]
        second_labels = [t.label for t in second.transitions]
        assert first_labels == second_labels

    def test_registry_reused_across_generations(self, surgery_system):
        generator = ModelGenerator(surgery_system)
        lts_a = generator.generate()
        lts_b = generator.generate()
        assert lts_a.registry is lts_b.registry
