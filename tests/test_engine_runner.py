"""The batch engine: backends, caching, dedup, ordering."""

import pytest

from repro.casestudies import build_scaled_system, build_surgery_system
from repro.consent import UserProfile
from repro.core import GenerationOptions
from repro.core.risk import DisclosureRiskAnalyzer
from repro.engine import (
    AnalysisJob,
    BatchEngine,
    LRUCache,
    resolve_options,
)


def _patient(name="p0"):
    return UserProfile(name, agreed_services=["MedicalService"],
                       sensitivities={"diagnosis": "high"},
                       default_sensitivity=0.2)


def _jobs(count=4):
    """A small mixed fleet: two distinct models, distinct users."""
    surgery = build_surgery_system()
    scaled = build_scaled_system(actors=3, fields=4, stores=1)
    jobs = []
    for index in range(count):
        if index % 2 == 0:
            jobs.append(AnalysisJob(
                system=surgery, user=_patient(f"p{index}"),
                scenario=f"surgery#{index}", family="surgery"))
        else:
            user = UserProfile(f"s{index}",
                               agreed_services=["Intake"],
                               default_sensitivity=0.4)
            jobs.append(AnalysisJob(
                system=scaled, user=user,
                scenario=f"scaled#{index}", family="scaled"))
    return jobs


class TestExecution:
    def test_results_in_submission_order(self):
        batch = BatchEngine(backend="serial").run(_jobs(6))
        assert [r.scenario for r in batch.results] == \
            [f"surgery#{i}" if i % 2 == 0 else f"scaled#{i}"
             for i in range(6)]
        assert [r.job_id for r in batch.results] == \
            [f"job-{i:04d}" for i in range(6)]

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 4),
        ("process", 2),
    ])
    def test_parallel_matches_serial(self, backend, workers):
        serial = BatchEngine(backend="serial").run(_jobs(6))
        parallel = BatchEngine(backend=backend,
                               workers=workers).run(_jobs(6))
        assert [r.signature() for r in serial.results] == \
            [r.signature() for r in parallel.results]

    def test_matches_direct_analyzer(self):
        """The engine is a faithful executor: same verdicts as calling
        the analyzer by hand."""
        job = _jobs(1)[0]
        result = BatchEngine().run([job]).results[0]
        report = DisclosureRiskAnalyzer(job.system).analyse(job.user)
        assert result.max_level == report.max_level.value
        assert len(result.events) == len(report.events)
        assert result.non_allowed_actors == report.non_allowed_actors

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            BatchEngine(backend="celery")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            BatchEngine(backend="thread", workers=0)


class TestResultCaching:
    def test_cold_then_warm_accounting(self):
        engine = BatchEngine(backend="serial")
        cold = engine.run(_jobs(4))
        assert cold.stats.result_hits == 0
        assert cold.stats.executed == 4
        warm = engine.run(_jobs(4))
        assert warm.stats.result_hits == 4
        assert warm.stats.executed == 0
        assert warm.stats.lts_generations == 0
        assert [r.signature() for r in cold.results] == \
            [r.signature() for r in warm.results]
        assert all(r.from_cache for r in warm.results)

    def test_warm_disk_cache_runs_zero_generations(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = BatchEngine(backend="serial",
                           cache_dir=cache_dir).run(_jobs(4))
        assert cold.stats.lts_generations > 0
        # A brand-new engine process-equivalent: only the disk survives.
        warm_engine = BatchEngine(backend="serial", cache_dir=cache_dir)
        warm = warm_engine.run(_jobs(4))
        assert warm.stats.lts_generations == 0
        assert warm.stats.result_hits == 4
        assert [r.signature() for r in cold.results] == \
            [r.signature() for r in warm.results]

    def test_duplicate_jobs_deduplicated_within_batch(self):
        jobs = _jobs(2) + _jobs(2)       # same content, fresh objects
        batch = BatchEngine(backend="serial").run(jobs)
        assert batch.stats.jobs == 4
        assert batch.stats.executed == 2
        assert batch.stats.deduplicated == 2
        assert batch.results[0].signature() == \
            batch.results[2].signature()
        # Labels still belong to the requesting job.
        assert batch.results[2].job_id == "job-0002"

    def test_lts_memo_reused_across_users_of_same_model(self):
        surgery = build_surgery_system()
        jobs = [AnalysisJob(system=surgery, user=_patient(f"p{i}"))
                for i in range(3)]
        batch = BatchEngine(backend="serial").run(jobs)
        assert batch.stats.lts_generations == 1
        assert batch.stats.lts_reuses == 2

    def test_injected_result_cache_is_used(self):
        cache = LRUCache(max_entries=64)
        engine = BatchEngine(backend="serial", result_cache=cache)
        engine.run(_jobs(2))
        assert cache.stats.puts == 2
        engine.run(_jobs(2))
        assert cache.stats.hits == 2

    def test_cached_result_is_relabelled(self):
        engine = BatchEngine(backend="serial")
        engine.run(_jobs(2))
        renamed = _jobs(2)
        renamed[0].scenario = "renamed-scenario"
        warm = engine.run(renamed)
        assert warm.results[0].scenario == "renamed-scenario"
        assert warm.results[0].from_cache


class TestResolveOptions:
    def test_default_mirrors_disclosure_analysis(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=_patient())
        options = resolve_options(job)
        assert options.services == ("MedicalService",)
        assert options.include_potential_reads
        assert options.potential_read_actors == \
            frozenset(job.user.non_allowed_actors(job.system))

    def test_explicit_options_win(self):
        explicit = GenerationOptions(ordering="sequence")
        job = AnalysisJob(system=build_surgery_system(),
                          user=_patient(), options=explicit)
        assert resolve_options(job) is explicit


class TestStaleLtsBlobs:
    """Entries written under our stage-2 keys by an incompatible
    pickle layout (e.g. pre-bitmask ``Configuration`` blobs) must be
    treated as misses and overwritten, not fail the job."""

    def test_unpicklable_blob_regenerates(self):
        from repro.engine.fingerprint import lts_cache_key
        engine = BatchEngine(backend="serial")
        jobs = [AnalysisJob(system=build_surgery_system(),
                            user=_patient())]
        key = lts_cache_key(jobs[0].system, resolve_options(jobs[0]))
        engine.lts_cache.put(key, b"\x80\x04not a pickle")
        batch = engine.run(jobs)
        assert batch.stats.lts_generations == 1
        assert batch.results[0].states > 0
        # The poisoned entry was replaced with a loadable one.
        import pickle
        assert pickle.loads(engine.lts_cache.get(key)) is not None

    def test_results_unchanged_after_blob_recovery(self):
        from repro.engine.fingerprint import lts_cache_key
        clean = BatchEngine(backend="serial").run(_jobs(2))
        engine = BatchEngine(backend="serial")
        job = _jobs(1)[0]
        key = lts_cache_key(job.system, resolve_options(job))
        engine.lts_cache.put(key, b"junk")
        recovered = engine.run(_jobs(2))
        assert [r.signature() for r in recovered.results] == \
            [r.signature() for r in clean.results]


class TestBackendRegistry:
    """The pluggable backend protocol behind BatchEngine."""

    def test_builtins_are_registered(self):
        from repro.engine import backend_names
        assert set(backend_names()) >= {"serial", "thread", "process"}

    def test_backends_constant_tracks_registry(self):
        import repro.engine as engine_module
        from repro.engine import backend_names, register_backend
        assert tuple(engine_module.BACKENDS) == backend_names()
        from repro.engine.runner import SerialBackend
        register_backend("registry-probe", SerialBackend)
        try:
            assert "registry-probe" in engine_module.BACKENDS
        finally:
            from repro.engine.runner import _BACKEND_REGISTRY
            del _BACKEND_REGISTRY["registry-probe"]

    def test_get_backend_rejects_unknown(self):
        from repro.engine import get_backend
        with pytest.raises(ValueError, match="backend must be one"):
            get_backend("celery")

    def test_engine_accepts_backend_instance(self):
        from repro.engine import Backend

        class CountingBackend(Backend):
            """Delegates to serial, counting what it executed."""
            name = "counting"
            # Exercise every miss through this backend, even
            # single-job batches.
            inline_single = False

            def __init__(self):
                from repro.engine.runner import SerialBackend
                self.inner = SerialBackend()
                self.executed = 0

            def execute(self, prepared, engine):
                self.executed += len(prepared)
                yield from self.inner.execute(prepared, engine)

        backend = CountingBackend()
        engine = BatchEngine(backend=backend)
        batch = engine.run(_jobs(4))
        assert batch.stats.backend == "counting"
        assert backend.executed == 4
        serial = BatchEngine(backend="serial").run(_jobs(4))
        assert [r.signature() for r in batch.results] == \
            [r.signature() for r in serial.results]

    def test_single_job_inlines_unless_opted_out(self):
        from repro.engine.runner import ThreadBackend

        class RecordingThreadBackend(ThreadBackend):
            def __init__(self):
                self.calls = 0

            def execute(self, prepared, engine):
                self.calls += 1
                yield from super().execute(prepared, engine)

        backend = RecordingThreadBackend()
        BatchEngine(backend=backend).run(_jobs(1))
        # One miss inlines onto the calling thread: pool setup would
        # cost more than it buys.
        assert backend.calls == 0
        backend.inline_single = False
        BatchEngine(backend=backend).run(_jobs(1))
        assert backend.calls == 1
