"""Shared fixtures: the paper's case-study systems and datasets."""

from __future__ import annotations

import pytest

from repro.casestudies import (
    build_research_system,
    build_surgery_system,
    raw_physical_records,
    surgery_patient,
    table1_hierarchies,
    table1_records,
)
from repro.core import GenerationOptions, generate_lts
from repro.core.risk import ValueRiskPolicy
from repro.dfd import SystemBuilder


@pytest.fixture
def surgery_system():
    return build_surgery_system()


@pytest.fixture
def research_system():
    return build_research_system()


@pytest.fixture
def patient():
    return surgery_patient()


@pytest.fixture
def table1():
    return table1_records()


@pytest.fixture
def raw_physical():
    return raw_physical_records()


@pytest.fixture
def physical_hierarchies():
    return table1_hierarchies()


@pytest.fixture
def weight_policy():
    return ValueRiskPolicy(sensitive_field="weight", closeness=5.0,
                           confidence=0.9)


@pytest.fixture
def medical_lts(surgery_system):
    return generate_lts(
        surgery_system,
        GenerationOptions(services=("MedicalService",)))


@pytest.fixture
def tiny_system():
    """A minimal two-actor system used across unit tests."""
    return (
        SystemBuilder("tiny")
        .schema("S", [("name", "string", "identifier"),
                      ("secret", "string", "sensitive")])
        .actor("Alice")
        .actor("Bob")
        .datastore("Store", "S")
        .service("Svc")
        .flow(1, "User", "Alice", ["name", "secret"], purpose="signup")
        .flow(2, "Alice", "Store", ["name", "secret"], purpose="persist")
        .flow(3, "Store", "Bob", ["name"], purpose="lookup")
        .allow("Alice", ["read", "create"], "Store")
        .allow("Bob", "read", "Store", ["name"])
        .build()
    )
