"""Unit tests for sensitivity, banding, risk matrix and likelihood."""

import pytest

from repro.core.risk import (
    Banding,
    LikelihoodModel,
    RiskLevel,
    RiskMatrix,
    Scenario,
    SensitivityCategory,
    SensitivityProfile,
    accidental_access,
    categorize,
    maintenance_deletion,
    non_agreed_service,
)
from repro.errors import AnalysisError


class TestSensitivityProfile:
    def test_sigma_default(self):
        profile = SensitivityProfile(default=0.3)
        assert profile.sigma("anything") == pytest.approx(0.3)

    def test_set_accepts_category_string_number(self):
        profile = SensitivityProfile()
        profile.set("a", SensitivityCategory.HIGH)
        profile.set("b", "medium")
        profile.set("c", 0.42)
        assert profile.sigma("a") == pytest.approx(0.9)
        assert profile.sigma("b") == pytest.approx(0.5)
        assert profile.sigma("c") == pytest.approx(0.42)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SensitivityProfile().set("a", 1.5)
        with pytest.raises(ValueError):
            SensitivityProfile(default=-0.1)

    def test_sigma_for_allowed_actor_is_zero(self):
        """The paper: sigma(d, a) = 0 if the actor is allowed."""
        profile = SensitivityProfile({"diagnosis": 0.9})
        assert profile.sigma_for("diagnosis", "Doctor",
                                 ["Doctor"]) == 0.0
        assert profile.sigma_for("diagnosis", "Admin",
                                 ["Doctor"]) == pytest.approx(0.9)

    def test_max_sigma_collection_rule(self):
        """"A collection ... is only as sensitive as the most sensitive
        data field"."""
        profile = SensitivityProfile({"a": 0.2, "b": 0.8})
        assert profile.max_sigma(["a", "b"]) == pytest.approx(0.8)
        assert profile.max_sigma([]) == 0.0

    def test_category_roundtrip(self):
        profile = SensitivityProfile({"a": 0.9})
        assert profile.category("a") is SensitivityCategory.HIGH

    def test_categorize_bands(self):
        assert categorize(0.1) is SensitivityCategory.LOW
        assert categorize(0.5) is SensitivityCategory.MEDIUM
        assert categorize(0.9) is SensitivityCategory.HIGH
        with pytest.raises(ValueError):
            categorize(1.5)


class TestRiskLevel:
    def test_ordering(self):
        assert RiskLevel.NONE < RiskLevel.LOW < RiskLevel.MEDIUM < \
            RiskLevel.HIGH
        assert max([RiskLevel.LOW, RiskLevel.HIGH]) is RiskLevel.HIGH

    def test_from_name(self):
        assert RiskLevel.from_name("Medium") is RiskLevel.MEDIUM
        assert RiskLevel.from_name(RiskLevel.LOW) is RiskLevel.LOW
        with pytest.raises(ValueError):
            RiskLevel.from_name("severe")


class TestBanding:
    def test_boundaries_inclusive(self):
        banding = Banding(0.1, 0.5)
        assert banding.categorize(0.0) is RiskLevel.NONE
        assert banding.categorize(0.1) is RiskLevel.LOW
        assert banding.categorize(0.5) is RiskLevel.MEDIUM
        assert banding.categorize(0.51) is RiskLevel.HIGH

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            Banding(0.5, 0.5)
        with pytest.raises(ValueError):
            Banding(0.0, 0.5)

    def test_out_of_range_value(self):
        with pytest.raises(ValueError):
            Banding(0.1, 0.5).categorize(2.0)


class TestRiskMatrix:
    def test_example_matrix_paper_cells(self):
        matrix = RiskMatrix.example()
        assert matrix.level(RiskLevel.HIGH, RiskLevel.LOW) is \
            RiskLevel.MEDIUM  # the IV.A Administrator event
        assert matrix.level(RiskLevel.LOW, RiskLevel.LOW) is \
            RiskLevel.LOW   # after the policy fix
        assert matrix.level(RiskLevel.HIGH, RiskLevel.HIGH) is \
            RiskLevel.HIGH

    def test_none_axis_short_circuits(self):
        matrix = RiskMatrix.example()
        assert matrix.level(RiskLevel.NONE, RiskLevel.HIGH) is \
            RiskLevel.NONE
        assert matrix.level(RiskLevel.HIGH, RiskLevel.NONE) is \
            RiskLevel.NONE

    def test_assess_bands_and_looks_up(self):
        assessment = RiskMatrix.example().assess(0.9, 0.09)
        assert assessment.impact_category is RiskLevel.HIGH
        assert assessment.likelihood_category is RiskLevel.LOW
        assert assessment.level is RiskLevel.MEDIUM

    def test_missing_cell_raises(self):
        matrix = RiskMatrix({(RiskLevel.LOW, RiskLevel.LOW):
                             RiskLevel.LOW})
        with pytest.raises(AnalysisError, match="no entry"):
            matrix.level(RiskLevel.HIGH, RiskLevel.HIGH)

    def test_table_accepts_names(self):
        matrix = RiskMatrix({("low", "low"): "medium"})
        assert matrix.level(RiskLevel.LOW, RiskLevel.LOW) is \
            RiskLevel.MEDIUM


class TestScenario:
    def test_matchers(self):
        scenario = Scenario("s", 0.1, actors=frozenset({"A"}),
                            stores=frozenset({"D"}),
                            fields=frozenset({"x"}))
        assert scenario.applies("A", "D", ["x", "y"])
        assert not scenario.applies("B", "D", ["x"])
        assert not scenario.applies("A", "E", ["x"])
        assert not scenario.applies("A", "D", ["y"])
        assert not scenario.applies("A", None, ["x"])

    def test_none_matchers_match_everything(self):
        scenario = Scenario("s", 0.1)
        assert scenario.applies("anyone", None, ["whatever"])

    def test_probability_range(self):
        with pytest.raises(ValueError):
            Scenario("s", 1.5)


class TestLikelihoodModel:
    def test_paper_sum_combination(self):
        """"The resulting probability will be the sum"."""
        model = LikelihoodModel([
            accidental_access(0.04),
            maintenance_deletion(0.02),
            non_agreed_service(0.03),
        ])
        assert model.probability("A", "D", ["x"]) == pytest.approx(0.09)

    def test_sum_capped_at_one(self):
        model = LikelihoodModel([Scenario("a", 0.7), Scenario("b", 0.7)])
        assert model.probability("A", "D", ["x"]) == 1.0

    def test_noisy_or(self):
        model = LikelihoodModel(
            [Scenario("a", 0.5), Scenario("b", 0.5)], combine="noisy-or")
        assert model.probability("A", "D", ["x"]) == pytest.approx(0.75)

    def test_no_applicable_scenario_gives_zero(self):
        model = LikelihoodModel([
            Scenario("a", 0.5, actors=frozenset({"OnlyHer"}))])
        assert model.probability("A", "D", ["x"]) == 0.0

    def test_breakdown(self):
        model = LikelihoodModel.example()
        names = [name for name, _ in model.breakdown("A", "D", ["x"])]
        assert "accidental access" in names
        assert len(names) == 3

    def test_example_lands_in_low_band(self):
        """Keeps the IV.A reproduction honest: example likelihood must
        band LOW under the default banding."""
        from repro.core.risk import DEFAULT_LIKELIHOOD_BANDING
        probability = LikelihoodModel.example().probability(
            "Administrator", "EHR", ["diagnosis"])
        assert DEFAULT_LIKELIHOOD_BANDING.categorize(probability) is \
            RiskLevel.LOW

    def test_invalid_combine(self):
        with pytest.raises(ValueError):
            LikelihoodModel(combine="average")

    def test_add_fluent(self):
        model = LikelihoodModel().add(Scenario("s", 0.1))
        assert len(model.scenarios) == 1
