"""Unit tests for repro.dfd.model: nodes, flows, services, systems."""

import pytest

from repro.dfd import Actor, Datastore, Flow, NodeKind, Service, \
    SystemModel, USER
from repro.errors import ModelError
from repro.schema import DataSchema, Field


def _schema(name="S", fields=("a", "b")):
    return DataSchema(name, [Field(f) for f in fields])


class TestActor:
    def test_reserved_user_name(self):
        with pytest.raises(ValueError, match="reserved"):
            Actor(USER)

    def test_originates_deduplicated(self):
        actor = Actor("Doc", originates=("x", "x", "y"))
        assert actor.originates == ("x", "y")


class TestDatastore:
    def test_field_names_delegate_to_schema(self):
        store = Datastore("D", _schema())
        assert store.field_names() == ("a", "b")

    def test_reserved_user_name(self):
        with pytest.raises(ValueError, match="reserved"):
            Datastore(USER, _schema())


class TestFlow:
    def test_self_flow_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Flow(1, "A", "A", ("x",))

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError, match="at least one field"):
            Flow(1, "A", "B", ())

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Flow(-1, "A", "B", ("x",))

    def test_fields_deduplicated(self):
        flow = Flow(1, "A", "B", ("x", "x", "y"))
        assert flow.fields == ("x", "y")

    def test_describe_mentions_everything(self):
        flow = Flow(2, "A", "B", ("x",), purpose="p", service="svc")
        text = flow.describe()
        assert "svc#2" in text and "A -> B" in text and "p" in text


class TestService:
    def test_flows_sorted_by_order(self):
        service = Service("svc")
        service.add_flow(Flow(2, "A", "B", ("x",)))
        service.add_flow(Flow(1, "User", "A", ("x",)))
        assert [f.order for f in service.flows] == [1, 2]

    def test_duplicate_order_rejected(self):
        service = Service("svc", [Flow(1, "A", "B", ("x",))])
        with pytest.raises(ModelError, match="order 1"):
            service.add_flow(Flow(1, "B", "A", ("y",)))

    def test_flow_bound_to_service_name(self):
        service = Service("svc", [Flow(1, "A", "B", ("x",))])
        assert service.flows[0].service == "svc"

    def test_foreign_flow_rejected(self):
        foreign = Flow(1, "A", "B", ("x",), service="other")
        with pytest.raises(ModelError, match="belongs"):
            Service("svc").add_flow(foreign)

    def test_participants_and_fields(self):
        service = Service("svc", [
            Flow(1, "User", "A", ("x",)),
            Flow(2, "A", "D", ("x", "y")),
        ])
        assert service.participants() == {"User", "A", "D"}
        assert service.fields_used() == ("x", "y")


class TestSystemModel:
    def _system(self):
        system = SystemModel("sys")
        system.add_schema(_schema())
        system.add_actor(Actor("A", role="staff"))
        system.add_actor(Actor("B"))
        system.add_datastore(Datastore("D", system.schemas["S"]))
        system.add_service(Service("svc", [
            Flow(1, "User", "A", ("a",)),
            Flow(2, "A", "D", ("a",)),
        ]))
        system.add_service(Service("svc2", [
            Flow(1, "D", "B", ("a",)),
        ]))
        return system

    def test_node_kinds(self):
        system = self._system()
        assert system.node_kind(USER) is NodeKind.USER
        assert system.node_kind("A") is NodeKind.ACTOR
        assert system.node_kind("D") is NodeKind.DATASTORE
        with pytest.raises(ModelError, match="unknown node"):
            system.node_kind("Z")

    def test_actor_registered_in_policy_with_role(self):
        system = self._system()
        assert "A" in system.policy.actors
        assert system.policy.rbac.has_role("A", "staff")

    def test_name_collision_between_actor_and_store(self):
        system = self._system()
        with pytest.raises(ModelError, match="already in use"):
            system.add_actor(Actor("D"))

    def test_duplicate_schema_rejected(self):
        system = self._system()
        with pytest.raises(ModelError, match="already defined"):
            system.add_schema(_schema())

    def test_datastore_with_conflicting_schema_rejected(self):
        system = self._system()
        different = DataSchema("S", [Field("zzz")])
        with pytest.raises(ModelError, match="differs"):
            system.add_datastore(Datastore("D2", different))

    def test_datastore_registers_new_schema(self):
        system = self._system()
        system.add_datastore(Datastore("D2", _schema("S2")))
        assert "S2" in system.schemas

    def test_personal_fields_union_of_flows_and_stores(self):
        system = self._system()
        assert set(system.personal_fields()) == {"a", "b"}

    def test_allowed_and_non_allowed_actors(self):
        system = self._system()
        assert system.allowed_actors(["svc"]) == {"A"}
        assert system.non_allowed_actors(["svc"]) == {"B"}
        assert system.allowed_actors(["svc", "svc2"]) == {"A", "B"}

    def test_services_of_actor(self):
        system = self._system()
        assert system.services_of_actor("A") == ("svc",)
        assert system.services_of_actor("B") == ("svc2",)

    def test_lookup_errors_list_alternatives(self):
        system = self._system()
        with pytest.raises(ModelError, match="svc"):
            system.service("nope")
        with pytest.raises(ModelError, match="D"):
            system.datastore("nope")
        with pytest.raises(ModelError, match="A"):
            system.actor("nope")

    def test_all_flows_spans_services(self):
        assert len(self._system().all_flows()) == 3
