"""Regression snapshots: exact artefacts pinned against drift.

These tests freeze the precise outputs the reproduction stands on —
if a refactor changes any of them, the diff shows up here first,
before it silently shifts a paper-comparable number.
"""

import pytest

from repro.casestudies import (
    build_surgery_system,
    surgery_patient,
    table1_records,
)
from repro.core import GenerationOptions, generate_lts
from repro.core.risk import (
    DisclosureRiskAnalyzer,
    ValueRiskPolicy,
    render_risk_table,
    risk_sweep,
)
from repro.dfd import to_dsl

TABLE1_SNAPSHOT = """\
age         | height  | weight | height risk | age risk | age height risk
------------+---------+--------+-------------+----------+----------------
30-40       | 180-200 | 100    | 2/4         | 2/2      | 2/2
30-40       | 180-200 | 102    | 2/4         | 2/2      | 2/2
20-30       | 180-200 | 110    | 2/4         | 3/4      | 2/2
20-30       | 180-200 | 111    | 2/4         | 3/4      | 2/2
20-30       | 160-180 | 80     | 1/2         | 1/4      | 1/2
20-30       | 160-180 | 110    | 1/2         | 3/4      | 1/2
------------+---------+--------+-------------+----------+----------------
Violations: |         |        | 0           | 2        | 4              """


class TestTable1Snapshot:
    def test_rendered_table_exact(self):
        records = table1_records()
        policy = ValueRiskPolicy("weight", closeness=5.0,
                                 confidence=0.9)
        results = risk_sweep(records,
                             [["height"], ["age"], ["age", "height"]],
                             policy)
        rendered = render_risk_table(
            records, ["age", "height", "weight"], results)
        assert [line.rstrip() for line in rendered.splitlines()] == \
            [line.rstrip() for line in TABLE1_SNAPSHOT.splitlines()]


class TestLtsStatsSnapshots:
    def test_medical_service_stats(self):
        lts = generate_lts(build_surgery_system(),
                           GenerationOptions(
                               services=("MedicalService",)))
        assert lts.stats() == {
            "states": 10,
            "transitions": 12,
            "variables": 100,
            "actions": {"collect": 6, "create": 3, "read": 3},
            "kinds": {"flow": 12},
        }

    def test_full_surgery_stats(self):
        lts = generate_lts(build_surgery_system())
        stats = lts.stats()
        assert stats["states"] == 16
        assert stats["transitions"] == 21
        assert stats["actions"] == {
            "collect": 6, "create": 3, "read": 10, "anon": 2}

    def test_case_a_analysis_lts_stats(self):
        system = build_surgery_system()
        patient = surgery_patient()
        from repro.core import ModelGenerator
        lts = ModelGenerator(system).generate(GenerationOptions(
            services=("MedicalService",),
            include_potential_reads=True,
            potential_read_actors=frozenset(
                patient.non_allowed_actors(system))))
        stats = lts.stats()
        assert stats["states"] == 12
        assert stats["kinds"] == {"flow": 13, "potential": 2}


class TestRiskVerdictSnapshot:
    def test_case_a_exact_numbers(self):
        report = DisclosureRiskAnalyzer(
            build_surgery_system()).analyse(surgery_patient())
        event = report.events[0]
        assert event.assessment.impact == pytest.approx(0.9)
        assert event.assessment.likelihood == pytest.approx(0.09)
        assert event.fields == ("diagnosis", "dob", "medical_issues",
                                "name", "treatment")


class TestDslSnapshot:
    def test_surgery_dsl_first_lines(self):
        text = to_dsl(build_surgery_system())
        lines = text.splitlines()
        assert lines[0] == "system DoctorsSurgery {"
        assert "  schema AppointmentSchema {" in lines
        assert ("    flow 5 Doctor -> EHR fields [name, dob, "
                "medical_issues, diagnosis, treatment] "
                "purpose \"record consultation\"") in lines
        assert lines[-1] == "}"

    def test_dsl_is_stable_across_builds(self):
        assert to_dsl(build_surgery_system()) == \
            to_dsl(build_surgery_system())
