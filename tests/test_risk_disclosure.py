"""Unit tests for the unwanted-disclosure analyzer (paper III.A/IV.A)."""

import pytest

from repro.casestudies import (
    MEDICAL_SERVICE,
    build_surgery_system,
    surgery_patient,
    tighten_administrator_policy,
)
from repro.consent import UserProfile
from repro.core import ActionType, GenerationOptions, TransitionKind
from repro.core.risk import (
    DisclosureRiskAnalyzer,
    LikelihoodModel,
    RiskLevel,
    analyse_disclosure,
)
from repro.dfd import SystemBuilder
from repro.errors import AnalysisError


class TestCaseStudyA:
    """Section IV.A verbatim: MEDIUM before, LOW after the ACL change."""

    def test_non_allowed_actors_identified(self, surgery_system, patient):
        report = analyse_disclosure(surgery_system, patient)
        assert report.non_allowed_actors == ("Administrator",
                                             "Researcher")
        assert report.allowed_actors == ("Doctor", "Nurse",
                                         "Receptionist")

    def test_administrator_read_is_medium(self, surgery_system, patient):
        report = analyse_disclosure(surgery_system, patient)
        assert report.max_level is RiskLevel.MEDIUM
        admin_events = report.by_actor()["Administrator"]
        assert all(e.store == "EHR" for e in admin_events)
        assert any("diagnosis" in e.fields for e in admin_events)

    def test_policy_change_reduces_to_low(self, patient):
        system = tighten_administrator_policy(build_surgery_system())
        report = analyse_disclosure(system, patient)
        assert report.max_level is RiskLevel.LOW
        for event in report.events:
            assert "diagnosis" not in event.fields

    def test_medium_event_is_high_impact_low_likelihood(
            self, surgery_system, patient):
        report = analyse_disclosure(surgery_system, patient)
        event = report.events[0]
        assert event.assessment.impact_category is RiskLevel.HIGH
        assert event.assessment.likelihood_category is RiskLevel.LOW
        assert event.assessment.impact == pytest.approx(0.9)

    def test_researcher_generates_no_events(self, surgery_system,
                                            patient):
        # AnonEHR is empty during the Medical Service, so the
        # Researcher has nothing to read.
        report = analyse_disclosure(surgery_system, patient)
        assert "Researcher" not in report.by_actor()

    def test_unacceptable_for_low_tolerance_user(self, surgery_system,
                                                 patient):
        report = analyse_disclosure(surgery_system, patient)
        assert report.unacceptable_for(patient)
        fixed = tighten_administrator_policy(build_surgery_system())
        assert not analyse_disclosure(fixed, patient) \
            .unacceptable_for(patient)


class TestAnalyzerMechanics:
    def test_requires_agreed_services(self, surgery_system):
        user = UserProfile("u")
        with pytest.raises(AnalysisError, match="agreed"):
            analyse_disclosure(surgery_system, user)

    def test_transitions_annotated_with_impact(self, surgery_system,
                                               patient):
        analyzer = DisclosureRiskAnalyzer(surgery_system)
        non_allowed = patient.non_allowed_actors(surgery_system)
        from repro.core import ModelGenerator
        lts = ModelGenerator(surgery_system).generate(
            GenerationOptions(
                services=(MEDICAL_SERVICE,),
                include_potential_reads=True,
                potential_read_actors=frozenset(non_allowed)))
        analyzer.analyse(patient, lts=lts)
        assert all(t.risk is not None for t in lts.transitions)

    def test_create_gets_impact_only_annotation(self, surgery_system,
                                                patient):
        analyzer = DisclosureRiskAnalyzer(surgery_system)
        report = analyzer.analyse(patient)
        # risk events are reads only
        assert all(
            e.transition.label.action is ActionType.READ
            for e in report.events
        )

    def test_events_only_for_non_allowed_readers(self, surgery_system,
                                                 patient):
        report = analyse_disclosure(surgery_system, patient)
        assert all(e.actor in report.non_allowed_actors
                   for e in report.events)

    def test_custom_likelihood_model_changes_level(self, surgery_system,
                                                   patient):
        paranoid = LikelihoodModel([
            # everything is likely
            __import__("repro.core.risk", fromlist=["Scenario"])
            .Scenario("breach", 0.9)
        ])
        report = DisclosureRiskAnalyzer(
            surgery_system, likelihood=paranoid).analyse(patient)
        assert report.max_level is RiskLevel.HIGH

    def test_impact_measured_against_absolute_state(self):
        """A second exposure of an equally-sensitive field still has
        full impact (not zero marginal impact)."""
        system = (SystemBuilder("s")
                  .schema("S", [("x", "string", "sensitive")])
                  .schema("S2", [("x", "string", "sensitive")])
                  .actor("A").actor("Spy")
                  .datastore("D1", "S").datastore("D2", "S2")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "D1", ["x"])
                  .flow(3, "A", "D2", ["x"])
                  .allow("A", ["read", "create"], "D1")
                  .allow("A", ["read", "create"], "D2")
                  .allow("Spy", "read", "D1")
                  .allow("Spy", "read", "D2")
                  .build())
        user = UserProfile("u", agreed_services=["svc"],
                           sensitivities={"x": 0.9})
        report = analyse_disclosure(system, user)
        # Spy can read x from either store; every such read is a
        # full-impact event even after the first.
        assert report.events
        assert all(
            e.assessment.impact == pytest.approx(0.9)
            for e in report.events
        )

    def test_report_rendering(self, surgery_system, patient):
        report = analyse_disclosure(surgery_system, patient)
        table = report.summary_table()
        assert "MEDIUM" in table
        assert "Administrator" in table

    def test_report_scenario_breakdown(self, surgery_system, patient):
        report = analyse_disclosure(surgery_system, patient)
        names = [n for n, _ in report.events[0].scenario_breakdown]
        assert "accidental access" in names

    def test_empty_report_rendering(self):
        from repro.core.risk.report import DisclosureRiskReport
        report = DisclosureRiskReport("u", [], [], [])
        assert report.max_level is RiskLevel.NONE
        assert "-" in report.summary_table()

    def test_events_sorted_by_level_desc(self, surgery_system):
        user = UserProfile(
            "u", agreed_services=[MEDICAL_SERVICE],
            sensitivities={"diagnosis": 0.9, "name": 0.05},
            default_sensitivity=0.2)
        report = analyse_disclosure(surgery_system, user)
        ranks = [e.level.rank for e in report.events]
        assert ranks == sorted(ranks, reverse=True)
