"""Unit tests for DOT export and text reports."""

import pytest

from repro.casestudies import table1_records
from repro.core import GenerationOptions, generate_lts
from repro.core.risk import PseudonymisationRiskAnalyzer, ValueRiskPolicy
from repro.dfd import dfd_to_dot
from repro.errors import ModelError
from repro.viz import (
    identification_table,
    lts_digest,
    lts_to_dot,
    risk_transition_table,
    state_variable_table,
)


class TestDfdDot:
    def test_shapes_follow_fig1_conventions(self, surgery_system):
        dot = dfd_to_dot(surgery_system)
        assert '"User" [shape=oval, style=bold];' in dot
        assert '"Doctor" [shape=oval];' in dot
        assert 'shape=box' in dot
        # anonymised store drawn dashed
        assert 'style=dashed' in dot

    def test_edges_labelled_with_order_fields_purpose(self,
                                                      surgery_system):
        dot = dfd_to_dot(surgery_system)
        assert "1: {name, dob}" in dot
        assert "(book appointment)" in dot

    def test_service_filter(self, surgery_system):
        dot = dfd_to_dot(surgery_system, services=["MedicalService"])
        assert "Researcher" not in dot
        assert dot.count("subgraph") == 1

    def test_unknown_service_rejected(self, surgery_system):
        with pytest.raises(ModelError):
            dfd_to_dot(surgery_system, services=["Ghost"])

    def test_quoting(self, surgery_system):
        dot = dfd_to_dot(surgery_system, graph_name='my "graph"')
        assert '\\"graph\\"' in dot


class TestLtsDot:
    def test_states_and_edges_present(self, medical_lts):
        dot = lts_to_dot(medical_lts)
        assert '"s0"' in dot
        assert "collect{name, dob}" in dot
        assert "style=bold" in dot  # initial state

    def test_variables_suppressed_by_default(self, medical_lts):
        dot = lts_to_dot(medical_lts)
        assert "has(" not in dot

    def test_show_variables(self, medical_lts):
        dot = lts_to_dot(medical_lts, show_variables=True,
                         max_label_variables=2)
        assert "has(" in dot
        assert "... +" in dot  # truncation marker

    def test_risk_transitions_dotted(self, research_system, weight_policy,
                                     table1):
        lts = generate_lts(research_system)
        PseudonymisationRiskAnalyzer(
            research_system, weight_policy,
            dataset=table1).annotate(lts, actors=["Researcher"])
        dot = lts_to_dot(lts)
        assert "style=dotted" in dot
        assert "violations=4/6" in dot


class TestTextReports:
    def test_state_variable_table(self, medical_lts):
        from repro.core.reachability import terminal_states
        final = terminal_states(medical_lts)[0]
        table = state_variable_table(final)
        assert "actor" in table and "has" in table and "could" in table
        assert "Doctor" in table

    def test_state_variable_table_empty_state(self, medical_lts):
        table = state_variable_table(medical_lts.initial)
        assert "-" in table

    def test_identification_table(self, medical_lts):
        table = identification_table(medical_lts)
        assert "Administrator" in table
        # admin could identify EHR fields but never has
        admin_row = [line for line in table.splitlines()
                     if line.startswith("Administrator")][0]
        assert "diagnosis" in admin_row

    def test_lts_digest(self, medical_lts):
        digest = lts_digest(medical_lts, "Fig3")
        assert digest.startswith("Fig3:")
        assert "states" in digest and "collect" in digest

    def test_risk_transition_table(self, research_system, weight_policy,
                                   table1):
        lts = generate_lts(research_system)
        PseudonymisationRiskAnalyzer(
            research_system, weight_policy,
            dataset=table1).annotate(lts, actors=["Researcher"])
        table = risk_transition_table(lts)
        assert "risk" in table
        assert "Researcher" in table

    def test_risk_transition_table_empty(self, medical_lts):
        assert "-" in risk_transition_table(medical_lts)
