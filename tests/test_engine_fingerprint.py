"""Content fingerprints: stability across ordering, sensitivity to
semantic change."""

import pytest

from repro.casestudies import build_surgery_system
from repro.consent import UserProfile
from repro.core import GenerationOptions
from repro.dfd import (
    SystemBuilder,
    canonical_system_dict,
    system_from_dict,
    system_to_dict,
)
from repro.engine import (
    analyzer_stage_key,
    canonical_params,
    job_fingerprint,
    lts_stage_key,
    model_fingerprint,
    model_stage_key,
    options_fingerprint,
    stable_hash,
    user_fingerprint,
)


def _clinic(order="forward"):
    """The same model, with nodes and grants added in different
    orders."""
    builder = SystemBuilder("clinic")
    builder.schema("Visit", [("name", "string", "identifier"),
                             ("issue", "string", "sensitive")])
    if order == "forward":
        builder.actor("Doctor").actor("Auditor")
    else:
        builder.actor("Auditor").actor("Doctor")
    builder.datastore("Records", "Visit")
    builder.service("Consult")
    builder.flow(1, "User", "Doctor", ["name", "issue"])
    builder.flow(2, "Doctor", "Records", ["name", "issue"])
    if order == "forward":
        builder.allow("Doctor", ["read", "create"], "Records")
        builder.allow("Auditor", "read", "Records")
    else:
        builder.allow("Auditor", "read", "Records")
        builder.allow("Doctor", ["create", "read"], "Records")
    return builder.build()


class TestModelFingerprint:
    def test_stable_across_construction_order(self):
        assert model_fingerprint(_clinic("forward")) == \
            model_fingerprint(_clinic("reversed"))

    def test_stable_across_dict_round_trip_and_key_order(self):
        """Serialize, shuffle every mapping's key order, rebuild: the
        fingerprint must not move."""
        system = build_surgery_system()
        data = system_to_dict(system)

        def reorder(value):
            if isinstance(value, dict):
                keys = sorted(value, reverse=True)
                return {k: reorder(value[k]) for k in keys}
            if isinstance(value, list):
                return [reorder(v) for v in value]
            return value

        rebuilt = system_from_dict(reorder(data))
        assert model_fingerprint(rebuilt) == model_fingerprint(system)

    def test_descriptions_do_not_affect_fingerprint(self):
        plain = _clinic()
        described = (
            SystemBuilder("clinic")
            .schema("Visit", [("name", "string", "identifier"),
                              ("issue", "string", "sensitive")])
            .actor("Doctor", description="the attending")
            .actor("Auditor", description="compliance team")
            .datastore("Records", "Visit",
                       description="visit notes")
            .service("Consult", description="a consultation")
            .flow(1, "User", "Doctor", ["name", "issue"])
            .flow(2, "Doctor", "Records", ["name", "issue"])
            .allow("Doctor", ["read", "create"], "Records")
            .allow("Auditor", "read", "Records")
            .build()
        )
        assert model_fingerprint(plain) == model_fingerprint(described)

    def test_semantic_change_changes_fingerprint(self):
        baseline = build_surgery_system()
        tightened = build_surgery_system()
        from repro.casestudies import tighten_administrator_policy
        tighten_administrator_policy(tightened)
        assert model_fingerprint(baseline) != model_fingerprint(tightened)

    def test_canonical_dict_is_sorted(self):
        data = canonical_system_dict(_clinic("reversed"))
        actor_names = [a["name"] for a in data["actors"]]
        assert actor_names == sorted(actor_names)
        assert "description" not in data["actors"][0]


class TestOptionsAndUserFingerprints:
    def test_options_key_order_insensitive(self):
        first = GenerationOptions(
            potential_read_actors=frozenset(["B", "A"]),
            include_potential_reads=True,
            initial_store_contents={"S1": ("a", "b"), "S2": ("c",)})
        second = GenerationOptions(
            potential_read_actors=frozenset(["A", "B"]),
            include_potential_reads=True,
            initial_store_contents={"S2": ("c",), "S1": ("b", "a")})
        assert options_fingerprint(first) == options_fingerprint(second)

    def test_options_changes_are_visible(self):
        assert options_fingerprint(GenerationOptions()) != \
            options_fingerprint(GenerationOptions(ordering="sequence"))
        assert options_fingerprint(None) != \
            options_fingerprint(GenerationOptions())

    def test_user_fingerprint_insensitive_to_insertion_order(self):
        first = UserProfile("u", agreed_services=["B", "A"],
                            sensitivities={"x": 0.5, "y": 0.9})
        second = UserProfile("u", agreed_services=["A", "B"],
                             sensitivities={"y": 0.9, "x": 0.5})
        assert user_fingerprint(first) == user_fingerprint(second)

    def test_user_fingerprint_sees_sensitivity_change(self):
        first = UserProfile("u", agreed_services=["A"],
                            sensitivities={"x": 0.5})
        second = UserProfile("u", agreed_services=["A"],
                             sensitivities={"x": 0.6})
        assert user_fingerprint(first) != user_fingerprint(second)


class TestStagedKeys:
    """The three-stage identity layering: model -> LTS -> analyzer."""

    def test_model_stage_is_the_model_fingerprint(self):
        system = build_surgery_system()
        assert model_stage_key(system) == model_fingerprint(system)

    def test_lts_stage_ignores_analyzer_concerns(self):
        """Stage 2 depends on model and options only — analyzer
        config, kind and user never move it."""
        model_fp = model_fingerprint(build_surgery_system())
        options = GenerationOptions()
        assert lts_stage_key(model_fp, options) == \
            lts_stage_key(model_fp, GenerationOptions())
        assert lts_stage_key(model_fp, options) != \
            lts_stage_key(model_fp, None)
        assert lts_stage_key(model_fp, options) != \
            lts_stage_key(model_fp,
                          GenerationOptions(ordering="sequence"))

    def test_analyzer_stage_extends_the_lts_stage(self):
        user = UserProfile("u", agreed_services=["A"])
        lts_key = lts_stage_key("modelfp", GenerationOptions())
        base = analyzer_stage_key(lts_key, "disclosure", user,
                                  ("cfg",))
        assert base == analyzer_stage_key(lts_key, "disclosure", user,
                                          ("cfg",))
        assert base != analyzer_stage_key(lts_key, "pseudonym", user,
                                          ("cfg",))
        assert base != analyzer_stage_key(lts_key, "disclosure", user,
                                          ("other-cfg",))
        assert base != analyzer_stage_key("other-lts", "disclosure",
                                          user, ("cfg",))
        assert base != analyzer_stage_key(lts_key, "disclosure", user,
                                          ("cfg",),
                                          params={"withdraw": ["A"]})

    def test_job_fingerprint_composes_the_stages(self):
        system = build_surgery_system()
        user = UserProfile("u", agreed_services=["MedicalService"])
        options = GenerationOptions()
        direct = job_fingerprint(system, options, user, ("cfg",),
                                 kind="pseudonym")
        composed = analyzer_stage_key(
            lts_stage_key(model_fingerprint(system), options),
            "pseudonym", user, ("cfg",))
        assert direct == composed

    def test_canonical_params_order_insensitive(self):
        assert canonical_params({"a": [1, 2], "b": {"x", "y"}}) == \
            canonical_params({"b": {"y", "x"}, "a": (1, 2)})
        assert canonical_params(None) is None
        assert canonical_params({"a": 1}) != canonical_params({"a": 2})


class TestStableHash:
    def test_dict_key_order_is_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == \
            stable_hash({"b": 2, "a": 1})

    def test_is_a_hex_digest(self):
        digest = stable_hash(["x", 1, None])
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_rejects_unencodable_payloads(self):
        with pytest.raises(TypeError):
            stable_hash(object())
