"""Unit tests for the LTS container."""

import pytest

from repro.core import (
    ActionType,
    LTS,
    TransitionKind,
    TransitionLabel,
    VariableRegistry,
)
from repro.errors import ModelError


@pytest.fixture
def registry():
    return VariableRegistry(["A"], ["x"])


def _label(action=ActionType.COLLECT, actor="A", fields=("x",)):
    return TransitionLabel(action=action, fields=fields, actor=actor,
                           source="User", target=actor)


class TestTransitionLabel:
    def test_requires_fields_and_actor(self):
        with pytest.raises(ValueError):
            TransitionLabel(ActionType.READ, (), "A", "s", "A")
        with pytest.raises(ValueError):
            TransitionLabel(ActionType.READ, ("x",), "", "s", "A")

    def test_describe_mentions_parts(self):
        label = TransitionLabel(ActionType.READ, ("x",), "A", "S", "A",
                                schema="Sch", purpose="audit")
        text = label.describe()
        assert "read{x}" in text and "by A" in text
        assert "Sch" in text and "audit" in text

    def test_action_from_name(self):
        assert ActionType.from_name("ANON") is ActionType.ANON
        with pytest.raises(ValueError):
            ActionType.from_name("mutate")


class TestLTS:
    def test_add_state_dedups_by_key(self, registry):
        lts = LTS(registry)
        sid_a, created_a = lts.add_state("k", registry.empty_vector())
        sid_b, created_b = lts.add_state("k", registry.empty_vector())
        assert sid_a == sid_b
        assert created_a and not created_b
        assert len(lts) == 1

    def test_first_state_is_initial(self, registry):
        lts = LTS(registry)
        sid, _ = lts.add_state("k", registry.empty_vector())
        assert lts.initial.sid == sid

    def test_set_initial(self, registry):
        lts = LTS(registry)
        lts.add_state("a", registry.empty_vector())
        sid_b, _ = lts.add_state("b", registry.empty_vector())
        lts.set_initial(sid_b)
        assert lts.initial.sid == sid_b

    def test_empty_lts_has_no_initial(self, registry):
        with pytest.raises(ModelError, match="no states"):
            LTS(registry).initial

    def test_transitions_indexed_both_ways(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        b, _ = lts.add_state("b", registry.empty_vector())
        transition = lts.add_transition(a, b, _label())
        assert lts.transitions_from(a) == (transition,)
        assert lts.transitions_to(b) == (transition,)
        assert lts.successors(a) == (b,)
        assert lts.predecessors(b) == (a,)

    def test_unknown_state_rejected(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        with pytest.raises(ModelError, match="unknown state"):
            lts.add_transition(a, 99, _label())

    def test_state_by_key(self, registry):
        lts = LTS(registry)
        sid, _ = lts.add_state("a", registry.empty_vector())
        assert lts.state_by_key("a").sid == sid
        assert lts.state_by_key("zzz") is None

    def test_filtered_views(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        b, _ = lts.add_state("b", registry.empty_vector())
        lts.add_transition(a, b, _label(ActionType.COLLECT))
        lts.add_transition(
            a, b, _label(ActionType.READ), TransitionKind.POTENTIAL)
        assert len(lts.transitions_by_action(ActionType.READ)) == 1
        assert len(lts.transitions_of_kind(TransitionKind.POTENTIAL)) == 1
        assert len(lts.transitions_by_actor("A")) == 2
        assert len(lts.find_transitions(
            lambda t: t.label.action is ActionType.COLLECT)) == 1

    def test_risky_transitions_initially_empty(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        b, _ = lts.add_state("b", registry.empty_vector())
        transition = lts.add_transition(a, b, _label())
        assert lts.risky_transitions() == ()
        transition.risk = object()
        assert lts.risky_transitions() == (transition,)

    def test_stats(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        b, _ = lts.add_state("b", registry.empty_vector())
        lts.add_transition(a, b, _label())
        stats = lts.stats()
        assert stats["states"] == 2
        assert stats["transitions"] == 1
        assert stats["actions"] == {"collect": 1}
        assert stats["variables"] == 2

    def test_transition_describe(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        b, _ = lts.add_state("b", registry.empty_vector())
        transition = lts.add_transition(
            a, b, _label(), TransitionKind.RISK)
        assert "s0" in transition.describe()
        assert "[risk]" in transition.describe()


class TestMaterializedViews:
    """states/transitions/adjacency return cached tuples — analyzers
    iterate them in loops, so a fresh copy per access is a real cost —
    and the caches invalidate on append."""

    def _chain(self, registry):
        lts = LTS(registry)
        a, _ = lts.add_state("a", registry.empty_vector())
        b, _ = lts.add_state("b", registry.empty_vector())
        lts.add_transition(a, b, _label())
        return lts, a, b

    def test_views_are_not_recopied_per_access(self, registry):
        lts, a, b = self._chain(registry)
        assert lts.states is lts.states
        assert lts.transitions is lts.transitions
        assert lts.transitions_from(a) is lts.transitions_from(a)
        assert lts.transitions_to(b) is lts.transitions_to(b)
        assert lts.successors(a) is lts.successors(a)
        assert lts.predecessors(b) is lts.predecessors(b)

    def test_views_invalidate_on_append(self, registry):
        lts, a, b = self._chain(registry)
        stale_states = lts.states
        stale_transitions = lts.transitions
        stale_out = lts.transitions_from(a)
        c, _ = lts.add_state("c", registry.empty_vector())
        lts.add_transition(a, c, _label())
        assert len(lts.states) == len(stale_states) + 1
        assert len(lts.transitions) == len(stale_transitions) + 1
        assert len(lts.transitions_from(a)) == len(stale_out) + 1
        assert lts.successors(a) == (b, c)
        assert lts.predecessors(c) == (a,)
        assert lts.transitions_to(c)[-1] is lts.transitions[-1]

    def test_unknown_sid_still_rejected(self, registry):
        lts, _, _ = self._chain(registry)
        with pytest.raises(ModelError):
            lts.transitions_from(99)
        with pytest.raises(ModelError):
            lts.transitions_to(-1)
