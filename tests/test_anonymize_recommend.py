"""Unit tests for pseudonymisation recommendation."""

import pytest

from repro.anonymize import (
    Candidate,
    evaluate_candidates,
    recommend,
)
from repro.casestudies import synthetic_physical_records
from repro.core.risk import ValueRiskPolicy
from repro.errors import AnonymizationError

QIDS = ("age", "height")


@pytest.fixture
def records():
    return [r.mask(["name"])
            for r in synthetic_physical_records(200, seed=21)]


@pytest.fixture
def gated_policy():
    return ValueRiskPolicy("weight", closeness=5.0, confidence=0.9,
                           max_violation_fraction=0.10)


class TestEvaluateCandidates:
    def test_every_candidate_scored(self, records, gated_policy):
        candidates = [Candidate("mondrian", 2), Candidate("mondrian", 5)]
        evaluations = evaluate_candidates(
            records, QIDS, gated_policy, candidates=candidates)
        assert [e.candidate.k for e in evaluations] == [2, 5]
        for evaluation in evaluations:
            assert 0.0 <= evaluation.violation_fraction <= 1.0
            assert 0.0 <= evaluation.max_risk <= 1.0

    def test_risk_falls_with_k(self, records, gated_policy):
        evaluations = evaluate_candidates(
            records, QIDS, gated_policy,
            candidates=[Candidate("mondrian", 2),
                        Candidate("mondrian", 10)])
        assert evaluations[1].violation_fraction <= \
            evaluations[0].violation_fraction

    def test_recoding_skipped_without_hierarchies(self, records,
                                                  gated_policy):
        evaluations = evaluate_candidates(
            records, QIDS, gated_policy,
            candidates=[Candidate("recoding", 2),
                        Candidate("mondrian", 2)])
        assert [e.candidate.method for e in evaluations] == ["mondrian"]

    def test_oversized_k_skipped(self, gated_policy):
        small = [r.mask(["name"])
                 for r in synthetic_physical_records(3, seed=1)]
        evaluations = evaluate_candidates(
            small, QIDS, gated_policy,
            candidates=[Candidate("mondrian", 10)])
        assert evaluations == []

    def test_unknown_method_raises(self, records, gated_policy):
        with pytest.raises(ValueError, match="unknown method"):
            evaluate_candidates(records, QIDS, gated_policy,
                                candidates=[Candidate("magic", 2)])


class TestRecommend:
    def test_returns_first_acceptable(self, records, gated_policy):
        evaluation = recommend(records, QIDS, gated_policy)
        assert evaluation.acceptable(gated_policy)
        # prefers the smallest k that passes
        smaller = [c.k for c in
                   [e.candidate for e in evaluate_candidates(
                       records, QIDS, gated_policy)]
                   if c.k < evaluation.candidate.k]
        # every smaller-k candidate must have failed
        for k in set(smaller):
            for other in evaluate_candidates(
                    records, QIDS, gated_policy,
                    candidates=[Candidate("mondrian", k)]):
                assert not other.acceptable(gated_policy) or \
                    other.candidate.k == evaluation.candidate.k

    def test_requires_gated_policy(self, records):
        open_policy = ValueRiskPolicy("weight", closeness=5.0)
        with pytest.raises(AnonymizationError, match="max_violation"):
            recommend(records, QIDS, open_policy)

    def test_impossible_policy_raises_with_sweep(self, records):
        impossible = ValueRiskPolicy(
            "weight", closeness=100.0,  # everything matches
            confidence=0.01,            # everything violates
            max_violation_fraction=0.0)
        with pytest.raises(AnonymizationError, match="tried:"):
            recommend(records, QIDS, impossible,
                      candidates=[Candidate("mondrian", 2)])

    def test_describe(self, records, gated_policy):
        evaluation = recommend(records, QIDS, gated_policy)
        text = evaluation.describe()
        assert "k=" in text and "violations" in text
