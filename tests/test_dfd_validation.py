"""Unit tests for system-model validation."""

import pytest

from repro.dfd import SystemBuilder
from repro.dfd.validation import Severity, validate_system
from repro.errors import ValidationError


def _base():
    return (SystemBuilder("s")
            .schema("S", [("a", "string"), ("b", "string")])
            .actor("A")
            .actor("B")
            .datastore("D", "S"))


def _codes(issues):
    return {issue.code for issue in issues}


class TestEndpointChecks:
    def test_unknown_node(self):
        system = (_base().service("svc")
                  .flow(1, "User", "Ghost", ["a"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "unknown-node" in _codes(issues)

    def test_user_to_store_rejected(self):
        system = (_base().service("svc")
                  .flow(1, "User", "D", ["a"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "user-to-store" in _codes(issues)

    def test_store_to_user_rejected(self):
        system = (_base().service("svc")
                  .flow(1, "D", "User", ["a"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "store-to-user" in _codes(issues)

    def test_store_to_store_rejected(self):
        system = (_base().datastore("D2", "S").service("svc")
                  .flow(1, "D", "D2", ["a"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "store-to-store" in _codes(issues)


class TestFieldChecks:
    def test_store_flow_fields_must_be_in_schema(self):
        system = (_base().service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "D", ["zzz"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "field-not-in-schema" in _codes(issues)

    def test_anon_store_accepts_original_names(self):
        system = (SystemBuilder("s")
                  .schema("S", [("w", "float", "sensitive")])
                  .anonymised_schema("SA", "S")
                  .actor("A")
                  .datastore("DA", "SA", anonymised=True)
                  .service("svc")
                  .flow(1, "User", "A", ["w"])
                  .flow(2, "A", "DA", ["w"])
                  .allow("A", "create", "DA")
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "field-not-in-schema" not in _codes(issues)

    def test_grant_for_unknown_store_flagged(self):
        system = (_base().service("svc")
                  .flow(1, "User", "A", ["a"])
                  .allow("A", "read", "Ghost")
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "grant-unknown-store" in _codes(issues)

    def test_grant_for_unknown_field_flagged(self):
        system = (_base().service("svc")
                  .flow(1, "User", "A", ["a"])
                  .allow("A", "read", "D", ["zzz"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "grant-unknown-field" in _codes(issues)


class TestBehaviouralChecks:
    def test_empty_service(self):
        system = _base().service("svc").build(validate=False)
        issues = validate_system(system, strict=False)
        assert "empty-service" in _codes(issues)

    def test_unreachable_flow_warned(self):
        # A sends 'b' but never receives nor originates it.
        system = (_base().service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "B", ["b"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "unreachable-flow" in _codes(issues)

    def test_originated_field_is_reachable(self):
        system = (SystemBuilder("s").schema("S", ["a", "b"])
                  .actor("A", originates=["b"]).actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "B", ["b"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "unreachable-flow" not in _codes(issues)

    def test_unbacked_read_warned(self):
        system = (_base().service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "D", ["a"])
                  .flow(3, "D", "B", ["a"])
                  .allow("A", "create", "D")
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        assert "unbacked-read" in _codes(issues)

    def test_clean_system_has_no_errors(self, tiny_system):
        issues = validate_system(tiny_system, strict=False)
        assert all(i.severity is not Severity.ERROR for i in issues)


class TestStrictMode:
    def test_strict_raises_with_issue_list(self):
        system = (_base().service("svc")
                  .flow(1, "User", "Ghost", ["a"])
                  .build(validate=False))
        with pytest.raises(ValidationError) as excinfo:
            validate_system(system, strict=True)
        assert excinfo.value.issues

    def test_warnings_alone_do_not_raise(self):
        system = (_base().service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "B", ["b"])
                  .build(validate=False))
        issues = validate_system(system, strict=True)
        assert "unreachable-flow" in _codes(issues)

    def test_issue_str_format(self):
        system = (_base().service("svc")
                  .flow(1, "User", "Ghost", ["a"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        rendered = str(next(i for i in issues
                            if i.code == "unknown-node"))
        assert rendered.startswith("ERROR [unknown-node]")
