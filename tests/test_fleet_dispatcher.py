"""Fleet dispatcher: placement, retry, rebalance, merge equivalence.

The acceptance bar throughout: a sweep dispatched across workers —
including under injected worker loss — produces results whose
``signature()`` sequence is byte-identical to the same sweep run on a
single-node :class:`BatchEngine`.
"""

import json

import pytest

from repro.core import GenerationOptions
from repro.engine import (
    AnalysisJob,
    BatchEngine,
    ScenarioGenerator,
    model_fingerprint,
    scenario_jobs,
)
from repro.fleet import (
    FleetDispatcher,
    FleetError,
    HashRing,
    LoopbackTransport,
    RemoteQueueBackend,
    TransportError,
)
from repro.service import AnalysisService


def make_jobs(count=6, personas=2, seed=7, kinds=("disclosure",)):
    scenarios = ScenarioGenerator(
        seed=seed, personas_per_scenario=personas).generate(count)
    return scenario_jobs(scenarios, kinds=kinds)


def single_node_signatures(tmp_path, **kwargs):
    engine = BatchEngine(cache_dir=str(tmp_path / "single-node"))
    batch = engine.run(make_jobs(**kwargs))
    return [result.signature() for result in batch.results]


@pytest.fixture
def fleet(tmp_path):
    services = {
        name: AnalysisService(backend="serial",
                              cache_dir=str(tmp_path / name))
        for name in ("alpha", "beta", "gamma")
    }
    transport = LoopbackTransport(services)
    yield services, transport
    for service in services.values():
        service.close()


def make_dispatcher(transport, workers=("alpha", "beta", "gamma"),
                    **kwargs):
    kwargs.setdefault("poll_interval", 0.0)
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("timeout", 30.0)
    return FleetDispatcher(list(workers), transport, **kwargs)


class TestHashRing:
    def test_assignment_is_deterministic(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["c", "b", "a"])
        keys = [f"key-{i}" for i in range(40)]
        assert [one.assign(k) for k in keys] == \
            [two.assign(k) for k in keys]

    def test_every_worker_owns_some_keys(self):
        ring = HashRing(["a", "b", "c"])
        owners = {ring.assign(f"key-{i}") for i in range(200)}
        assert owners == {"a", "b", "c"}

    def test_removal_moves_only_the_lost_workers_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.assign(k) for k in keys}
        smaller = ring.without("b")
        assert smaller.workers == ("a", "c")
        for key in keys:
            if before[key] != "b":
                assert smaller.assign(key) == before[key]
            else:
                assert smaller.assign(key) in ("a", "c")

    def test_empty_ring_refuses_assignment(self):
        with pytest.raises(FleetError, match="no live workers"):
            HashRing([]).assign("key")

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["a"], replicas=0)


class TestDispatchEquivalence:
    def test_fleet_signatures_match_single_node(self, fleet, tmp_path):
        services, transport = fleet
        outcome = make_dispatcher(transport).run(make_jobs())
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path)

    def test_sweep_entry_point_matches_run(self, fleet, tmp_path):
        from repro.service.messages import SweepRequest
        _, transport = fleet
        request = SweepRequest(count=6, seed=7, personas=2,
                               kinds=("disclosure",))
        outcome = make_dispatcher(transport).sweep(request)
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path)

    def test_mixed_kinds_match_single_node(self, fleet, tmp_path):
        _, transport = fleet
        kinds = ("disclosure", "pseudonym")
        outcome = make_dispatcher(transport).run(
            make_jobs(kinds=kinds))
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path, kinds=kinds)
        assert set(outcome.stats.engine.by_kind) == set(kinds)

    def test_labels_and_order_mirror_the_jobs(self, fleet):
        _, transport = fleet
        jobs = make_jobs()
        outcome = make_dispatcher(transport).run(jobs)
        assert len(outcome.results) == len(jobs)
        for job, result in zip(jobs, outcome.results):
            assert result.job_id == job.job_id
            assert result.scenario == job.scenario
            assert result.family == job.family
            assert result.variant == job.variant

    def test_work_spreads_across_workers(self, fleet):
        _, transport = fleet
        outcome = make_dispatcher(transport).run(
            make_jobs(count=24, personas=1))
        dispatched = {report.worker: report.dispatched
                      for report in outcome.stats.workers}
        assert sum(dispatched.values()) == 24
        assert sum(1 for n in dispatched.values() if n) >= 2

    def test_duplicate_jobs_dedupe_into_one_shard(self, fleet):
        _, transport = fleet
        jobs = make_jobs(count=2, personas=1)
        clones = list(jobs) + [
            AnalysisJob(system=job.system, user=job.user,
                        kind=job.kind, params=job.params,
                        scenario="clone", family="clone",
                        variant="clone")
            for job in jobs
        ]
        outcome = make_dispatcher(transport).run(clones)
        assert outcome.stats.shards == len(jobs)
        assert outcome.stats.deduplicated == len(jobs)
        assert outcome.stats.engine.deduplicated == len(jobs)
        originals = outcome.results[:len(jobs)]
        duplicates = outcome.results[len(jobs):]
        for original, duplicate in zip(originals, duplicates):
            assert duplicate.signature() == original.signature()
            assert duplicate.from_cache
            assert duplicate.scenario == "clone"

    def test_outcome_serializes_to_json(self, fleet):
        _, transport = fleet
        outcome = make_dispatcher(transport).run(
            make_jobs(count=2, personas=1))
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["fleet"]["jobs"] == 2
        assert {entry["worker"] for entry in
                payload["fleet"]["workers"]} == \
            {"alpha", "beta", "gamma"}
        assert "describe" not in payload["report"]
        assert "jobs" in outcome.stats.describe()

    def test_probe_snapshots_worker_load(self, fleet):
        _, transport = fleet
        outcome = make_dispatcher(transport).run(
            make_jobs(count=2, personas=1))
        for report in outcome.stats.workers:
            assert report.load is not None
            assert report.load.max_jobs > 0
            assert report.load.in_flight == 0


class TestFleetLint:
    """Coordinator-side strict lint: nothing crosses the wire for a
    refused fleet, accounting matches single-node pre-flight."""

    def test_clean_fleet_lints_and_proceeds(self, fleet, tmp_path):
        _, transport = fleet
        jobs = make_jobs()
        outcome = make_dispatcher(transport).run(jobs, lint="strict")
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path)
        distinct = len({id(job.system) for job in jobs})
        assert outcome.stats.engine.linted == distinct

    def test_strict_refusal_before_any_dispatch(self, fleet):
        from repro.dfd import SystemBuilder
        from repro.engine import AnalysisJob
        from repro.consent import UserProfile
        from repro.errors import LintError
        services, transport = fleet
        bad = (SystemBuilder("bad").schema("S", ["a"]).actor("A")
               .datastore("D", "S").service("svc")
               .flow(1, "User", "Ghost", ["a"])
               .build(validate=False))
        jobs = [AnalysisJob(
            system=bad,
            user=UserProfile("u", agreed_services=["svc"]))]
        with pytest.raises(LintError) as excinfo:
            make_dispatcher(transport).run(jobs, lint="strict")
        assert excinfo.value.diagnostics
        # Refusal happened before the probe/dispatch phases: no
        # worker's engine saw a job.
        for service in services.values():
            assert service.engine.result_cache.stats.puts == 0

    def test_warn_mode_never_refuses(self, fleet):
        from repro.dfd import SystemBuilder
        from repro.engine import AnalysisJob
        from repro.consent import UserProfile
        _, transport = fleet
        good_jobs = make_jobs(count=2, personas=1)
        outcome = make_dispatcher(transport).run(good_jobs,
                                                 lint="warn")
        assert len(outcome.results) == len(good_jobs)
        assert outcome.stats.engine.linted > 0

    def test_invalid_lint_value_raises(self, fleet):
        _, transport = fleet
        with pytest.raises(ValueError, match="lint"):
            make_dispatcher(transport).run([], lint="loud")

    def test_sweep_strict_lint_flag_is_wired(self, fleet, tmp_path):
        from repro.service.messages import SweepRequest
        _, transport = fleet
        request = SweepRequest(count=4, seed=7, personas=1,
                               kinds=("disclosure",),
                               strict_lint=True)
        outcome = make_dispatcher(transport).sweep(request)
        assert len(outcome.results) == 4
        assert outcome.stats.engine.linted > 0


class TestFailureHandling:
    def test_transient_drop_retries_same_worker(self, fleet,
                                                tmp_path):
        _, transport = fleet
        # Fail exactly one job submission, leaving health probes (and
        # every later exchange) intact — the shard must retry on the
        # same worker, not rebalance.
        original = transport.request
        dropped = []

        def flaky(worker, method, path, payload=None, timeout=30.0):
            if path == "/v1/jobs" and method == "POST" \
                    and not dropped:
                dropped.append(worker)
                raise TransportError(worker, "transient drop")
            return original(worker, method, path, payload, timeout)

        transport.request = flaky
        outcome = make_dispatcher(transport).run(make_jobs())
        assert dropped
        assert outcome.stats.retries >= 1
        assert outcome.stats.rebalances == 0
        assert outcome.stats.lost_workers == ()
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path)

    def test_worker_lost_mid_sweep_rebalances(self, fleet, tmp_path):
        _, transport = fleet
        # Pick a worker that will certainly own shards (the ring is
        # deterministic), keep it healthy through its probe plus a
        # few exchanges, then kill it for good: the dispatcher must
        # declare it lost, rebalance its shards onto the survivors
        # and still merge a full report.
        jobs = make_jobs()
        ring = HashRing(["alpha", "beta", "gamma"])
        owners = {ring.assign(model_fingerprint(job.system))
                  for job in jobs}
        victim = sorted(owners)[0]
        transport.fail_after(victim, 5)
        outcome = make_dispatcher(transport, max_attempts=6).run(jobs)
        assert victim in outcome.stats.lost_workers
        lost = next(report for report in outcome.stats.workers
                    if report.worker == victim)
        assert lost.lost
        assert outcome.stats.rebalances >= 1
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path)

    def test_worker_dead_at_probe_is_excluded(self, fleet, tmp_path):
        _, transport = fleet
        transport.kill("gamma")
        outcome = make_dispatcher(transport).run(make_jobs())
        assert "gamma" in outcome.stats.lost_workers
        gamma = next(report for report in outcome.stats.workers
                     if report.worker == "gamma")
        assert gamma.dispatched == 0
        assert list(outcome.signatures()) == \
            single_node_signatures(tmp_path)

    def test_all_workers_dead_raises(self, fleet):
        _, transport = fleet
        for worker in ("alpha", "beta", "gamma"):
            transport.kill(worker)
        with pytest.raises(FleetError, match="no live workers"):
            make_dispatcher(transport).run(make_jobs(count=1,
                                                     personas=1))

    def test_every_worker_lost_mid_sweep_raises(self, fleet):
        _, transport = fleet
        transport.fail_after("alpha", 2)
        transport.fail_after("beta", 2)
        transport.fail_after("gamma", 2)
        with pytest.raises(FleetError):
            make_dispatcher(transport, max_attempts=10).run(
                make_jobs())

    def test_shard_attempts_are_capped(self, fleet):
        _, transport = fleet
        dispatcher = make_dispatcher(
            transport, workers=("alpha",), max_attempts=2)
        # Probe passes, every dispatch fails, health re-probes pass:
        # the shard burns its attempts on one live-but-flaky worker.
        jobs = make_jobs(count=1, personas=1)
        original = transport.request

        def flaky(worker, method, path, payload=None, timeout=30.0):
            if path in ("/v1/models", "/v1/jobs"):
                raise TransportError(worker, "flaky dispatch")
            return original(worker, method, path, payload, timeout)

        transport.request = flaky
        with pytest.raises(FleetError, match="dispatch attempts"):
            dispatcher.run(jobs)

    def test_analysis_error_fails_fast(self, fleet):
        _, transport = fleet
        jobs = make_jobs(count=1, personas=1)
        bad = AnalysisJob(system=jobs[0].system, user=jobs[0].user,
                          kind="consent_change",
                          params={"withdraw": ["NoSuchService"]})
        with pytest.raises(FleetError, match="failed on worker"):
            make_dispatcher(transport).run([bad])

    def test_explicit_generation_options_are_refused(self, fleet):
        _, transport = fleet
        job = make_jobs(count=1, personas=1)[0]
        wired = AnalysisJob(system=job.system, user=job.user,
                            options=GenerationOptions(),
                            kind=job.kind)
        with pytest.raises(FleetError, match="generation options"):
            make_dispatcher(transport).run([wired])

    def test_evicted_job_is_redispatched(self, fleet, tmp_path):
        # A worker with a one-slot job table evicts finished records
        # almost immediately; the dispatcher's not_found handling must
        # resubmit (cheap — the worker's result cache is warm) rather
        # than fail the shard.
        service = AnalysisService(backend="serial",
                                  cache_dir=str(tmp_path / "tiny"),
                                  max_jobs=1)
        transport = LoopbackTransport({"tiny": service})
        try:
            outcome = make_dispatcher(
                transport, workers=("tiny",)).run(make_jobs())
            assert list(outcome.signatures()) == \
                single_node_signatures(tmp_path)
        finally:
            service.close()


class TestRemoteQueueBackend:
    def test_engine_runs_misses_on_the_fleet(self, fleet, tmp_path):
        _, transport = fleet
        backend = RemoteQueueBackend(make_dispatcher(transport))
        engine = BatchEngine(backend=backend,
                             cache_dir=str(tmp_path / "coord"))
        batch = engine.run(make_jobs())
        assert batch.stats.backend == "fleet"
        assert batch.stats.executed == len(batch.results)
        assert [r.signature() for r in batch.results] == \
            single_node_signatures(tmp_path)
        assert backend.last_outcome is not None

    def test_second_run_is_all_coordinator_cache_hits(self, fleet,
                                                      tmp_path):
        _, transport = fleet
        backend = RemoteQueueBackend(make_dispatcher(transport))
        engine = BatchEngine(backend=backend,
                             cache_dir=str(tmp_path / "coord"))
        engine.run(make_jobs())
        calls_after_first = len(transport.calls)
        again = engine.run(make_jobs())
        assert again.stats.result_hits == len(again.results)
        assert again.stats.executed == 0
        assert len(transport.calls) == calls_after_first

    def test_single_miss_still_dispatches_remotely(self, fleet,
                                                   tmp_path):
        _, transport = fleet
        backend = RemoteQueueBackend(make_dispatcher(transport))
        engine = BatchEngine(backend=backend,
                             cache_dir=str(tmp_path / "coord"))
        batch = engine.run(make_jobs(count=1, personas=1))
        assert batch.stats.executed == 1
        assert any(path == "/v1/jobs" for _, _, path
                   in transport.calls)

    def test_fingerprint_skew_is_detected(self, fleet, tmp_path):
        from dataclasses import replace

        _, transport = fleet

        class SkewedDispatcher(FleetDispatcher):
            def run(self, jobs):
                outcome = super().run(jobs)
                poisoned = tuple(
                    replace(result, fingerprint="f" * 64)
                    for result in outcome.results)
                return replace(outcome, results=poisoned)

        backend = RemoteQueueBackend(SkewedDispatcher(
            ["alpha"], transport, poll_interval=0.0))
        engine = BatchEngine(backend=backend,
                             cache_dir=str(tmp_path / "coord"))
        with pytest.raises(FleetError, match="version skew"):
            engine.run(make_jobs(count=1, personas=1))
