"""Unit tests for the fluent SystemBuilder."""

import pytest

from repro.dfd import SystemBuilder
from repro.errors import ModelError, ValidationError
from repro.schema import Field, FieldKind, FieldType


class TestSchemaSpecs:
    def test_name_only(self):
        system = (SystemBuilder("s").schema("S", ["a"])
                  .actor("A")
                  .service("svc").flow(1, "User", "A", ["a"])
                  .build())
        field = system.schemas["S"].field("a")
        assert field.ftype is FieldType.STRING
        assert field.kind is FieldKind.REGULAR

    def test_pair_and_triple(self):
        builder = SystemBuilder("s").schema("S", [
            ("a", "int"), ("b", "float", "sensitive")])
        schema = builder.peek().schemas["S"]
        assert schema.field("a").ftype is FieldType.INT
        assert schema.field("b").kind is FieldKind.SENSITIVE

    def test_field_object_passthrough(self):
        field = Field("x", FieldType.DATE)
        builder = SystemBuilder("s").schema("S", [field])
        assert builder.peek().schemas["S"].field("x") is field

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="cannot build a field"):
            SystemBuilder("s").schema("S", [123])


class TestBuilderFlow:
    def test_flow_requires_open_service(self):
        with pytest.raises(ModelError, match="service"):
            SystemBuilder("s").flow(1, "User", "A", ["a"])

    def test_auto_numbering(self):
        system = (SystemBuilder("s").schema("S", ["a"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(None, "User", "A", ["a"])
                  .flow(None, "A", "B", ["a"])
                  .build())
        assert [f.order for f in system.service("svc").flows] == [1, 2]

    def test_auto_numbering_continues_after_explicit(self):
        system = (SystemBuilder("s").schema("S", ["a"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(5, "User", "A", ["a"])
                  .flow(None, "A", "B", ["a"])
                  .build())
        assert [f.order for f in system.service("svc").flows] == [5, 6]

    def test_unknown_schema_reference(self):
        with pytest.raises(ModelError, match="unknown schema"):
            SystemBuilder("s").datastore("D", "Ghost")

    def test_anonymised_schema(self):
        builder = (SystemBuilder("s")
                   .schema("S", [("w", "float", "sensitive")])
                   .anonymised_schema("SA", "S"))
        schema = builder.peek().schemas["SA"]
        assert schema.names() == ("w_anon",)

    def test_actors_plural(self):
        builder = SystemBuilder("s").actors("A", "B", "C")
        assert set(builder.peek().actors) == {"A", "B", "C"}

    def test_roles_and_grants(self):
        system = (SystemBuilder("s").schema("S", ["a"])
                  .role("senior", parents=[])
                  .actor("A", role="junior")
                  .assign_role("A", "senior")
                  .datastore("D", "S")
                  .service("svc").flow(1, "User", "A", ["a"])
                  .allow("senior", "read", "D")
                  .build())
        assert system.policy.can_read("A", "D", "a")


class TestBuildValidation:
    def test_build_validates_by_default(self):
        builder = (SystemBuilder("s").schema("S", ["a"])
                   .actor("A")
                   .datastore("D", "S")
                   .service("svc")
                   .flow(1, "User", "Ghost", ["a"]))
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_without_validation(self):
        builder = (SystemBuilder("s").schema("S", ["a"])
                   .actor("A")
                   .service("svc")
                   .flow(1, "User", "Ghost", ["a"]))
        system = builder.build(validate=False)
        assert "svc" in system.services

    def test_build_non_strict_returns_model(self):
        builder = (SystemBuilder("s").schema("S", ["a"])
                   .actor("A")
                   .service("svc")
                   .flow(1, "User", "Ghost", ["a"]))
        system = builder.build(strict=False)
        assert system.name == "s"
