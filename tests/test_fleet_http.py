"""Fleet dispatch over real sockets: HttpTransport against live
``repro serve`` servers must merge byte-identically to a single-node
run — the same bar the loopback tests hold."""

import threading

import pytest

from repro.engine import BatchEngine, ScenarioGenerator, scenario_jobs
from repro.fleet import (
    FleetDispatcher,
    HttpTransport,
    TransportError,
    WireError,
)
from repro.service import AnalysisService, make_server


@pytest.fixture
def http_fleet(tmp_path):
    """Two live threaded servers; yields their worker addresses."""
    services, servers, threads = [], [], []
    for index in range(2):
        service = AnalysisService(
            backend="serial",
            cache_dir=str(tmp_path / f"worker{index}"))
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        services.append(service)
        servers.append(httpd)
        threads.append(thread)
    workers = [f"127.0.0.1:{httpd.server_address[1]}"
               for httpd in servers]
    yield workers
    for httpd in servers:
        httpd.shutdown()
        httpd.server_close()
    for service in services:
        service.close()
    for thread in threads:
        thread.join(timeout=5)


def make_jobs():
    scenarios = ScenarioGenerator(
        seed=11, personas_per_scenario=2).generate(4)
    return scenario_jobs(scenarios)


def test_http_fleet_matches_single_node(http_fleet, tmp_path):
    engine = BatchEngine(cache_dir=str(tmp_path / "single-node"))
    expected = [result.signature()
                for result in engine.run(make_jobs()).results]

    transport = HttpTransport()
    dispatcher = FleetDispatcher(http_fleet, transport,
                                 poll_interval=0.005)
    outcome = dispatcher.run(make_jobs())
    assert list(outcome.signatures()) == expected
    assert outcome.stats.lost_workers == ()
    assert sum(report.dispatched
               for report in outcome.stats.workers) == len(expected)


def test_http_probe_reads_worker_load(http_fleet):
    transport = HttpTransport()
    dispatcher = FleetDispatcher(http_fleet, transport)
    outcome = dispatcher.run(make_jobs()[:2])
    for report in outcome.stats.workers:
        assert report.load is not None
        assert report.load.max_jobs == 256
        assert report.load.occupancy >= 0.0


def test_http_dead_worker_at_probe_is_excluded(http_fleet, tmp_path):
    engine = BatchEngine(cache_dir=str(tmp_path / "single-node"))
    expected = [result.signature()
                for result in engine.run(make_jobs()).results]

    # One live worker plus one address nothing listens on: the dead
    # one is excluded at probe time and the sweep still completes.
    workers = [http_fleet[0], "127.0.0.1:1"]
    dispatcher = FleetDispatcher(workers, HttpTransport(),
                                 probe_timeout=2.0,
                                 poll_interval=0.005)
    outcome = dispatcher.run(make_jobs())
    assert list(outcome.signatures()) == expected
    assert "127.0.0.1:1" in outcome.stats.lost_workers


def test_http_transport_maps_failures():
    transport = HttpTransport()
    # Nothing listens here: a transport-level failure.
    with pytest.raises(TransportError):
        transport.request("127.0.0.1:1", "GET", "/v1/health",
                          timeout=2.0)


def test_http_transport_surfaces_wire_errors(http_fleet):
    transport = HttpTransport()
    with pytest.raises(WireError) as excinfo:
        transport.request(http_fleet[0], "GET", "/v1/nonsense")
    assert excinfo.value.status == 404
    assert excinfo.value.code == "not_found"
