"""Property tests: the vectorized population path is byte-identical
to the per-user reference loop.

The batch evaluator's whole contract is "same observable output,
different cost model" — outcomes, histograms, hot spots, fractions
and engine-level ``JobResult.signature()``s must match the looped
oracle exactly on arbitrary populations and weight policies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies import build_loyalty_system, build_surgery_system
from repro.consent import UserProfile, simulate_users
from repro.core.risk import (
    PopulationAnalyzer,
    ScoreWeights,
    VectorizedPopulationAnalyzer,
)
from repro.engine import AnalysisJob, BatchEngine
from repro.engine.kinds import PopulationKind


def _surgery_patient():
    return UserProfile(
        "patient", agreed_services=["MedicalService"],
        sensitivities={"diagnosis": "high"}, acceptable_risk="low")


def _systems():
    return {"surgery": build_surgery_system(),
            "loyalty": build_loyalty_system()}


def _assert_reports_match(looped, vectorized):
    assert looped.outcomes == vectorized.outcomes
    assert looped.skipped == vectorized.skipped
    assert looped.level_histogram() == vectorized.level_histogram()
    assert looped.hot_spots() == vectorized.hot_spots()
    assert looped.unacceptable_fraction == \
        vectorized.unacceptable_fraction
    assert looped.field_scores == vectorized.field_scores
    assert looped.composite_score == vectorized.composite_score


def _weights_strategy():
    weight = st.floats(min_value=0.0, max_value=5.0,
                       allow_nan=False, allow_infinity=False)
    return st.tuples(weight, weight, weight).filter(
        lambda w: sum(w) > 0
    ).map(lambda w: ScoreWeights(semantic=w[0], uniqueness=w[1],
                                 linkability=w[2]))


def _users_strategy(system):
    fields = sorted(system.personal_fields())
    services = sorted(system.services)
    sigma = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)

    def build_user(index, agreed, sigmas, acceptable):
        user = UserProfile(f"u{index}", agreed_services=agreed,
                           acceptable_risk=acceptable)
        for field, value in zip(fields, sigmas):
            user.set_sensitivity(field, value)
        return user

    one_user = st.builds(
        build_user,
        st.integers(min_value=0, max_value=10 ** 6),
        st.sets(st.sampled_from(services)),
        st.lists(sigma, min_size=len(fields), max_size=len(fields)),
        st.sampled_from(["none", "low", "medium", "high"]),
    )
    return st.lists(one_user, max_size=12)


class TestRandomizedPopulations:
    @pytest.mark.parametrize("name", ["surgery", "loyalty"])
    @given(count=st.integers(min_value=0, max_value=40),
           seed=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_westin_population_matches_oracle(self, name, count,
                                              seed):
        system = _systems()[name]
        schema = next(iter(sorted(system.schemas.items())))[1]
        users = simulate_users(count, list(schema),
                               sorted(system.services), seed=seed)
        _assert_reports_match(
            PopulationAnalyzer(system).analyse(users),
            VectorizedPopulationAnalyzer(system).analyse(users))

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_profiles_and_weights_match_oracle(self, data):
        system = build_surgery_system()
        users = data.draw(_users_strategy(system))
        weights = data.draw(_weights_strategy())
        _assert_reports_match(
            PopulationAnalyzer(system, weights=weights).analyse(users),
            VectorizedPopulationAnalyzer(
                system, weights=weights).analyse(users))


class TestEngineSignatureEquality:
    """The two implementations must be indistinguishable through the
    engine: same fingerprints (the switch is not a job param) and
    byte-identical ``JobResult.signature()`` streams."""

    def _run(self, monkeypatch, implementation, params):
        monkeypatch.setattr(PopulationKind, "implementation",
                            implementation)
        jobs = [AnalysisJob(
            system=system,
            user=UserProfile(
                "probe",
                agreed_services=[sorted(system.services)[0]],
                default_sensitivity=0.3, acceptable_risk="low"),
            kind="population", params=params, scenario=name)
            for name, system in sorted(_systems().items())]
        # A fresh engine per run: a shared result cache would let the
        # second run answer from the first and prove nothing.
        batch = BatchEngine(backend="serial").run(jobs)
        return [result.signature() for result in batch.results]

    @pytest.mark.parametrize("params", [
        {"count": 17, "seed": 3},
        {"count": 9, "seed": 1,
         "weights": {"semantic": 2, "uniqueness": 0.5,
                     "linkability": 1.0}},
    ])
    def test_signatures_identical_across_implementations(
            self, monkeypatch, params):
        vectorized = self._run(monkeypatch, "vectorized", params)
        looped = self._run(monkeypatch, "looped", params)
        assert vectorized == looped

    @given(seed=st.integers(min_value=0, max_value=10 ** 4))
    @settings(max_examples=8, deadline=None)
    def test_signatures_identical_on_random_seeds(self, seed):
        # An explicit MonkeyPatch context instead of the fixture:
        # hypothesis reuses one fixture instance across examples.
        params = {"count": 12, "seed": seed}
        with pytest.MonkeyPatch.context() as patcher:
            vectorized = self._run(patcher, "vectorized", params)
            looped = self._run(patcher, "looped", params)
        assert vectorized == looped


class TestVectorizedReportSurface:
    def test_hot_spots_precomputed_without_reports(self):
        system = build_surgery_system()
        users = simulate_users(
            30, list(system.schemas["EHRSchema"]),
            sorted(system.services), seed=2)
        report = VectorizedPopulationAnalyzer(system).analyse(users)
        assert report.reports == ()
        looped = PopulationAnalyzer(system).analyse(users)
        assert report.hot_spots() == looped.hot_spots()

    def test_unknown_implementation_is_analysis_error(self,
                                                      monkeypatch):
        from repro.errors import AnalysisError
        monkeypatch.setattr(PopulationKind, "implementation", "gpu")
        job = AnalysisJob(system=build_surgery_system(),
                          user=_surgery_patient(), kind="population",
                          params={"count": 2})
        from repro.engine.kinds import get_kind
        from repro.engine.kinds import AnalyzerConfig
        config = AnalyzerConfig.build()
        with pytest.raises(AnalysisError,
                           match="population implementation"):
            get_kind("population").analyse(job, None, config)
