"""HTTP front-end roundtrips against a live threaded server."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AnalysisResponse,
    AnalysisService,
    make_server,
)

MODEL = """
system demo {
  schema S {
    field name: string kind identifier
    field issue: string kind sensitive
  }
  actor Doctor
  actor Auditor
  datastore Records schema S
  service Consult {
    flow 1 User -> Doctor fields [name, issue] purpose "consult"
    flow 2 Doctor -> Records fields [name, issue] purpose "record"
  }
  acl {
    allow Doctor read, create on Records
    allow Auditor read on Records
  }
}
"""

USER = {"agree": ["Consult"], "sensitivities": {"issue": "high"}}


@pytest.fixture
def server(tmp_path):
    service = AnalysisService(backend="thread",
                              cache_dir=str(tmp_path / "cache"))
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", service
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5)


def call(base, path, payload=None, method=None):
    """One JSON request; returns (status, decoded body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoundtrip:
    def test_upload_analyze_poll_fetch(self, server):
        """The canonical lifecycle: upload -> async analyze -> poll ->
        fetch, then check the async result equals the sync one."""
        base, _ = server
        status, body = call(base, "/v1/models", {"text": MODEL})
        assert status == 201
        model_hash = body["model_hash"]

        request = {"models": [{"hash": model_hash}], "user": USER}
        status, submitted = call(base, "/v1/jobs",
                                 {"op": "analyze",
                                  "request": request})
        assert status == 202
        job_id = submitted["job_id"]

        deadline = time.time() + 30
        while time.time() < deadline:
            status, polled = call(base, f"/v1/jobs/{job_id}")
            assert status == 200
            if polled["status"] in ("done", "error"):
                break
            time.sleep(0.02)
        assert polled["status"] == "done"

        status, sync = call(base, "/v1/analyze", request)
        assert status == 200
        async_response = AnalysisResponse.from_dict(polled["result"])
        sync_response = AnalysisResponse.from_dict(sync)
        assert async_response.signatures() == \
            sync_response.signatures()

    def test_http_results_match_inprocess_service(self, server):
        """Acceptance bar: the wire adds nothing and loses nothing —
        HTTP signatures equal the facade's own."""
        base, service = server
        status, body = call(base, "/v1/models", {"text": MODEL})
        request = {"models": [{"hash": body["model_hash"]}],
                   "user": USER}
        status, wire = call(base, "/v1/analyze", request)
        assert status == 200

        from repro.service import AnalysisRequest
        local = service.analyze(AnalysisRequest.from_dict(request))
        assert AnalysisResponse.from_dict(wire).signatures() == \
            local.signatures()

    def test_sweep_and_reanalyze_endpoints(self, server):
        base, _ = server
        status, sweep = call(base, "/v1/sweep",
                             {"count": 2, "personas": 1})
        assert status == 200
        assert sweep["report"]["jobs"] == 2

        status, body = call(base, "/v1/models", {"text": MODEL})
        edited = MODEL.replace(
            "    allow Auditor read on Records\n",
            "    allow Auditor read on Records\n"
            "    allow Auditor create on Records\n")
        status, after = call(base, "/v1/models", {"text": edited})
        status, re_body = call(base, "/v1/reanalyze", {
            "before": {"hash": body["model_hash"]},
            "after": {"hash": after["model_hash"]},
            "user": USER,
        })
        assert status == 200
        assert re_body["plan"]["level"] == "analyzers"
        assert re_body["lts_seeded"] == 1

    def test_cache_stats_and_prune_endpoints(self, server):
        base, _ = server
        status, body = call(base, "/v1/models", {"text": MODEL})
        call(base, "/v1/analyze",
             {"models": [{"hash": body["model_hash"]}], "user": USER})
        status, stats = call(base, "/v1/cache/stats")
        assert status == 200
        assert stats["stores"]["results"]["entries"] == 1
        status, pruned = call(base, "/v1/cache/prune",
                              {"max_bytes": 0})
        assert status == 200
        assert sum(info["removed"]
                   for info in pruned["stores"].values()) >= 2

    def test_concurrent_requests_share_the_tiered_cache(self, server):
        """N threads, same request: exactly one execution, the rest
        served from the shared cache — and every signature agrees."""
        base, service = server
        status, body = call(base, "/v1/models", {"text": MODEL})
        request = {"models": [{"hash": body["model_hash"]}],
                   "user": USER}
        call(base, "/v1/analyze", request)  # warm the tiered cache

        responses = [None] * 8
        def hit(index):
            responses[index] = call(base, "/v1/analyze", request)
        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(len(responses))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        signatures = set()
        for status, payload in responses:
            assert status == 200
            decoded = AnalysisResponse.from_dict(payload)
            assert decoded.results[0].from_cache
            signatures.add(decoded.signatures())
        assert len(signatures) == 1
        assert service.engine.result_cache.stats.hits >= \
            len(responses)


class TestErrors:
    def test_unknown_route_is_404(self, server):
        base, _ = server
        status, body = call(base, "/v1/teleport")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_malformed_json_is_400(self, server):
        base, _ = server
        request = urllib.request.Request(
            base + "/v1/analyze", data=b"{nope", method="POST")
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request, timeout=30)
        assert error.value.code == 400
        assert json.loads(error.value.read())["error"]["code"] == \
            "bad_request"

    def test_invalid_model_is_422(self, server):
        base, _ = server
        status, body = call(base, "/v1/models",
                            {"text": "system { nope"})
        assert status == 422
        assert body["error"]["code"] == "invalid_model"

    def test_unknown_hash_is_404(self, server):
        base, _ = server
        status, body = call(base, "/v1/analyze",
                            {"models": [{"hash": "0" * 64}],
                             "user": USER})
        assert status == 404

    def test_unknown_kind_is_400(self, server):
        base, _ = server
        status, body = call(base, "/v1/models", {"text": MODEL})
        status, body = call(base, "/v1/analyze",
                            {"models": [{"hash": body["model_hash"]}],
                             "user": USER, "kind": "dataflow"})
        assert status == 400
        assert "unknown analysis kind" in body["error"]["message"]

    def test_path_model_refs_are_rejected_over_http(self, server):
        base, _ = server
        status, body = call(base, "/v1/analyze",
                            {"models": [{"path": "/etc/passwd"}],
                             "user": USER})
        assert status == 400
        assert "not accepted over the wire" in \
            body["error"]["message"]

    def test_engine_input_errors_are_400_not_500(self, server):
        """Bad kind params reach the engine as a ReproError and must
        map to a structured 400, not an internal 500."""
        base, _ = server
        _, body = call(base, "/v1/models", {"text": MODEL})
        status, error = call(base, "/v1/analyze",
                             {"models": [{"hash": body["model_hash"]}],
                              "user": USER, "kind": "population",
                              "params": {"count": -1}})
        assert status == 400
        assert error["error"]["code"] == "analysis_error"
        assert "population count" in error["error"]["message"]

    def test_chunked_bodies_are_rejected_and_close(self, server):
        """No chunked decoding exists: treating the body as empty
        would run the wrong request and desync keep-alive."""
        import http.client
        base, _ = server
        host, port = base[len("http://"):].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.putrequest("POST", "/v1/sweep")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            conn.send(b"5\r\n{\"cou\r\n0\r\n\r\n")
            reply = conn.getresponse()
            assert reply.status == 400
            body = json.loads(reply.read())
            assert "chunked" in body["error"]["message"]
            assert reply.getheader("Connection") == "close"
        finally:
            conn.close()

    @pytest.mark.parametrize("content_length", ["-1", "abc",
                                                str(10 ** 9)])
    def test_bad_content_length_is_400_and_closes(self, server,
                                                  content_length):
        """Negative, garbage or oversized Content-Length must answer
        400 and drop the connection — never block reading or 500."""
        import http.client
        base, _ = server
        host, port = base[len("http://"):].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.putrequest("POST", "/v1/models")
            conn.putheader("Content-Length", content_length)
            conn.endheaders()
            reply = conn.getresponse()
            assert reply.status == 400
            body = json.loads(reply.read())
            assert body["error"]["code"] == "bad_request"
            assert reply.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_unknown_job_op_is_400(self, server):
        base, _ = server
        status, body = call(base, "/v1/jobs",
                            {"op": "explode", "request": {}})
        assert status == 400


class TestIntrospection:
    def test_health_and_kinds(self, server):
        base, _ = server
        status, health = call(base, "/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        status, kinds = call(base, "/v1/kinds")
        assert "population" in kinds["kinds"]

    def test_model_listing(self, server):
        base, _ = server
        _, body = call(base, "/v1/models", {"text": MODEL})
        status, listed = call(base, "/v1/models", method="GET")
        assert status == 200
        assert listed["models"] == [body["model_hash"]]

    def test_health_reports_worker_load(self, server):
        base, service = server
        status, health = call(base, "/v1/health")
        assert status == 200
        load = health["load"]
        assert load["in_flight"] == 0
        assert load["job_table"] == 0
        assert load["max_jobs"] == 256
        assert load["occupancy"] == 0.0
        assert load["result_cache_hits"] == 0
        assert load["lts_cache_hits"] == 0
        # A decoded WorkerLoad mirrors the wire payload.
        from repro.service import WorkerLoad
        decoded = WorkerLoad.from_health(health)
        assert decoded.to_dict() == load

    def test_health_load_counts_jobs_and_hits(self, server):
        base, _ = server
        _, body = call(base, "/v1/models", {"text": MODEL})
        request = {"models": [{"hash": body["model_hash"]}],
                   "user": USER}
        call(base, "/v1/analyze", request)
        call(base, "/v1/analyze", request)  # result-cache hit
        status, submitted = call(
            base, "/v1/jobs", {"op": "analyze", "request": request})
        assert status == 202
        deadline = time.time() + 10
        while time.time() < deadline:
            _, job = call(base,
                          f"/v1/jobs/{submitted['job_id']}")
            if job["status"] in ("done", "error"):
                break
            time.sleep(0.02)
        _, health = call(base, "/v1/health")
        load = health["load"]
        assert load["job_table"] == 1
        assert load["occupancy"] == pytest.approx(1 / 256, abs=1e-4)
        assert load["result_cache_hits"] >= 1

    def test_worker_load_tolerates_legacy_health(self):
        # A pre-load-block health payload decodes to idle defaults.
        from repro.service import WorkerLoad
        legacy = WorkerLoad.from_health({"status": "ok"})
        assert legacy.in_flight == 0
        assert legacy.max_jobs == 0
