"""Unit tests for repro.schema: fields, kinds and schema containers."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    DataSchema,
    Field,
    FieldKind,
    FieldType,
    anon_name,
    is_anon_name,
    original_name,
    schema_from_names,
)


class TestFieldType:
    def test_from_name_accepts_all_members(self):
        for member in FieldType:
            assert FieldType.from_name(member.value) is member

    def test_from_name_is_case_insensitive(self):
        assert FieldType.from_name("STRING") is FieldType.STRING

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown field type"):
            FieldType.from_name("blob")


class TestFieldKind:
    def test_aliases(self):
        assert FieldKind.from_name("id") is FieldKind.IDENTIFIER
        assert FieldKind.from_name("quasi") is FieldKind.QUASI_IDENTIFIER
        assert FieldKind.from_name("quasi-identifier") is \
            FieldKind.QUASI_IDENTIFIER
        assert FieldKind.from_name("sensitive") is FieldKind.SENSITIVE

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown field kind"):
            FieldKind.from_name("secretive")


class TestField:
    def test_defaults(self):
        field = Field("age")
        assert field.ftype is FieldType.STRING
        assert field.kind is FieldKind.REGULAR
        assert not field.is_anonymised

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Field("")

    def test_rejects_bad_characters(self):
        with pytest.raises(ValueError, match="alphanumeric"):
            Field("a b")

    def test_kind_predicates(self):
        assert Field("w", kind=FieldKind.SENSITIVE).is_sensitive
        assert Field("a", kind=FieldKind.QUASI_IDENTIFIER).is_quasi_identifier
        assert Field("n", kind=FieldKind.IDENTIFIER).is_identifier

    def test_anonymised_variant(self):
        weight = Field("weight", FieldType.FLOAT, FieldKind.SENSITIVE)
        variant = weight.anonymised()
        assert variant.name == "weight_anon"
        assert variant.anonymised_of == "weight"
        assert variant.kind is FieldKind.SENSITIVE
        assert variant.is_anonymised

    def test_anonymised_variant_of_variant_rejected(self):
        variant = Field("weight").anonymised()
        with pytest.raises(ValueError, match="already"):
            variant.anonymised()


class TestNameHelpers:
    def test_anon_name_roundtrip(self):
        assert anon_name("weight") == "weight_anon"
        assert is_anon_name("weight_anon")
        assert not is_anon_name("weight")
        assert original_name("weight_anon") == "weight"
        assert original_name("weight") == "weight"


class TestDataSchema:
    def test_iteration_order_is_declaration_order(self):
        schema = DataSchema("S", [Field("b"), Field("a")])
        assert schema.names() == ("b", "a")

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            DataSchema("S", [Field("a"), Field("a")])

    def test_anonymised_of_must_reference_existing(self):
        with pytest.raises(SchemaError, match="unknown original"):
            DataSchema("S", [Field("a_anon", anonymised_of="a")])

    def test_anonymised_of_after_original_ok(self):
        schema = DataSchema("S", [Field("a"),
                                  Field("a_anon", anonymised_of="a")])
        assert schema.anonymised_fields()[0].name == "a_anon"

    def test_field_lookup_error_lists_fields(self):
        schema = DataSchema("S", [Field("a")])
        with pytest.raises(SchemaError, match="fields: a"):
            schema.field("b")

    def test_contains_and_len(self):
        schema = DataSchema("S", [Field("a"), Field("b")])
        assert "a" in schema
        assert "z" not in schema
        assert len(schema) == 2

    def test_with_field_returns_new_schema(self):
        original = DataSchema("S", [Field("a")])
        extended = original.with_field(Field("b"))
        assert "b" in extended
        assert "b" not in original

    def test_renamed(self):
        schema = DataSchema("S", [Field("a")]).renamed("T")
        assert schema.name == "T"
        assert "a" in schema

    def test_kind_queries(self):
        schema = DataSchema("S", [
            Field("n", kind=FieldKind.IDENTIFIER),
            Field("a", kind=FieldKind.QUASI_IDENTIFIER),
            Field("w", kind=FieldKind.SENSITIVE),
            Field("x"),
        ])
        assert [f.name for f in schema.identifiers()] == ["n"]
        assert [f.name for f in schema.quasi_identifiers()] == ["a"]
        assert [f.name for f in schema.sensitive_fields()] == ["w"]

    def test_anonymised_view_default_all_fields(self):
        schema = DataSchema("S", [Field("a"), Field("b")])
        view = schema.anonymised_view()
        assert view.name == "S_anon"
        assert view.names() == ("a_anon", "b_anon")
        assert view.field("a_anon").anonymised_of == "a"

    def test_anonymised_view_subset_and_name(self):
        schema = DataSchema("S", [Field("a"), Field("b")])
        view = schema.anonymised_view(["b"], name="V")
        assert view.names() == ("b_anon",)
        assert view.name == "V"

    def test_anonymised_view_keeps_kind(self):
        schema = DataSchema("S", [Field("w", kind=FieldKind.SENSITIVE)])
        view = schema.anonymised_view()
        assert view.field("w_anon").kind is FieldKind.SENSITIVE

    def test_validate_fields(self):
        schema = DataSchema("S", [Field("a")])
        schema.validate_fields(["a"], "ctx")
        with pytest.raises(SchemaError, match="ctx"):
            schema.validate_fields(["a", "z"], "ctx")

    def test_equality_and_hash(self):
        first = DataSchema("S", [Field("a")])
        second = DataSchema("S", [Field("a")])
        assert first == second
        assert hash(first) == hash(second)
        assert first != DataSchema("S", [Field("b")])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            DataSchema("")

    def test_schema_from_names(self):
        schema = schema_from_names("S", ["a", "b"],
                                   kind=FieldKind.QUASI_IDENTIFIER)
        assert schema.names() == ("a", "b")
        assert all(f.kind is FieldKind.QUASI_IDENTIFIER for f in schema)
