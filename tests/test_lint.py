"""The lint engine: rules, spans, renderers, CLI, engine pre-flight,
wire surface."""

import json

import pytest

from repro.cli import main
from repro.dfd import SYNTHETIC, Span, SystemBuilder, parse_dsl
from repro.dfd.validation import Severity, validate_system
from repro.errors import LintError
from repro.lint import (
    Diagnostic,
    LintReport,
    RULE_CATEGORIES,
    get_rule,
    iter_rules,
    lint_text,
    render,
    render_sarif,
    render_text,
    rule_ids,
    run_lint,
)

#: The acceptance model: a shadowed grant, a dead grant and a
#: colliding pseudonym rename, all in one file with known line
#: numbers (1-based; the `acl` block starts at line 21).
ACCEPTANCE = """\
system Acceptance {
  schema Rec {
    field name: string kind identifier
    field salary: int kind sensitive
    field dept: string kind quasi
  }
  schema AnonRec {
    field name_a: string kind quasi anonymises name
    field name_b: string kind quasi anonymises name
  }
  datastore DB schema Rec
  anonymised datastore AnonDB schema AnonRec
  actor Clerk role staff originates [name]
  actor Auditor role audit
  service Payroll desc "pay" {
    flow 1 User -> Clerk fields [name, dept] purpose "hire"
    flow 2 Clerk -> DB fields [name, dept] purpose "hire"
    flow 3 DB -> Auditor fields [dept] purpose "audit"
  }
  acl {
    allow Clerk create on DB
    allow Auditor read on DB fields [dept]
    allow Auditor read on DB fields [dept]
    allow Auditor read on DB fields [salary]
  }
}
"""

CLEAN = """\
system Clean {
  schema S {
    field name: string kind identifier
  }
  actor Clerk role staff
  datastore DB schema S
  service Intake desc "intake" {
    flow 1 User -> Clerk fields [name] purpose "register"
    flow 2 Clerk -> DB fields [name] purpose "register"
    flow 3 DB -> Clerk fields [name] purpose "register"
  }
  acl {
    allow Clerk create, read on DB
  }
}
"""


@pytest.fixture
def acceptance_report():
    return lint_text(ACCEPTANCE, path="acceptance.dsl")


def _by_rule(report, rule):
    return [d for d in report.diagnostics if d.rule == rule]


class TestRegistry:
    def test_categories_cover_three_tiers(self):
        assert RULE_CATEGORIES == ("structural", "policy", "taint")

    def test_at_least_twelve_rules_across_all_tiers(self):
        rules = list(iter_rules())
        assert len(rules) >= 12
        categories = {rule.category for rule in rules}
        assert categories == set(RULE_CATEGORIES)

    def test_rule_ids_sorted_and_resolvable(self):
        ids = rule_ids()
        assert list(ids) == sorted(ids)
        for rule_id in ids:
            assert get_rule(rule_id).id == rule_id

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            get_rule("no-such-rule")

    def test_every_rule_declares_severity_and_hint(self):
        for rule in iter_rules():
            assert rule.severity in (Severity.ERROR, Severity.WARNING)
            assert rule.summary
            assert rule.hint


class TestStructuralTier:
    def test_mirrors_validation_codes_and_severities(self):
        system = (SystemBuilder("bad").schema("S", ["a"]).actor("A")
                  .datastore("D", "S").service("svc")
                  .flow(1, "User", "Ghost", ["a"])
                  .build(validate=False))
        issues = validate_system(system, strict=False)
        report = run_lint(system, select=("structural",))
        assert sorted((i.code, i.severity, i.message)
                      for i in issues) == \
            sorted((d.rule, d.severity, d.message)
                   for d in report.diagnostics)

    def test_clean_model_is_clean(self):
        report = lint_text(CLEAN)
        assert report.clean
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0


class TestAcceptanceModel:
    """The ISSUE's acceptance bar: three findings, correct spans,
    in all three formats, with 0/1/2 exit semantics."""

    def test_all_three_findings_fire(self, acceptance_report):
        report = acceptance_report
        assert len(_by_rule(report, "shadowed-grant")) == 1
        assert len(_by_rule(report, "dead-grant")) == 1
        assert len(_by_rule(report, "pseudonym-collision")) == 1

    def test_spans_point_at_the_declarations(self, acceptance_report):
        shadowed = _by_rule(acceptance_report, "shadowed-grant")[0]
        # The *third* grant (line 23) is the shadowed one; the
        # related span names the covering second grant (line 22).
        assert shadowed.span == Span(23, 5)
        assert shadowed.related[0].span == Span(22, 5)
        dead = _by_rule(acceptance_report, "dead-grant")[0]
        assert dead.span == Span(24, 5)
        collision = _by_rule(acceptance_report,
                             "pseudonym-collision")[0]
        assert collision.span.line == 8
        assert any(r.span.line == 9 for r in collision.related)

    def test_text_output_carries_line_and_column(
            self, acceptance_report):
        text = render_text(acceptance_report)
        assert "acceptance.dsl:23:5: WARNING [shadowed-grant]" in text
        assert "acceptance.dsl:24:5: WARNING [dead-grant]" in text
        assert ":8:5: WARNING [pseudonym-collision]" in text

    def test_json_output_round_trips_spans(self, acceptance_report):
        payload = json.loads(render(acceptance_report, "json"))
        by_rule = {d["rule"]: d for d in payload["diagnostics"]
                   if d["rule"] in ("shadowed-grant", "dead-grant")}
        assert (by_rule["shadowed-grant"]["line"],
                by_rule["shadowed-grant"]["column"]) == (23, 5)
        assert (by_rule["dead-grant"]["line"],
                by_rule["dead-grant"]["column"]) == (24, 5)
        assert by_rule["shadowed-grant"]["related"][0]["line"] == 22

    def test_sarif_output_carries_regions(self, acceptance_report):
        document = json.loads(render_sarif(acceptance_report))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        regions = {
            result["ruleId"]:
                result["locations"][0]["physicalLocation"]["region"]
            for result in run["results"]}
        assert regions["shadowed-grant"] == \
            {"startLine": 23, "startColumn": 5}
        assert regions["dead-grant"] == \
            {"startLine": 24, "startColumn": 5}
        rule_ids_in_driver = [r["id"]
                              for r in run["tool"]["driver"]["rules"]]
        assert rule_ids_in_driver == sorted(rule_ids_in_driver)
        assert "shadowed-grant" in rule_ids_in_driver

    def test_exit_codes(self, acceptance_report):
        # Warnings only: clean exit unless strict.
        assert acceptance_report.errors == 0
        assert acceptance_report.exit_code() == 0
        assert acceptance_report.exit_code(strict=True) == 1


class TestPolicyRules:
    def test_shadowed_grant_needs_a_covering_earlier_entry(self):
        report = lint_text(CLEAN)
        assert not _by_rule(report, "shadowed-grant")

    def test_grant_without_flow(self):
        system = (SystemBuilder("g").schema("S", ["a"])
                  .actor("Clerk").actor("Lurker")
                  .datastore("D", "S").service("svc")
                  .flow(1, "User", "Clerk", ["a"])
                  .flow(2, "Clerk", "D", ["a"])
                  .allow("Clerk", "create", "D")
                  .allow("Lurker", "read", "D")
                  .build(validate=False))
        found = _by_rule(run_lint(system), "grant-without-flow")
        assert len(found) == 1
        assert "'Lurker'" in found[0].message

    def test_write_only_store(self):
        system = (SystemBuilder("w").schema("S", ["a"])
                  .actor("Clerk")
                  .datastore("D", "S").service("svc")
                  .flow(1, "User", "Clerk", ["a"])
                  .flow(2, "Clerk", "D", ["a"])
                  .allow("Clerk", "create", "D")
                  .build(validate=False))
        found = _by_rule(run_lint(system), "write-only-store")
        assert len(found) == 1
        assert "'D'" in found[0].message

    def test_unused_purpose(self):
        report = lint_text(ACCEPTANCE)
        found = _by_rule(report, "unused-purpose")
        # "hire" flows downstream; "audit" originates at a store (not
        # USER) so neither is an unused *collection* purpose... unless
        # flagged. Just assert determinism of the rule's output here.
        assert found == _by_rule(lint_text(ACCEPTANCE),
                                 "unused-purpose")

    def test_pseudonym_never_read(self, acceptance_report):
        rules = {d.rule for d in acceptance_report.diagnostics}
        assert "pseudonym-never-read" in rules


class TestTaintRules:
    def test_dead_grant_spares_reachable_fields(self):
        # Auditor legitimately reads dept (flow 3 delivers it); only
        # the salary grant is dead.
        report = lint_text(ACCEPTANCE)
        dead = _by_rule(report, "dead-grant")
        assert len(dead) == 1
        assert "salary" in dead[0].message

    def test_silent_disclosure(self):
        system = (SystemBuilder("sd").schema("S", ["a"])
                  .actor("Clerk").actor("Reader")
                  .datastore("D", "S").service("svc")
                  .flow(1, "User", "Clerk", ["a"])
                  .flow(2, "Clerk", "D", ["a"])
                  .flow(3, "D", "Reader", ["a"])
                  .allow("Clerk", "create", "D")
                  .build(validate=False))
        found = _by_rule(run_lint(system), "silent-disclosure")
        assert len(found) == 1
        assert "'Reader'" in found[0].message


class TestSelectIgnore:
    def test_select_by_category(self, acceptance_report):
        report = lint_text(ACCEPTANCE, select=("taint",))
        assert {d.category for d in report.diagnostics} <= {"taint"}
        assert _by_rule(report, "dead-grant")

    def test_ignore_wins_over_select(self):
        report = lint_text(ACCEPTANCE, select=("policy",),
                           ignore=("shadowed-grant",))
        assert not _by_rule(report, "shadowed-grant")
        assert report.diagnostics  # other policy rules still ran

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown --select"):
            lint_text(ACCEPTANCE, select=("bogus",))

    def test_rules_run_reflects_the_filter(self):
        report = lint_text(CLEAN, select=("structural",))
        assert report.rules_run
        assert all(get_rule(r).category == "structural"
                   for r in report.rules_run)


class TestSpans:
    def test_builder_models_get_synthetic_spans(self):
        system = (SystemBuilder("b").schema("S", ["a"]).actor("A")
                  .datastore("D", "S").service("svc")
                  .flow(1, "User", "Ghost", ["a"])
                  .build(validate=False))
        report = run_lint(system)
        assert report.diagnostics
        assert all(d.span == SYNTHETIC for d in report.diagnostics)
        assert "<synthetic>" in report.diagnostics[0].describe()

    def test_duplicate_acl_entries_have_distinct_spans(self):
        # Satellite 3: entry #2 and its duplicate #3 are separate
        # grant keys in the span table, so shadowed-grant can point
        # at both locations.
        system = parse_dsl(ACCEPTANCE, validate=False)
        assert system.spans.get(("grant", 1)) == Span(22, 5)
        assert system.spans.get(("grant", 2)) == Span(23, 5)
        assert system.spans.get(("grant", 1)) != \
            system.spans.get(("grant", 2))

    def test_unknown_entity_is_synthetic_not_keyerror(self):
        system = parse_dsl(CLEAN)
        assert system.spans.get(("nonsense", "x")) == SYNTHETIC


class TestRenderers:
    def test_byte_stable_across_runs(self):
        for fmt in ("text", "json", "sarif"):
            first = render(lint_text(ACCEPTANCE), fmt)
            second = render(lint_text(ACCEPTANCE), fmt)
            assert first == second

    def test_clean_text_says_so(self):
        text = render_text(lint_text(CLEAN, path="clean.dsl"))
        assert "clean.dsl: clean (no findings)" in text

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown lint format"):
            render(lint_text(CLEAN), "xml")

    def test_diagnostic_round_trip(self, acceptance_report):
        for diagnostic in acceptance_report.diagnostics:
            clone = Diagnostic.from_dict(diagnostic.to_dict())
            assert clone == diagnostic
            assert clone.span == diagnostic.span
            assert clone.related == diagnostic.related


class TestCli:
    @pytest.fixture
    def acceptance_file(self, tmp_path):
        path = tmp_path / "acceptance.dsl"
        path.write_text(ACCEPTANCE)
        return str(path)

    def test_lint_warnings_exit_zero(self, acceptance_file, capsys):
        assert main(["lint", acceptance_file]) == 0
        out = capsys.readouterr().out
        assert "shadowed-grant" in out
        assert "dead-grant" in out
        assert "pseudonym-collision" in out

    def test_lint_strict_exits_one(self, acceptance_file):
        assert main(["lint", acceptance_file, "--strict"]) == 1

    def test_lint_errors_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.dsl"
        path.write_text(CLEAN.replace("Clerk -> DB", "Clerk -> Ghost"))
        assert main(["lint", str(path)]) == 1
        assert "unknown-node" in capsys.readouterr().out

    def test_lint_parse_failure_exits_two(self, tmp_path, capsys):
        path = tmp_path / "junk.dsl"
        path.write_text("this is not a model")
        assert main(["lint", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_lint_sarif_to_file(self, acceptance_file, tmp_path):
        out = tmp_path / "report.sarif"
        code = main(["lint", acceptance_file, "--format", "sarif",
                     "-o", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["version"] == "2.1.0"

    def test_lint_select_filters(self, acceptance_file, capsys):
        assert main(["lint", acceptance_file,
                     "--select", "structural"]) == 0
        out = capsys.readouterr().out
        assert "shadowed-grant" not in out

    def test_validate_json(self, acceptance_file, capsys):
        assert main(["validate", acceptance_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert all(d["category"] == "structural"
                   for d in payload["diagnostics"])

    def test_validate_error_model_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.dsl"
        path.write_text(CLEAN.replace("Clerk -> DB", "Clerk -> Ghost"))
        assert main(["validate", str(path)]) == 1
        assert "unknown-node" in capsys.readouterr().out


class TestLintWire:
    """Satellite 4: ``/v1/lint`` round-trips — JSON and SARIF parse
    on the far side, spans survive the wire."""

    @pytest.fixture
    def server(self, tmp_path):
        import threading
        from repro.service import AnalysisService, make_server
        service = AnalysisService(
            backend="serial", cache_dir=str(tmp_path / "cache"))
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield f"http://{host}:{port}"
        httpd.shutdown()
        httpd.server_close()
        service.close()
        thread.join(timeout=5)

    @staticmethod
    def _call(base, payload):
        import urllib.error
        import urllib.request
        request = urllib.request.Request(
            base + "/v1/lint", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_json_round_trip_spans_survive(self, server):
        from repro.service import LintRequest, LintResponse
        status, body = self._call(server, {
            "model": {"text": ACCEPTANCE}})
        assert status == 200
        response = LintResponse.from_dict(body)
        assert response.model == "Acceptance"
        assert response.errors == 0 and response.warnings >= 3
        assert response.exit_code == 0
        by_rule = {d.rule: d for d in response.diagnostics}
        assert by_rule["shadowed-grant"].span == Span(23, 5)
        assert by_rule["shadowed-grant"].related[0].span == Span(22, 5)
        assert by_rule["dead-grant"].span == Span(24, 5)
        # The decoded request shape itself round-trips too.
        request = LintRequest.from_dict(
            {"model": {"text": ACCEPTANCE}, "strict": True,
             "select": ["policy"]})
        assert LintRequest.from_dict(request.to_dict()) == request

    def test_sarif_survives_the_wire(self, server):
        status, body = self._call(server, {
            "model": {"text": ACCEPTANCE}})
        assert status == 200
        sarif = body["sarif"]
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        regions = {
            r["ruleId"]:
                r["locations"][0]["physicalLocation"]["region"]
            for r in results}
        assert regions["shadowed-grant"]["startLine"] == 23
        # Wire SARIF matches a local render of the same model.
        local = json.loads(render_sarif(lint_text(ACCEPTANCE)))
        assert {r["ruleId"] for r in results} == \
            {r["ruleId"] for r in local["runs"][0]["results"]}

    def test_strict_and_select_flags(self, server):
        status, body = self._call(server, {
            "model": {"text": ACCEPTANCE}, "strict": True})
        assert status == 200 and body["exit_code"] == 1
        status, body = self._call(server, {
            "model": {"text": ACCEPTANCE}, "select": ["taint"]})
        assert status == 200
        assert {d["category"] for d in body["diagnostics"]} == \
            {"taint"}

    def test_error_model_lints_instead_of_422(self, server):
        broken = CLEAN.replace("Clerk -> DB", "Clerk -> Ghost")
        status, body = self._call(server, {"model": {"text": broken}})
        assert status == 200
        assert body["errors"] >= 1 and body["exit_code"] == 1
        assert any(d["rule"] == "unknown-node"
                   for d in body["diagnostics"])

    def test_unparseable_model_is_422(self, server):
        status, body = self._call(server, {
            "model": {"text": "not a model"}})
        assert status == 422
        assert body["error"]["code"] == "invalid_model"

    def test_unknown_select_name_is_400(self, server):
        status, body = self._call(server, {
            "model": {"text": ACCEPTANCE}, "select": ["bogus"]})
        assert status == 400
        assert body["error"]["code"] == "bad_request"


class TestEnginePreflight:
    def _jobs(self, system):
        from repro.consent import UserProfile
        from repro.engine import AnalysisJob
        return [AnalysisJob(
            system=system,
            user=UserProfile("u", agreed_services=["svc"]))]

    def _bad_system(self):
        return (SystemBuilder("bad").schema("S", ["a"]).actor("A")
                .datastore("D", "S").service("svc")
                .flow(1, "User", "Ghost", ["a"])
                .build(validate=False))

    def _good_system(self):
        return (SystemBuilder("good").schema("S", ["a"])
                .actor("Clerk")
                .datastore("D", "S").service("svc")
                .flow(1, "User", "Clerk", ["a"])
                .flow(2, "Clerk", "D", ["a"])
                .flow(3, "D", "Clerk", ["a"])
                .allow("Clerk", "create", "D")
                .allow("Clerk", "read", "D")
                .build())

    def test_strict_refuses_before_any_cache_write(self):
        from repro.engine import BatchEngine
        engine = BatchEngine(backend="serial")
        with pytest.raises(LintError) as excinfo:
            engine.run(self._jobs(self._bad_system()), lint="strict")
        assert excinfo.value.diagnostics
        assert engine.result_cache.stats.puts == 0
        assert engine.lts_cache.stats.puts == 0

    def test_warn_mode_proceeds_and_counts(self):
        from repro.engine import BatchEngine
        engine = BatchEngine(backend="serial")
        batch = engine.run(self._jobs(self._good_system()),
                           lint="warn")
        assert len(batch.results) == 1
        assert batch.stats.linted == 1

    def test_lint_cache_reuse_across_runs(self):
        from repro.engine import BatchEngine
        engine = BatchEngine(backend="serial")
        system = self._good_system()
        first = engine.run(self._jobs(system), lint="warn")
        second = engine.run(self._jobs(system), lint="warn")
        assert first.stats.linted == 1
        assert second.stats.linted == 0
        assert second.stats.lint_reuses == 1

    def test_invalid_lint_value_raises(self):
        from repro.engine import BatchEngine
        with pytest.raises(ValueError, match="lint"):
            BatchEngine(backend="serial").run([], lint="loud")

    def test_true_means_strict(self):
        from repro.engine import BatchEngine
        with pytest.raises(LintError):
            BatchEngine(backend="serial").run(
                self._jobs(self._bad_system()), lint=True)
