"""Unit tests for the multi-user monitor pool."""

import pytest

from repro.casestudies import (
    MEDICAL_SERVICE,
    build_surgery_system,
    surgery_patient,
)
from repro.consent import UserProfile
from repro.errors import MonitorError
from repro.monitor import MonitorPool, ServiceRuntime, read_event

USER_VALUES = {"name": "Ada", "dob": "1980-01-01",
               "medical_issues": "cough"}

ADMIN_READ = read_event(
    "Administrator", "EHR",
    ["diagnosis", "dob", "medical_issues", "name", "treatment"])


def _run_session(system, pool, user):
    monitor = pool.monitor_for(user.name)
    runtime = ServiceRuntime(system, monitor=monitor)
    runtime.run_service(MEDICAL_SERVICE, USER_VALUES)


class TestMonitorPool:
    def test_register_and_route(self, surgery_system):
        pool = MonitorPool(surgery_system)
        patient = surgery_patient("p1")
        pool.register(patient)
        _run_session(surgery_system, pool, patient)
        matched = pool.observe("p1", ADMIN_READ)
        assert matched is not None
        assert pool.users_with_critical_alerts() == ("p1",)

    def test_register_is_idempotent(self, surgery_system):
        pool = MonitorPool(surgery_system)
        patient = surgery_patient("p1")
        first = pool.register(patient)
        second = pool.register(patient)
        assert first is second
        assert len(pool) == 1

    def test_no_consent_rejected(self, surgery_system):
        pool = MonitorPool(surgery_system)
        with pytest.raises(MonitorError, match="agreed"):
            pool.register(UserProfile("nobody"))

    def test_unknown_user_rejected(self, surgery_system):
        pool = MonitorPool(surgery_system)
        with pytest.raises(MonitorError, match="no monitor"):
            pool.observe("ghost", ADMIN_READ)
        with pytest.raises(MonitorError, match="no monitor"):
            pool.monitor_for("ghost")

    def test_identical_profiles_share_lts(self, surgery_system):
        pool = MonitorPool(surgery_system)
        pool.register(surgery_patient("p1"))
        pool.register(surgery_patient("p2"))
        assert len(pool._lts_cache) == 1
        assert pool.monitor_for("p1").lts is pool.monitor_for("p2").lts

    def test_different_sensitivities_do_not_share(self, surgery_system):
        pool = MonitorPool(surgery_system)
        pool.register(surgery_patient("p1"))
        relaxed = UserProfile("p2",
                              agreed_services=[MEDICAL_SERVICE],
                              default_sensitivity=0.05,
                              acceptable_risk="high")
        pool.register(relaxed)
        assert len(pool._lts_cache) == 2
        assert pool.monitor_for("p1").lts is not \
            pool.monitor_for("p2").lts

    def test_per_user_risk_grading(self, surgery_system):
        """The same admin read is CRITICAL for the sensitive user and
        only a WARNING for the relaxed one."""
        from repro.monitor import AlertSeverity
        pool = MonitorPool(surgery_system)
        sensitive = surgery_patient("sensitive")
        relaxed = UserProfile("relaxed",
                              agreed_services=[MEDICAL_SERVICE],
                              default_sensitivity=0.05,
                              acceptable_risk="high")
        pool.register(sensitive)
        pool.register(relaxed)
        _run_session(surgery_system, pool, sensitive)
        _run_session(surgery_system, pool, relaxed)
        pool.broadcast(ADMIN_READ)
        alerts = dict(pool.all_alerts())
        assert alerts["sensitive"].severity is AlertSeverity.CRITICAL
        assert alerts["relaxed"].severity is AlertSeverity.WARNING
        assert pool.users_with_critical_alerts() == ("sensitive",)

    def test_on_alert_callback_carries_user(self, surgery_system):
        seen = []
        pool = MonitorPool(
            surgery_system,
            on_alert=lambda name, alert: seen.append(name))
        patient = surgery_patient("p1")
        pool.register(patient)
        _run_session(surgery_system, pool, patient)
        pool.observe("p1", ADMIN_READ)
        assert seen == ["p1"]
