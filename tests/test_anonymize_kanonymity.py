"""Unit tests for k-anonymity checks, global recoding and Mondrian."""

import pytest

from repro.anonymize import (
    GlobalRecodingAnonymizer,
    Interval,
    MondrianAnonymizer,
    check_k_anonymity,
    equivalence_classes,
    is_k_anonymous,
)
from repro.datastore import make_records
from repro.errors import AnonymizationError


class TestEquivalenceClasses:
    def test_grouping(self):
        records = make_records([
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 2, "b": "x"},
        ])
        classes = equivalence_classes(records, ["a"])
        assert {key: len(members) for key, members in classes.items()} \
            == {(1,): 2, (2,): 1}

    def test_multi_field_key(self):
        records = make_records([
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        ])
        assert len(equivalence_classes(records, ["a", "b"])) == 2


class TestCheckKAnonymity:
    def test_k_is_min_class_size(self):
        records = make_records([
            {"a": 1}, {"a": 1}, {"a": 1}, {"a": 2}, {"a": 2},
        ])
        assert check_k_anonymity(records, ["a"]) == 2

    def test_empty_gives_zero(self):
        assert check_k_anonymity([], ["a"]) == 0

    def test_is_k_anonymous(self):
        records = make_records([{"a": 1}, {"a": 1}])
        assert is_k_anonymous(records, ["a"], 2)
        assert not is_k_anonymous(records, ["a"], 3)
        assert is_k_anonymous([], ["a"], 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_k_anonymous([], ["a"], 0)


class TestGlobalRecoding:
    def test_table1_pipeline(self, raw_physical, physical_hierarchies):
        anonymizer = GlobalRecodingAnonymizer(physical_hierarchies)
        result = anonymizer.anonymize(
            [r.mask(["name"]) for r in raw_physical], k=2)
        assert result.k_achieved >= 2
        assert result.levels == {"age": 1, "height": 1}
        assert not result.suppressed
        released_ages = {r["age"] for r in result.records}
        assert released_ages == {Interval(20, 30), Interval(30, 40)}

    def test_minimal_generalization_chosen(self, physical_hierarchies):
        # Two identical records are already 2-anonymous at level 0.
        records = make_records([
            {"age": 30, "height": 180}, {"age": 30, "height": 180},
        ])
        result = GlobalRecodingAnonymizer(
            physical_hierarchies).anonymize(records, k=2)
        assert result.levels == {"age": 0, "height": 0}

    def test_suppression_budget_used(self, physical_hierarchies):
        # One outlier that level-1 bins cannot merge.
        records = make_records([
            {"age": 20, "height": 180}, {"age": 21, "height": 181},
            {"age": 22, "height": 182}, {"age": 80, "height": 150},
        ])
        anonymizer = GlobalRecodingAnonymizer(
            physical_hierarchies, max_suppression=0.25)
        result = anonymizer.anonymize(records, k=3)
        assert len(result.suppressed) == 1
        assert result.suppression_rate == 0.25
        assert result.k_achieved >= 3

    def test_unachievable_without_budget_raises(self,
                                                physical_hierarchies):
        records = make_records([
            {"age": 20, "height": 180}, {"age": 21, "height": 181},
            {"age": 80, "height": 150}, {"age": 81, "height": 151},
        ])
        anonymizer = GlobalRecodingAnonymizer(physical_hierarchies)
        # k=3 impossible: full suppression of both fields still yields
        # one class of 4 — actually achievable; use k=5 > n instead
        with pytest.raises(AnonymizationError, match="exceeds"):
            anonymizer.anonymize(records, k=5)

    def test_full_suppression_is_last_resort(self, physical_hierarchies):
        records = make_records([
            {"age": 20, "height": 180}, {"age": 45, "height": 150},
        ])
        result = GlobalRecodingAnonymizer(
            physical_hierarchies).anonymize(records, k=2)
        # only the all-suppressed vector merges these two
        assert result.k_achieved == 2

    def test_empty_records(self, physical_hierarchies):
        result = GlobalRecodingAnonymizer(
            physical_hierarchies).anonymize([], k=2)
        assert result.records == ()

    def test_invalid_k(self, physical_hierarchies):
        with pytest.raises(ValueError):
            GlobalRecodingAnonymizer(
                physical_hierarchies).anonymize([], k=0)

    def test_bad_suppression_budget(self, physical_hierarchies):
        with pytest.raises(ValueError):
            GlobalRecodingAnonymizer(physical_hierarchies,
                                     max_suppression=1.0)

    def test_result_classes_view(self, raw_physical,
                                 physical_hierarchies):
        result = GlobalRecodingAnonymizer(physical_hierarchies).anonymize(
            [r.mask(["name"]) for r in raw_physical], k=2)
        classes = result.classes()
        assert all(len(m) >= 2 for m in classes.values())


class TestMondrian:
    def test_achieves_k(self):
        records = make_records([
            {"age": a, "height": h}
            for a, h in [(20, 150), (21, 152), (22, 154), (40, 180),
                         (41, 182), (42, 184), (60, 170), (61, 171)]
        ])
        result = MondrianAnonymizer(["age", "height"]).anonymize(
            records, k=2)
        assert result.k_achieved >= 2
        assert len(result.records) == len(records)
        assert result.levels is None

    def test_recodes_to_partition_ranges(self):
        records = make_records([
            {"age": 20}, {"age": 22}, {"age": 40}, {"age": 44},
        ])
        result = MondrianAnonymizer(["age"]).anonymize(records, k=2)
        values = {r["age"] for r in result.records}
        assert values == {Interval(20, 23), Interval(40, 45)}

    def test_uniform_partition_keeps_raw_value(self):
        records = make_records([{"age": 30}, {"age": 30}])
        result = MondrianAnonymizer(["age"]).anonymize(records, k=2)
        assert {r["age"] for r in result.records} == {30}

    def test_categorical_quasi_identifier(self):
        records = make_records([
            {"city": "rome"}, {"city": "rome"},
            {"city": "oslo"}, {"city": "oslo"},
        ])
        result = MondrianAnonymizer(["city"]).anonymize(records, k=2)
        assert result.k_achieved >= 2

    def test_k_larger_than_n_rejected(self):
        records = make_records([{"age": 1}])
        with pytest.raises(AnonymizationError, match="exceeds"):
            MondrianAnonymizer(["age"]).anonymize(records, k=2)

    def test_missing_field_rejected(self):
        records = make_records([{"age": 1}, {"other": 2}])
        with pytest.raises(AnonymizationError, match="missing"):
            MondrianAnonymizer(["age"]).anonymize(records, k=1)

    def test_no_qids_rejected(self):
        with pytest.raises(AnonymizationError):
            MondrianAnonymizer([])

    def test_mondrian_beats_global_recoding_on_spread_data(self):
        import random
        rng = random.Random(7)
        records = make_records([
            {"age": rng.randint(20, 80), "height": rng.randint(150, 200)}
            for _ in range(64)
        ])
        from repro.anonymize import (HierarchySet, NumericHierarchy,
                                     average_class_size)
        hierarchies = HierarchySet([
            NumericHierarchy("age", widths=[10, 20, 40, 80]),
            NumericHierarchy("height", widths=[10, 20, 40, 80]),
        ])
        recoded = GlobalRecodingAnonymizer(hierarchies).anonymize(
            records, k=4)
        mondrian = MondrianAnonymizer(["age", "height"]).anonymize(
            records, k=4)
        assert average_class_size(mondrian) <= \
            average_class_size(recoded)
