"""Unit tests for purpose-limitation analysis."""

import pytest

from repro.core import GenerationOptions, generate_lts
from repro.dfd import SystemBuilder
from repro.policy import check_purpose_limitation, purpose_flow_report


def _system(reuse_purpose="marketing"):
    """Collect 'email' for account purposes, then reuse it."""
    return (SystemBuilder("shop")
            .schema("S", ["email", "order"])
            .actor("Sales").actor("Marketing")
            .datastore("CRM", "S")
            .service("Orders")
            .flow(1, "User", "Sales", ["email", "order"],
                  purpose="order processing")
            .flow(2, "Sales", "CRM", ["email", "order"],
                  purpose="order processing")
            .service("Campaigns")
            .flow(1, "CRM", "Marketing", ["email"],
                  purpose=reuse_purpose)
            .allow("Sales", ["read", "create"], "CRM")
            .allow("Marketing", "read", "CRM", ["email"])
            .build())


class TestPurposeFlowReport:
    def test_collection_and_use_purposes(self):
        lts = generate_lts(_system())
        report = purpose_flow_report(lts)
        email = report["email"]
        assert email.collected_for == ("order processing",)
        assert set(email.used_for) == {"marketing",
                                       "order processing"}
        assert email.undeclared_uses == ("marketing",)

    def test_compliant_field(self):
        lts = generate_lts(_system(reuse_purpose="order processing"))
        report = purpose_flow_report(lts)
        assert report["email"].undeclared_uses == ()

    def test_injected_transitions_ignored(self):
        lts = generate_lts(_system(), GenerationOptions(
            include_potential_reads=True))
        report = purpose_flow_report(lts)
        # potential reads carry no purpose and must not pollute
        assert report["order"].undeclared_uses == ()


class TestCheckPurposeLimitation:
    def test_violation_found(self):
        lts = generate_lts(_system())
        violations = check_purpose_limitation(lts)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.field == "email"
        assert violation.purpose == "marketing"
        assert "undeclared" in violation.describe()

    def test_allowance_suppresses_violation(self):
        lts = generate_lts(_system())
        violations = check_purpose_limitation(
            lts, allowances={"email": ["marketing"]})
        assert violations == []

    def test_compliant_system_clean(self):
        lts = generate_lts(_system(reuse_purpose="order processing"))
        assert check_purpose_limitation(lts) == []

    def test_require_purposes_flags_unlabelled_use(self):
        system = (SystemBuilder("s")
                  .schema("S", ["x"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["x"], purpose="service")
                  .flow(2, "A", "B", ["x"])    # no purpose
                  .build())
        lts = generate_lts(system)
        assert check_purpose_limitation(lts) == []
        strict = check_purpose_limitation(lts, require_purposes=True)
        assert len(strict) == 1
        assert strict[0].purpose is None
        assert "no declared purpose" in strict[0].describe()

    def test_originated_fields_exempt(self, surgery_system):
        """diagnosis/treatment are never collected; their use purposes
        cannot violate a (non-existent) collection promise."""
        lts = generate_lts(surgery_system, GenerationOptions(
            services=("MedicalService",)))
        violations = check_purpose_limitation(lts)
        assert all(v.field not in ("diagnosis", "treatment",
                                   "appointment")
                   for v in violations)

    def test_surgery_system_within_purposes(self, surgery_system):
        lts = generate_lts(surgery_system, GenerationOptions(
            services=("MedicalService",)))
        # medical service reuses name/dob for scheduling/recording;
        # these are undeclared relative to "book appointment" alone
        violations = check_purpose_limitation(lts)
        fields = {v.field for v in violations}
        assert fields <= {"name", "dob", "medical_issues"}
