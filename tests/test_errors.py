"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AccessDenied,
    AnalysisError,
    AnonymizationError,
    GenerationError,
    ModelError,
    MonitorError,
    ParseError,
    PolicyViolationError,
    ReproError,
    SchemaError,
    StateLimitExceeded,
    UnknownEventError,
    ValidationError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (ModelError, ValidationError, SchemaError,
                         ParseError, GenerationError,
                         StateLimitExceeded, AnalysisError,
                         PolicyViolationError, AccessDenied,
                         AnonymizationError, MonitorError,
                         UnknownEventError):
            assert issubclass(exc_type, ReproError)

    def test_specialisations(self):
        assert issubclass(ValidationError, ModelError)
        assert issubclass(SchemaError, ModelError)
        assert issubclass(StateLimitExceeded, GenerationError)
        assert issubclass(PolicyViolationError, AnalysisError)
        assert issubclass(UnknownEventError, MonitorError)

    def test_one_handler_catches_all(self):
        with pytest.raises(ReproError):
            raise AccessDenied("a", "read", "s")


class TestPayloads:
    def test_validation_error_issues(self):
        error = ValidationError("bad", issues=["i1", "i2"])
        assert error.issues == ["i1", "i2"]
        assert ValidationError("bad").issues == []

    def test_parse_error_position_formatting(self):
        error = ParseError("oops", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert (error.line, error.column) == (3, 7)
        bare = ParseError("oops")
        assert "line" not in str(bare)

    def test_state_limit_message(self):
        error = StateLimitExceeded(100)
        assert error.limit == 100
        assert "100" in str(error)
        assert "max_states" in str(error)

    def test_access_denied_fields(self):
        error = AccessDenied("eve", "read", "ehr", "diagnosis")
        assert error.actor == "eve"
        assert "ehr.diagnosis" in str(error)
        store_level = AccessDenied("eve", "read", "ehr")
        assert "ehr" in str(store_level)

    def test_policy_violation_records(self):
        error = PolicyViolationError("too risky", violations=[1, 2, 3])
        assert len(error.violations) == 3

    def test_unknown_event_mentions_state(self):
        error = UnknownEventError("read by eve", 7)
        assert error.state_id == 7
        assert "state 7" in str(error)
        assert "diverged" in str(error)
