"""Unit tests for repro.access: ACL, RBAC and the combined policy."""

import pytest

from repro.access import (
    ALL_FIELDS,
    AccessControlList,
    AccessPolicy,
    AclEntry,
    Permission,
    RbacPolicy,
)
from repro.errors import ModelError


class TestPermission:
    def test_aliases(self):
        assert Permission.from_name("query") is Permission.READ
        assert Permission.from_name("write") is Permission.CREATE
        assert Permission.from_name("insert") is Permission.CREATE
        assert Permission.from_name("DELETE") is Permission.DELETE

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown permission"):
            Permission.from_name("own")


class TestAclEntry:
    def test_wildcard_covers_any_field(self):
        entry = AclEntry("a", "s", (Permission.READ,))
        assert entry.grants_all_fields
        assert entry.covers("a", Permission.READ, "s", "anything")

    def test_field_scoped(self):
        entry = AclEntry("a", "s", (Permission.READ,), ("x",))
        assert entry.covers("a", Permission.READ, "s", "x")
        assert not entry.covers("a", Permission.READ, "s", "y")

    def test_store_level_check_ignores_field(self):
        entry = AclEntry("a", "s", (Permission.READ,), ("x",))
        assert entry.covers("a", Permission.READ, "s", None)

    def test_wrong_subject_or_store_or_permission(self):
        entry = AclEntry("a", "s", (Permission.READ,))
        assert not entry.covers("b", Permission.READ, "s")
        assert not entry.covers("a", Permission.READ, "t")
        assert not entry.covers("a", Permission.CREATE, "s")

    def test_validation(self):
        with pytest.raises(ValueError):
            AclEntry("", "s", (Permission.READ,))
        with pytest.raises(ValueError):
            AclEntry("a", "", (Permission.READ,))
        with pytest.raises(ValueError):
            AclEntry("a", "s", ())
        with pytest.raises(ValueError):
            AclEntry("a", "s", (Permission.READ,), ())

    def test_permissions_deduplicated(self):
        entry = AclEntry("a", "s", (Permission.READ, Permission.READ))
        assert entry.permissions == (Permission.READ,)


class TestAccessControlList:
    def test_default_deny(self):
        acl = AccessControlList()
        assert not acl.is_allowed("a", Permission.READ, "s")

    def test_allow_with_string_permissions(self):
        acl = AccessControlList().allow("a", "read", "s")
        assert acl.is_allowed("a", Permission.READ, "s", "x")

    def test_allow_with_mixed_permission_list(self):
        acl = AccessControlList().allow(
            "a", [Permission.READ, "create"], "s")
        assert acl.is_allowed("a", Permission.CREATE, "s")

    def test_subjects_allowed(self):
        acl = (AccessControlList()
               .allow("a", "read", "s")
               .allow("b", "read", "s", ["x"])
               .allow("c", "create", "s"))
        assert acl.subjects_allowed(Permission.READ, "s", "x") == \
            {"a", "b"}
        assert acl.subjects_allowed(Permission.READ, "s", "y") == {"a"}

    def test_revoke_whole_permission(self):
        acl = AccessControlList().allow("a", ["read", "create"], "s")
        changed = acl.revoke("a", Permission.READ, "s")
        assert changed == 1
        assert not acl.is_allowed("a", Permission.READ, "s")
        assert acl.is_allowed("a", Permission.CREATE, "s")

    def test_revoke_specific_fields_narrows_entry(self):
        acl = AccessControlList().allow("a", "read", "s", ["x", "y"])
        acl.revoke("a", Permission.READ, "s", fields=["y"])
        assert acl.is_allowed("a", Permission.READ, "s", "x")
        assert not acl.is_allowed("a", Permission.READ, "s", "y")

    def test_revoke_fields_from_wildcard_raises(self):
        acl = AccessControlList().allow("a", "read", "s")
        with pytest.raises(ValueError, match="wildcard"):
            acl.revoke("a", Permission.READ, "s", fields=["x"])

    def test_revoke_untouched_entries_preserved(self):
        acl = (AccessControlList()
               .allow("a", "read", "s", ["x"])
               .allow("b", "read", "s", ["x"]))
        acl.revoke("a", Permission.READ, "s")
        assert acl.is_allowed("b", Permission.READ, "s", "x")

    def test_entries_for_and_len(self):
        acl = (AccessControlList()
               .allow("a", "read", "s")
               .allow("a", "read", "t"))
        assert len(acl) == 2
        assert len(acl.entries_for("s")) == 1

    def test_copy_is_independent(self):
        acl = AccessControlList().allow("a", "read", "s")
        copy = acl.copy()
        copy.revoke("a", Permission.READ, "s")
        assert acl.is_allowed("a", Permission.READ, "s")


class TestRbacPolicy:
    def test_roles_of_includes_inherited(self):
        rbac = (RbacPolicy()
                .define_role("staff")
                .define_role("doctor", parents=["staff"])
                .assign("alice", "doctor"))
        assert rbac.roles_of("alice") == {"doctor", "staff"}
        assert rbac.has_role("alice", "staff")

    def test_multi_level_inheritance(self):
        rbac = (RbacPolicy()
                .define_role("a")
                .define_role("b", parents=["a"])
                .define_role("c", parents=["b"])
                .assign("x", "c"))
        assert rbac.roles_of("x") == {"a", "b", "c"}

    def test_actors_with_role(self):
        rbac = (RbacPolicy()
                .define_role("staff")
                .define_role("doctor", parents=["staff"])
                .assign("alice", "doctor")
                .assign("bob", "staff"))
        assert rbac.actors_with_role("staff") == {"alice", "bob"}
        assert rbac.actors_with_role("doctor") == {"alice"}

    def test_duplicate_role_rejected(self):
        rbac = RbacPolicy().define_role("r")
        with pytest.raises(ModelError, match="already defined"):
            rbac.define_role("r")

    def test_validate_rejects_undefined_parent(self):
        rbac = RbacPolicy().define_role("r", parents=["ghost"])
        with pytest.raises(ModelError, match="undefined"):
            rbac.validate()

    def test_validate_rejects_undefined_assignment(self):
        rbac = RbacPolicy().define_role("r")
        rbac.assign("a", "ghost")
        with pytest.raises(ModelError, match="undefined role"):
            rbac.validate()

    def test_validate_rejects_cycle(self):
        rbac = RbacPolicy()
        rbac.define_role("a", parents=["b"])
        rbac.define_role("b", parents=["a"])
        with pytest.raises(ModelError, match="cycle"):
            rbac.validate()

    def test_assign_requires_roles(self):
        with pytest.raises(ValueError):
            RbacPolicy().assign("a")

    def test_assignments_view(self):
        rbac = RbacPolicy().define_role("r").assign("a", "r")
        assert rbac.assignments() == {"a": ("r",)}

    def test_copy_is_independent(self):
        rbac = RbacPolicy().define_role("r").assign("a", "r")
        copy = rbac.copy()
        copy.assign("a", "r2")  # undefined, but only in the copy
        assert rbac.assignments() == {"a": ("r",)}


class TestAccessPolicy:
    def _policy(self):
        policy = AccessPolicy()
        policy.register_actor("alice").register_actor("bob")
        policy.rbac.define_role("clinician")
        policy.rbac.assign("alice", "clinician")
        policy.allow("clinician", "read", "ehr", ["diagnosis"])
        policy.allow("bob", "read", "ehr", ["name"])
        return policy

    def test_role_grant_resolves_to_actor(self):
        policy = self._policy()
        assert policy.can_read("alice", "ehr", "diagnosis")
        assert not policy.can_read("bob", "ehr", "diagnosis")

    def test_readers_resolves_roles_and_actors(self):
        policy = self._policy()
        assert policy.readers("ehr", "diagnosis") == {"alice"}
        assert policy.readers("ehr", "name") == {"bob"}

    def test_readable_fields(self):
        policy = self._policy()
        assert policy.readable_fields(
            "bob", "ehr", ["name", "diagnosis"]) == {"name"}

    def test_validate_rejects_dead_subject(self):
        policy = AccessPolicy()
        policy.register_actor("a")
        policy.allow("ghost", "read", "s")
        with pytest.raises(ModelError, match="neither"):
            policy.validate()

    def test_revoke_expands_wildcard_with_store_fields(self):
        policy = AccessPolicy()
        policy.register_actor("a")
        policy.allow("a", "read", "s")
        policy.revoke("a", Permission.READ, "s", fields=["x"],
                      store_fields=["x", "y"])
        assert not policy.can_read("a", "s", "x")
        assert policy.can_read("a", "s", "y")

    def test_revoke_field_scoped_requires_store_fields_for_wildcard(self):
        policy = AccessPolicy()
        policy.register_actor("a")
        policy.allow("a", "read", "s")
        with pytest.raises(ModelError, match="store_fields"):
            policy.revoke("a", Permission.READ, "s", fields=["x"])

    def test_summary_groups_by_store(self):
        policy = self._policy()
        summary = policy.summary()
        assert set(summary) == {"ehr"}
        assert len(summary["ehr"]) == 2

    def test_copy_is_independent(self):
        policy = self._policy()
        copy = policy.copy()
        copy.allow("bob", "read", "ehr", ["diagnosis"])
        assert not policy.can_read("bob", "ehr", "diagnosis")
