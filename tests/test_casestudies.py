"""Unit tests for the case-study fixtures themselves."""

import pytest

from repro.anonymize import GlobalRecodingAnonymizer, Interval
from repro.casestudies import (
    SURGERY_ACTORS,
    SURGERY_FIELDS,
    build_research_system,
    build_surgery_system,
    raw_physical_records,
    surgery_patient,
    synthetic_ehr_rows,
    synthetic_physical_records,
    table1_hierarchies,
    table1_records,
)
from repro.core import VariableRegistry


class TestSurgerySystem:
    def test_paper_inventory(self, surgery_system):
        """Five actors, six fields, three datastores, two services."""
        assert set(surgery_system.actors) == set(SURGERY_ACTORS)
        assert set(surgery_system.datastores) == {
            "Appointments", "EHR", "AnonEHR"}
        assert set(surgery_system.services) == {
            "MedicalService", "MedicalResearchService"}
        original_fields = [f for f in surgery_system.personal_fields()
                           if not f.endswith("_anon")]
        assert set(original_fields) == set(SURGERY_FIELDS)

    def test_sixty_state_variables_over_original_fields(self):
        registry = VariableRegistry(SURGERY_ACTORS, SURGERY_FIELDS)
        assert len(registry) == 60

    def test_validates_cleanly(self, surgery_system):
        from repro.dfd.validation import Severity, validate_system
        issues = validate_system(surgery_system, strict=True)
        assert all(i.severity is not Severity.ERROR for i in issues)

    def test_anon_store_is_anonymised(self, surgery_system):
        assert surgery_system.datastore("AnonEHR").anonymised
        assert not surgery_system.datastore("EHR").anonymised

    def test_patient_profile(self, surgery_system):
        patient = surgery_patient()
        assert patient.agreed_services == ("MedicalService",)
        assert patient.sigma("diagnosis") == pytest.approx(0.9)
        assert patient.sigma("dob") == pytest.approx(0.2)


class TestResearchSystem:
    def test_structure(self, research_system):
        assert set(research_system.actors) == {
            "Clinician", "DataManager", "Researcher"}
        assert research_system.datastore(
            "AnonHealthRecords").anonymised

    def test_researcher_has_anon_access_only(self, research_system):
        policy = research_system.policy
        assert policy.can_read("Researcher", "AnonHealthRecords",
                               "weight_anon")
        assert not policy.can_read("Researcher", "HealthRecords",
                                   "weight")


class TestDatasets:
    def test_table1_records_verbatim(self, table1):
        assert len(table1) == 6
        assert table1[0]["age"] == Interval(30, 40)
        assert table1[0]["weight"] == 100
        assert table1[5]["height"] == Interval(160, 180)

    def test_raw_records_anonymise_to_table1(self, raw_physical,
                                             physical_hierarchies):
        result = GlobalRecodingAnonymizer(physical_hierarchies).anonymize(
            [r.mask(["name"]) for r in raw_physical], k=2)
        released = sorted(
            ((r["age"], r["height"], r["weight"])
             for r in result.records),
            key=lambda t: (t[0].low, t[1].low, t[2]))
        expected = sorted(
            ((r["age"], r["height"], r["weight"]) for r in
             table1_records()),
            key=lambda t: (t[0].low, t[1].low, t[2]))
        assert released == expected

    def test_synthetic_physical_deterministic(self):
        first = synthetic_physical_records(50, seed=3)
        second = synthetic_physical_records(50, seed=3)
        assert [dict(r) for r in first] == [dict(r) for r in second]

    def test_synthetic_physical_plausible_ranges(self):
        records = synthetic_physical_records(200, seed=1)
        assert all(18 <= r["age"] <= 90 for r in records)
        assert all(150 <= r["height"] <= 205 for r in records)
        assert all(40 <= r["weight"] <= 160 for r in records)

    def test_synthetic_ehr_rows(self):
        rows = synthetic_ehr_rows(10, seed=2)
        assert len(rows) == 10
        assert all(set(row) == {"name", "dob", "medical_issues",
                                "diagnosis", "treatment"}
                   for row in rows)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            synthetic_physical_records(-1)
