"""Unit tests for t-closeness."""

import math

import pytest

from repro.anonymize.tcloseness import (
    check_t_closeness,
    is_t_close,
    ordered_emd,
    total_variation,
)
from repro.datastore import make_records
from repro.errors import AnonymizationError


class TestDistances:
    def test_total_variation_bounds(self):
        assert total_variation([1, 0], [0, 1]) == 1.0
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0
        assert total_variation([0.75, 0.25], [0.25, 0.75]) == \
            pytest.approx(0.5)

    def test_ordered_emd(self):
        # moving all mass one step in a 2-point domain = distance 1
        assert ordered_emd([1, 0], [0, 1]) == pytest.approx(1.0)
        # 3-point domain: all mass across the full span
        assert ordered_emd([1, 0, 0], [0, 0, 1]) == pytest.approx(1.0)
        # half the span
        assert ordered_emd([1, 0, 0], [0, 1, 0]) == pytest.approx(0.5)
        assert ordered_emd([0.5], [0.5]) == 0.0


class TestCheckTCloseness:
    def _records(self):
        return make_records([
            {"qi": "a", "salary": 30},
            {"qi": "a", "salary": 40},
            {"qi": "b", "salary": 50},
            {"qi": "b", "salary": 60},
        ])

    def test_numeric_uses_emd(self):
        report = check_t_closeness(self._records(), ["qi"], "salary")
        assert report.distance_kind == "ordered-emd"
        assert 0.0 < report.t_value <= 1.0

    def test_categorical_uses_tv(self):
        records = make_records([
            {"qi": "a", "diag": "flu"},
            {"qi": "a", "diag": "flu"},
            {"qi": "b", "diag": "flu"},
            {"qi": "b", "diag": "cold"},
        ])
        report = check_t_closeness(records, ["qi"], "diag")
        assert report.distance_kind == "total-variation"
        # global: flu 3/4, cold 1/4; class a: flu 1 -> tv = 1/4
        assert report.t_value == pytest.approx(0.25)

    def test_identical_class_distributions_are_zero_close(self):
        records = make_records([
            {"qi": "a", "diag": "flu"}, {"qi": "a", "diag": "cold"},
            {"qi": "b", "diag": "flu"}, {"qi": "b", "diag": "cold"},
        ])
        report = check_t_closeness(records, ["qi"], "diag")
        assert report.t_value == 0.0
        assert is_t_close(records, ["qi"], "diag", 0.0)

    def test_skewed_class_detected(self):
        """The paper's 9-of-10-over-100kg situation: a class whose
        value distribution diverges from the table's."""
        rows = [{"qi": "heavy", "weight": 105} for _ in range(9)]
        rows.append({"qi": "heavy", "weight": 70})
        rows.extend({"qi": "mixed", "weight": 60 + 5 * i}
                    for i in range(10))
        records = make_records(rows)
        report = check_t_closeness(records, ["qi"], "weight")
        worst_key, worst_distance = report.worst_class()
        assert worst_key == ("heavy",)
        assert worst_distance > 0.15
        assert not report.satisfies(0.15)

    def test_missing_sensitive_field_rejected(self):
        records = make_records([{"qi": "a"}])
        with pytest.raises(AnonymizationError, match="lack"):
            check_t_closeness(records, ["qi"], "salary")

    def test_empty_records(self):
        assert is_t_close([], ["qi"], "salary", 0.1)
        report = check_t_closeness([], ["qi"], "salary")
        assert report.t_value == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            is_t_close([], ["qi"], "s", 1.5)

    def test_forced_ordered_flag(self):
        records = make_records([
            {"qi": "a", "grade": 1}, {"qi": "b", "grade": 3},
        ])
        as_categorical = check_t_closeness(records, ["qi"], "grade",
                                           ordered=False)
        as_ordered = check_t_closeness(records, ["qi"], "grade",
                                       ordered=True)
        assert as_categorical.distance_kind == "total-variation"
        assert as_ordered.distance_kind == "ordered-emd"

    def test_single_valued_domain(self):
        records = make_records([
            {"qi": "a", "weight": 70}, {"qi": "b", "weight": 70},
        ])
        report = check_t_closeness(records, ["qi"], "weight")
        assert report.t_value == 0.0
