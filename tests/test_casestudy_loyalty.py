"""Tests for the loyalty-programme case study: the method beyond
healthcare, RBAC hierarchies and delete semantics."""

import pytest

from repro.casestudies import (
    ANALYTICS_SERVICE,
    CHECKOUT_SERVICE,
    OFFERS_SERVICE,
    build_loyalty_system,
    loyalty_member,
)
from repro.core import (
    ActionType,
    GenerationOptions,
    TransitionKind,
    generate_lts,
)
from repro.core.risk import (
    DisclosureRiskAnalyzer,
    PseudonymisationRiskAnalyzer,
    RiskLevel,
    ValueRiskPolicy,
)
from repro.monitor import PrivacyMonitor, ServiceRuntime

PURCHASE = {"customer_id": "c-42", "postcode": "SO17",
            "age_band": "30-39", "basket": "wine,cheese",
            "spend": 34.5}


@pytest.fixture
def loyalty_system():
    return build_loyalty_system()


class TestModel:
    def test_validates_cleanly(self, loyalty_system):
        from repro.dfd.validation import Severity, validate_system
        issues = validate_system(loyalty_system, strict=True)
        assert all(i.severity is not Severity.ERROR for i in issues)

    def test_role_hierarchy_resolution(self, loyalty_system):
        policy = loyalty_system.policy
        # grant is to 'analytics'; MarketingDirector holds
        # 'head_office' which inherits it
        assert policy.can_read("Analyst", "TrendsDB", "basket_anon")
        assert policy.can_read("MarketingDirector", "TrendsDB",
                               "basket_anon")
        assert not policy.can_read("Cashier", "TrendsDB",
                                   "basket_anon")

    def test_dsl_round_trip(self, loyalty_system):
        from repro.dfd import parse_dsl, system_to_dict, to_dsl
        reparsed = parse_dsl(to_dsl(loyalty_system))
        assert system_to_dict(reparsed) == system_to_dict(
            loyalty_system)


class TestDisclosureAnalysis:
    def test_member_faces_risk_from_unagreed_analytics(self,
                                                       loyalty_system):
        member = loyalty_member()
        report = DisclosureRiskAnalyzer(loyalty_system).analyse(member)
        assert set(report.non_allowed_actors) == {
            "Analyst", "MarketingDirector", "DataOfficer"}
        # DataOfficer can read the raw basket from SalesDB
        officer_events = report.by_actor().get("DataOfficer", ())
        assert officer_events
        assert report.max_level >= RiskLevel.MEDIUM

    def test_agreeing_to_analytics_clears_officer_risk(self,
                                                       loyalty_system):
        member = loyalty_member().agree_to(ANALYTICS_SERVICE)
        report = DisclosureRiskAnalyzer(loyalty_system).analyse(member)
        assert "DataOfficer" not in report.by_actor()


class TestDeleteSemantics:
    def test_delete_clears_could_for_everyone(self, loyalty_system):
        options = GenerationOptions(
            services=(CHECKOUT_SERVICE,),
            include_deletes=True,
            delete_actors=frozenset({"DataOfficer"}))
        lts = generate_lts(loyalty_system, options)
        deletes = lts.transitions_by_action(ActionType.DELETE)
        assert deletes
        for transition in deletes:
            target = lts.state(transition.target).vector
            assert not target.could("OffersEngine", "basket")
            assert not target.could("DataOfficer", "basket")

    def test_delete_is_potential_kind(self, loyalty_system):
        options = GenerationOptions(
            services=(CHECKOUT_SERVICE,),
            include_deletes=True,
            delete_actors=frozenset({"DataOfficer"}))
        lts = generate_lts(loyalty_system, options)
        for transition in lts.transitions_by_action(ActionType.DELETE):
            assert transition.kind is TransitionKind.POTENTIAL


class TestPseudonymisationRisk:
    def test_analyst_inference_risk_modelled(self, loyalty_system):
        policy = ValueRiskPolicy("spend", closeness=5.0,
                                 confidence=0.9)
        lts = generate_lts(loyalty_system)
        risks = PseudonymisationRiskAnalyzer(
            loyalty_system, policy).annotate(lts, actors=["Analyst"])
        # Analyst reads spend_anon via the analytics flow, never raw
        assert risks
        assert all(r.sensitive_field == "spend" for r in risks)

    def test_officer_with_raw_access_not_at_risk(self, loyalty_system):
        policy = ValueRiskPolicy("spend", closeness=5.0)
        lts = generate_lts(loyalty_system)
        risks = PseudonymisationRiskAnalyzer(
            loyalty_system, policy).annotate(lts,
                                             actors=["DataOfficer"])
        assert risks == []


class TestRuntime:
    def test_full_programme_runs_and_tracks(self, loyalty_system):
        lts = generate_lts(loyalty_system)
        monitor = PrivacyMonitor(lts, strict=True)
        runtime = ServiceRuntime(loyalty_system, monitor=monitor)
        runtime.run_service(CHECKOUT_SERVICE, PURCHASE)
        runtime.run_service(OFFERS_SERVICE, {})
        runtime.run_service(ANALYTICS_SERVICE, {})
        assert not monitor.alerts
        assert len(runtime.store("SalesDB")) == 1
        assert len(runtime.store("TrendsDB")) == 1
        vector = monitor.current_state.vector
        assert vector.has("Analyst", "spend_anon")
        assert not vector.has("Analyst", "spend")

    def test_offers_to_user_does_not_change_privacy(self,
                                                    loyalty_system):
        lts = generate_lts(loyalty_system, GenerationOptions(
            services=(CHECKOUT_SERVICE, OFFERS_SERVICE)))
        monitor = PrivacyMonitor(lts, strict=True)
        runtime = ServiceRuntime(loyalty_system, monitor=monitor)
        runtime.run_service(CHECKOUT_SERVICE, PURCHASE)
        before = monitor.current_state.vector
        events = runtime.run_service(OFFERS_SERVICE, {})
        deliver = events[-1]
        assert deliver.action is ActionType.DISCLOSE
        assert deliver.target == "User"
        # delivering offers back to the user leaves privacy unchanged
        after = monitor.current_state.vector
        assert after.has("OffersEngine", "basket")
        assert not any(
            after.has("MarketingDirector", f)
            for f in lts.registry.fields)
