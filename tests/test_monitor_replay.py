"""Unit tests for audit-trail replay."""

import pytest

from repro.casestudies import (
    MEDICAL_SERVICE,
    build_surgery_system,
    surgery_patient,
)
from repro.core import ActionType, GenerationOptions, ModelGenerator
from repro.core.risk import DisclosureRiskAnalyzer
from repro.monitor import (
    PrivacyMonitor,
    ServiceRuntime,
    events_from_audit,
    merged_audit_events,
    replay,
)

USER_VALUES = {"name": "Ada", "dob": "1980-01-01",
               "medical_issues": "cough"}


@pytest.fixture
def ran_runtime(surgery_system):
    runtime = ServiceRuntime(surgery_system)
    runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
    return runtime


class TestEventsFromAudit:
    def test_store_operations_become_events(self, ran_runtime):
        events = events_from_audit(ran_runtime.store("EHR"))
        actions = [e.action for e in events]
        assert actions == [ActionType.CREATE, ActionType.READ]
        create, read = events
        assert create.actor == "Doctor"
        assert create.target == "EHR"
        assert read.actor == "Nurse"
        assert read.source == "EHR"

    def test_anonymised_store_writes_become_anon(self, surgery_system):
        runtime = ServiceRuntime(surgery_system)
        runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        runtime.run_service("MedicalResearchService", {})
        events = events_from_audit(runtime.store("AnonEHR"),
                                   anonymised=True)
        assert events[0].action is ActionType.ANON

    def test_merged_audit_events_order(self, ran_runtime):
        merged = merged_audit_events([
            (ran_runtime.store("Appointments"), False),
            (ran_runtime.store("EHR"), False),
        ])
        # per-store order preserved
        ehr_actions = [e.action for e in merged if "EHR" in
                       (e.source, e.target)]
        assert ehr_actions == [ActionType.CREATE, ActionType.READ]
        appt_actions = [e.action for e in merged
                        if "Appointments" in (e.source, e.target)]
        assert appt_actions == [ActionType.CREATE, ActionType.READ]


class TestReplay:
    def test_post_hoc_risk_detection(self, surgery_system):
        """Run the system unmonitored; afterwards, replay the audit of
        an Administrator EHR read against the annotated model and find
        the risk alert."""
        patient = surgery_patient()
        analyzer = DisclosureRiskAnalyzer(surgery_system)
        lts = ModelGenerator(surgery_system).generate(
            GenerationOptions(
                services=(MEDICAL_SERVICE,),
                include_potential_reads=True,
                potential_read_actors=frozenset(
                    patient.non_allowed_actors(surgery_system))))
        analyzer.analyse(patient, lts=lts)

        # live run without a monitor, then an admin read
        runtime = ServiceRuntime(surgery_system)
        live_events = runtime.run_service(MEDICAL_SERVICE, USER_VALUES)
        runtime.store("EHR").read_fields(
            "Administrator",
            ["diagnosis", "dob", "medical_issues", "name", "treatment"])

        # post-hoc: replay live flow events, then the admin audit read
        monitor = PrivacyMonitor(lts)
        replay(monitor, live_events)
        audit_events = events_from_audit(runtime.store("EHR"))
        admin_reads = [e for e in audit_events
                       if e.actor == "Administrator"]
        replay(monitor, admin_reads)
        assert monitor.critical_alerts()

    def test_stop_on_divergence(self, surgery_system, medical_lts):
        from repro.monitor import read_event
        monitor = PrivacyMonitor(medical_lts)
        rogue = read_event("Nurse", "EHR", ["name"])
        collect = None  # stream: rogue first, then anything
        matches = replay(monitor, [rogue, rogue],
                         stop_on_divergence=True)
        assert matches == [None]
        assert len(monitor.alerts) == 1

    def test_replay_matches_live_tracking(self, surgery_system):
        """Replaying the live event list reproduces the live monitor's
        final state exactly."""
        from repro.core import generate_lts
        lts = generate_lts(surgery_system, GenerationOptions(
            services=(MEDICAL_SERVICE,)))
        live_monitor = PrivacyMonitor(lts)
        runtime = ServiceRuntime(surgery_system, monitor=live_monitor)
        events = runtime.run_service(MEDICAL_SERVICE, USER_VALUES)

        replay_monitor = PrivacyMonitor(lts)
        replay(replay_monitor, events)
        assert replay_monitor.current_state.sid == \
            live_monitor.current_state.sid
        assert len(replay_monitor.trace) == len(live_monitor.trace)
