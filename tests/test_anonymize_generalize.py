"""Unit tests for generalization hierarchies."""

import pytest

from repro.anonymize import (
    CategoricalHierarchy,
    HierarchySet,
    Interval,
    NumericHierarchy,
    SUPPRESSED,
    SuppressionOnly,
)
from repro.datastore import Record
from repro.errors import AnonymizationError


class TestInterval:
    def test_membership_half_open(self):
        interval = Interval(20, 30)
        assert interval.contains(20)
        assert interval.contains(29.9)
        assert not interval.contains(30)

    def test_render_like_table1(self):
        assert str(Interval(30, 40)) == "30-40"
        assert str(Interval(180, 200)) == "180-200"
        assert str(Interval(1.5, 2.5)) == "1.5-2.5"

    def test_midpoint_width(self):
        interval = Interval(20, 30)
        assert interval.midpoint == 25
        assert interval.width == 10

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Interval(30, 30)
        with pytest.raises(ValueError):
            Interval(30, 20)

    def test_equality_hashable(self):
        assert Interval(20, 30) == Interval(20, 30)
        assert len({Interval(20, 30), Interval(20, 30)}) == 1


class TestNumericHierarchy:
    def test_levels(self):
        age = NumericHierarchy("age", widths=[10, 20])
        assert age.max_level == 3
        assert age.generalize(34, 0) == 34
        assert age.generalize(34, 1) == Interval(30, 40)
        assert age.generalize(34, 2) == Interval(20, 40)
        assert age.generalize(34, 3) == SUPPRESSED

    def test_origin_shifts_bins(self):
        hierarchy = NumericHierarchy("x", widths=[10], origin=5)
        assert hierarchy.generalize(14, 1) == Interval(5, 15)

    def test_level_out_of_range(self):
        hierarchy = NumericHierarchy("x", widths=[10])
        with pytest.raises(AnonymizationError, match="out of range"):
            hierarchy.generalize(1, 5)

    def test_widths_must_nest(self):
        with pytest.raises(AnonymizationError, match="multiple"):
            NumericHierarchy("x", widths=[10, 15])
        with pytest.raises(AnonymizationError, match="non-decreasing"):
            NumericHierarchy("x", widths=[20, 10])
        with pytest.raises(AnonymizationError, match="positive"):
            NumericHierarchy("x", widths=[0])
        with pytest.raises(AnonymizationError, match="at least one"):
            NumericHierarchy("x", widths=[])

    def test_boundary_value_goes_to_upper_bin(self):
        hierarchy = NumericHierarchy("x", widths=[10])
        assert hierarchy.generalize(30, 1) == Interval(30, 40)


class TestCategoricalHierarchy:
    def _diag(self):
        return CategoricalHierarchy("diag", {
            "flu": ["respiratory", "illness"],
            "asthma": ["respiratory", "illness"],
            "eczema": ["dermal", "illness"],
        })

    def test_levels(self):
        diag = self._diag()
        assert diag.max_level == 3
        assert diag.generalize("flu", 0) == "flu"
        assert diag.generalize("flu", 1) == "respiratory"
        assert diag.generalize("flu", 2) == "illness"
        assert diag.generalize("flu", 3) == SUPPRESSED

    def test_unknown_value(self):
        with pytest.raises(AnonymizationError, match="not in the"):
            self._diag().generalize("gout", 1)

    def test_chains_must_align(self):
        with pytest.raises(AnonymizationError, match="equal"):
            CategoricalHierarchy("d", {"a": ["x"], "b": ["x", "y"]})

    def test_empty_rejected(self):
        with pytest.raises(AnonymizationError, match="no values"):
            CategoricalHierarchy("d", {})


class TestSuppressionOnly:
    def test_two_levels(self):
        hierarchy = SuppressionOnly("name")
        assert hierarchy.max_level == 1
        assert hierarchy.generalize("ada", 0) == "ada"
        assert hierarchy.generalize("ada", 1) == SUPPRESSED


class TestHierarchySet:
    def test_generalize_record(self):
        hierarchies = HierarchySet([
            NumericHierarchy("age", widths=[10]),
            NumericHierarchy("height", widths=[20]),
        ])
        record = Record({"age": 34, "height": 185, "weight": 100})
        result = hierarchies.generalize_record(
            record, {"age": 1, "height": 1})
        assert result["age"] == Interval(30, 40)
        assert result["height"] == Interval(180, 200)
        assert result["weight"] == 100  # untouched

    def test_missing_level_defaults_to_raw(self):
        hierarchies = HierarchySet([NumericHierarchy("age", widths=[10])])
        record = Record({"age": 34})
        assert hierarchies.generalize_record(record, {})["age"] == 34

    def test_duplicate_field_rejected(self):
        with pytest.raises(AnonymizationError, match="duplicate"):
            HierarchySet([NumericHierarchy("a", widths=[10]),
                          NumericHierarchy("a", widths=[5])])

    def test_unknown_field_lookup(self):
        hierarchies = HierarchySet([NumericHierarchy("a", widths=[10])])
        with pytest.raises(AnonymizationError, match="no hierarchy"):
            hierarchies.for_field("zzz")

    def test_max_levels(self):
        hierarchies = HierarchySet([
            NumericHierarchy("a", widths=[10]),
            SuppressionOnly("b"),
        ])
        assert hierarchies.max_levels() == {"a": 2, "b": 1}
