"""Unit tests for consent-change impact analysis."""

import pytest

from repro.casestudies import (
    MEDICAL_SERVICE,
    RESEARCH_SERVICE,
    surgery_patient,
)
from repro.core.risk import RiskLevel, analyse_consent_change
from repro.errors import AnalysisError


class TestConsentChange:
    def test_agreeing_to_research_clears_admin_risk(self,
                                                    surgery_system):
        patient = surgery_patient()
        report = analyse_consent_change(
            surgery_system, patient, agree=[RESEARCH_SERVICE])
        assert set(report.newly_allowed_actors) == {
            "Administrator", "Researcher"}
        assert report.newly_non_allowed_actors == ()
        assert report.before_level is RiskLevel.MEDIUM
        assert report.after_level is RiskLevel.NONE
        assert not report.risk_increases

    def test_withdrawing_all_consent(self, surgery_system):
        patient = surgery_patient()
        report = analyse_consent_change(
            surgery_system, patient, withdraw=[MEDICAL_SERVICE])
        assert report.agreed_after == ()
        assert report.after is None
        assert report.after_level is RiskLevel.NONE
        assert set(report.newly_non_allowed_actors) == {
            "Doctor", "Nurse", "Receptionist"}

    def test_first_consent(self, surgery_system):
        from repro.consent import UserProfile
        newcomer = UserProfile("new", sensitivities={"diagnosis": 0.9},
                               default_sensitivity=0.2)
        report = analyse_consent_change(
            surgery_system, newcomer, agree=[MEDICAL_SERVICE])
        assert report.before is None
        assert report.before_level is RiskLevel.NONE
        assert report.after_level is RiskLevel.MEDIUM
        assert report.risk_increases

    def test_user_object_not_mutated(self, surgery_system):
        patient = surgery_patient()
        analyse_consent_change(surgery_system, patient,
                               agree=[RESEARCH_SERVICE])
        assert patient.agreed_services == (MEDICAL_SERVICE,)

    def test_switch_to_research_with_stored_data(self, surgery_system):
        """Withdraw from medical, agree to research, with the EHR
        already populated from earlier use: the medical staff become
        non-allowed and their standing EHR access becomes the risk."""
        patient = surgery_patient()
        ehr_fields = surgery_system.datastore("EHR").field_names()
        report = analyse_consent_change(
            surgery_system, patient, withdraw=[MEDICAL_SERVICE],
            agree=[RESEARCH_SERVICE],
            initial_store_contents={"EHR": ehr_fields})
        assert report.after is not None
        assert report.after.events
        assert report.after_level >= RiskLevel.MEDIUM
        actors = {e.actor for e in report.after.events}
        assert "Doctor" in actors  # now a non-allowed reader

    def test_stores_do_not_forget_without_initial_contents(
            self, surgery_system):
        """Without pre-populated stores, a research-only consent has
        nothing to read — no events (the data never existed)."""
        patient = surgery_patient()
        report = analyse_consent_change(
            surgery_system, patient, withdraw=[MEDICAL_SERVICE],
            agree=[RESEARCH_SERVICE])
        assert report.after is not None
        assert not report.after.events

    def test_unknown_service_rejected(self, surgery_system):
        with pytest.raises(Exception, match="Ghost"):
            analyse_consent_change(surgery_system, surgery_patient(),
                                   agree=["Ghost"])

    def test_empty_change_rejected(self, surgery_system):
        with pytest.raises(AnalysisError, match="at least one"):
            analyse_consent_change(surgery_system, surgery_patient())

    def test_describe(self, surgery_system):
        report = analyse_consent_change(
            surgery_system, surgery_patient(),
            agree=[RESEARCH_SERVICE])
        text = report.describe()
        assert "becoming allowed" in text
        assert "medium -> none" in text
