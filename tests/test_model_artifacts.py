"""The shipped DSL artifacts must parse and match the Python fixtures."""

import os

import pytest

from repro.casestudies import build_surgery_system, surgery_patient
from repro.core.risk import DisclosureRiskAnalyzer, RiskLevel
from repro.dfd import parse_file, system_to_dict

ARTIFACT_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "models")


@pytest.fixture
def surgery_dsl_path():
    path = os.path.join(ARTIFACT_DIR, "surgery.dsl")
    assert os.path.exists(path), f"missing artifact {path}"
    return path


class TestSurgeryArtifact:
    def test_parses_and_validates(self, surgery_dsl_path):
        system = parse_file(surgery_dsl_path)
        assert system.name == "DoctorsSurgery"

    def test_equivalent_to_python_fixture(self, surgery_dsl_path):
        """The artifact and the builder fixture describe the same
        system (modulo description strings, which the artifact's
        comments replace)."""
        from_dsl = parse_file(surgery_dsl_path)
        from_builder = build_surgery_system()

        def strip_descriptions(data):
            for schema in data["schemas"]:
                for field in schema["fields"]:
                    field["description"] = ""
            for actor in data["actors"]:
                actor["description"] = ""
            for store in data["datastores"]:
                store["description"] = ""
            for service in data["services"]:
                service["description"] = ""
            return data

        assert strip_descriptions(system_to_dict(from_dsl)) == \
            strip_descriptions(system_to_dict(from_builder))

    def test_case_study_runs_from_artifact(self, surgery_dsl_path):
        system = parse_file(surgery_dsl_path)
        report = DisclosureRiskAnalyzer(system).analyse(
            surgery_patient())
        assert report.max_level is RiskLevel.MEDIUM

    def test_cli_against_artifact(self, surgery_dsl_path, capsys):
        from repro.cli import main
        assert main(["validate", surgery_dsl_path]) == 0
        code = main(["analyse", surgery_dsl_path,
                     "--agree", "MedicalService",
                     "--sensitivity", "diagnosis=high",
                     "--default-sensitivity", "0.2",
                     "--fail-at", "medium"])
        assert code == 1  # MEDIUM reached -> gate trips
        assert "Administrator" in capsys.readouterr().out
