"""Unit tests for repro.datastore: records, queries, runtime stores."""

import pytest

from repro.access import AccessPolicy, Permission
from repro.datastore import (
    Query,
    Record,
    RuntimeDatastore,
    between,
    close_to,
    eq,
    ge,
    gt,
    isin,
    le,
    lt,
    make_records,
    ne,
)
from repro.errors import AccessDenied, SchemaError
from repro.schema import DataSchema, Field


def _schema():
    return DataSchema("S", [Field("name"), Field("age", ),
                            Field("weight")])


class TestRecord:
    def test_mapping_protocol(self):
        record = Record({"a": 1, "b": 2})
        assert record["a"] == 1
        assert set(record) == {"a", "b"}
        assert len(record) == 2
        assert "a" in record

    def test_rids_unique_and_explicit(self):
        first, second = Record({"a": 1}), Record({"a": 1})
        assert first.rid != second.rid
        assert Record({"a": 1}, rid=7).rid == 7

    def test_project_keeps_rid(self):
        record = Record({"a": 1, "b": 2})
        projected = record.project(["a", "missing"])
        assert dict(projected) == {"a": 1}
        assert projected.rid == record.rid

    def test_mask(self):
        record = Record({"a": 1, "b": 2})
        assert dict(record.mask(["a"])) == {"b": 2}

    def test_with_values_immutable(self):
        record = Record({"a": 1})
        updated = record.with_values(a=5, b=6)
        assert dict(record) == {"a": 1}
        assert dict(updated) == {"a": 5, "b": 6}
        assert updated.rid == record.rid

    def test_renamed(self):
        record = Record({"a": 1, "b": 2})
        renamed = record.renamed({"a": "x"})
        assert dict(renamed) == {"x": 1, "b": 2}

    def test_key_on_uses_missing_as_none(self):
        record = Record({"a": 1})
        assert record.key_on(["a", "b"]) == (1, None)

    def test_equality_and_hash(self):
        record = Record({"a": 1}, rid=3)
        twin = Record({"a": 1}, rid=3)
        assert record == twin
        assert hash(record) == hash(twin)
        assert record != Record({"a": 1}, rid=4)

    def test_same_values_ignores_rid(self):
        assert Record({"a": 1}).same_values(Record({"a": 1}))

    def test_make_records(self):
        records = make_records([{"a": 1}, {"a": 2}])
        assert [r["a"] for r in records] == [1, 2]
        assert records[0].rid != records[1].rid


class TestConditions:
    record = Record({"age": 30, "name": "ada"})

    def test_comparisons(self):
        assert eq("age", 30).matches(self.record)
        assert ne("age", 31).matches(self.record)
        assert lt("age", 31).matches(self.record)
        assert le("age", 30).matches(self.record)
        assert gt("age", 29).matches(self.record)
        assert ge("age", 30).matches(self.record)

    def test_between_inclusive(self):
        assert between("age", 30, 40).matches(self.record)
        assert between("age", 20, 30).matches(self.record)
        assert not between("age", 31, 40).matches(self.record)

    def test_isin(self):
        assert isin("name", ["ada", "bob"]).matches(self.record)
        assert not isin("name", ["bob"]).matches(self.record)

    def test_close_to(self):
        assert close_to("age", 33, 5).matches(self.record)
        assert not close_to("age", 36, 5).matches(self.record)

    def test_missing_field_never_matches(self):
        assert not eq("ghost", 1).matches(self.record)


class TestQuery:
    records = make_records([
        {"name": "ada", "age": 30},
        {"name": "bob", "age": 40},
        {"name": "cal", "age": 50},
    ])

    def test_empty_query_returns_everything(self):
        assert len(Query().run(self.records)) == 3

    def test_where_is_conjunction(self):
        query = Query().where(gt("age", 29), lt("age", 45))
        names = [r["name"] for r in query.run(self.records)]
        assert names == ["ada", "bob"]

    def test_select_projects(self):
        query = Query().select("name")
        results = query.run(self.records)
        assert all(set(r) == {"name"} for r in results)

    def test_limit(self):
        assert len(Query().limit(2).run(self.records)) == 2

    def test_limit_rejects_negative(self):
        with pytest.raises(ValueError):
            Query().limit(-1)

    def test_builders_do_not_mutate(self):
        base = Query()
        base.where(eq("age", 30))
        assert len(base.conditions) == 0

    def test_fields_touched_with_projection(self):
        query = Query().where(eq("age", 30)).select("name")
        assert set(query.fields_touched(["name", "age", "x"])) == \
            {"name", "age"}

    def test_fields_touched_without_projection(self):
        query = Query().where(eq("age", 30))
        assert set(query.fields_touched(["name", "age"])) == \
            {"name", "age"}

    def test_str_mentions_parts(self):
        text = str(Query().where(eq("a", 1)).select("b").limit(3))
        assert "a == 1" in text and "select" in text and "limit 3" in text


class TestRuntimeDatastore:
    def _policied_store(self):
        policy = AccessPolicy()
        policy.register_actor("writer").register_actor("reader")
        policy.allow("writer", ["create", "delete"], "S")
        policy.allow("writer", "read", "S")
        policy.allow("reader", "read", "S", ["name"])
        store = RuntimeDatastore("S", _schema(), policy)
        return store

    def test_insert_and_query_roundtrip(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada", "age": 30})
        results = store.query("writer")
        assert len(results) == 1
        assert results[0]["name"] == "ada"

    def test_insert_unknown_field_rejected(self):
        store = self._policied_store()
        with pytest.raises(SchemaError, match="not in schema"):
            store.insert("writer", {"ghost": 1})

    def test_insert_without_grant_denied(self):
        store = self._policied_store()
        with pytest.raises(AccessDenied):
            store.insert("reader", {"name": "x"})

    def test_field_level_read_enforcement(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada", "age": 30})
        # reader may only read 'name'
        results = store.read_fields("reader", ["name"])
        assert dict(results[0]) == {"name": "ada"}
        with pytest.raises(AccessDenied) as excinfo:
            store.read_fields("reader", ["age"])
        assert excinfo.value.field == "age"

    def test_query_without_projection_touches_all_fields(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada", "age": 30})
        with pytest.raises(AccessDenied):
            store.query("reader")  # would reveal age and weight

    def test_delete_returns_removed(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada", "age": 30})
        store.insert("writer", {"name": "bob", "age": 40})
        removed = store.delete("writer", Query().where(eq("name", "bob")))
        assert [r["name"] for r in removed] == ["bob"]
        assert len(store) == 1

    def test_delete_without_grant_denied(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada"})
        with pytest.raises(AccessDenied):
            store.delete("reader")

    def test_show_before_delete_requires_read_and_audits(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada"})
        store.delete("writer", show_before_delete=True)
        descriptions = [op.description for op in store.audit_trail]
        assert "shown before delete" in descriptions

    def test_audit_trail_records_reads(self):
        store = self._policied_store()
        store.insert("writer", {"name": "ada"})
        store.read_fields("reader", ["name"])
        ops = store.audit_trail
        assert ops[-1].actor == "reader"
        assert ops[-1].permission is Permission.READ
        assert ops[-1].record_count == 1

    def test_unprotected_store_allows_everything(self):
        store = RuntimeDatastore("S", _schema())
        store.insert("anyone", {"name": "x"})
        assert len(store.query("anyone")) == 1

    def test_load_checks_schema(self):
        store = RuntimeDatastore("S", _schema())
        with pytest.raises(SchemaError):
            store.load(make_records([{"ghost": 1}]))

    def test_snapshot_and_clear(self):
        store = RuntimeDatastore("S", _schema())
        store.load(make_records([{"name": "a"}]))
        assert len(store.snapshot()) == 1
        store.clear()
        assert len(store) == 0
