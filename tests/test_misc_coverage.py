"""Targeted tests for smaller paths not covered elsewhere."""

import pytest

from repro.core import ActionType, GenerationOptions, TransitionKind, \
    generate_lts
from repro.core.risk import RiskLevel
from repro.core.risk.report import RiskAnnotation
from repro.monitor import (
    AlertSeverity,
    PrivacyMonitor,
    anon_event,
    delete_event,
    disclose_event,
)
from repro.monitor.alerts import risk_alert


class TestAlertGrading:
    def _annotated_transition(self, medical_lts, level):
        transition = medical_lts.transitions[0]
        from repro.core.risk import RiskMatrix
        matrix = RiskMatrix.example()
        impact = {"low": 0.2, "medium": 0.5, "high": 0.9}[level]
        transition.risk = RiskAnnotation(
            assessment=matrix.assess(impact, 0.05))
        return transition

    def test_risk_below_acceptable_is_warning(self, medical_lts):
        transition = self._annotated_transition(medical_lts, "low")
        event = disclose_event("A", "B", ["x"])
        alert = risk_alert(transition, event, RiskLevel.MEDIUM)
        assert alert.severity is AlertSeverity.WARNING

    def test_risk_above_acceptable_is_critical(self, medical_lts):
        transition = self._annotated_transition(medical_lts, "high")
        event = disclose_event("A", "B", ["x"])
        alert = risk_alert(transition, event, RiskLevel.LOW)
        assert alert.severity is AlertSeverity.CRITICAL
        assert alert.level is RiskLevel.MEDIUM  # high x low -> medium

    def test_alert_describe(self, medical_lts):
        transition = self._annotated_transition(medical_lts, "high")
        alert = risk_alert(transition,
                           disclose_event("A", "B", ["x"]),
                           RiskLevel.LOW)
        assert "[CRITICAL]" in alert.describe()


class TestRiskAnnotationDescribe:
    def test_unscored(self):
        assert RiskAnnotation().describe() == "<unscored>"

    def test_context_only(self):
        assert RiskAnnotation(context="note").describe() == "note"

    def test_with_value_risk(self, table1, weight_policy):
        from repro.core.risk import value_risk
        result = value_risk(table1, ["age"], weight_policy)
        text = RiskAnnotation(value_risk=result).describe()
        assert "violations=2/6" in text


class TestReportFilters:
    def test_events_at_or_above(self, surgery_system, patient):
        from repro.core.risk import analyse_disclosure
        report = analyse_disclosure(surgery_system, patient)
        assert report.events_at_or_above("medium")
        assert not report.events_at_or_above("high")
        assert len(report.events_at_or_above("low")) == \
            len(report.events)


class TestEventConstructors:
    def test_anon_and_delete_events(self):
        anon = anon_event("A", "S", ["x_anon"], timestamp=1.0)
        assert anon.action is ActionType.ANON
        assert anon.timestamp == 1.0
        delete = delete_event("A", "S", ["x"])
        assert delete.action is ActionType.DELETE
        assert delete.target == "S"


class TestMonitorBatch:
    def test_observe_all(self, surgery_system, medical_lts):
        from repro.monitor import ServiceRuntime
        runtime = ServiceRuntime(surgery_system)
        events = runtime.run_service("MedicalService", {
            "name": "A", "dob": "d", "medical_issues": "m"})
        monitor = PrivacyMonitor(medical_lts)
        matches = monitor.observe_all(events)
        assert len(matches) == 6
        assert all(m is not None for m in matches)


class TestGenerationCombinations:
    def test_sequence_with_potential_reads(self, surgery_system):
        """Potential reads compose with strict flow ordering."""
        options = GenerationOptions(
            services=("MedicalService",),
            ordering="sequence",
            include_potential_reads=True,
            potential_read_actors=frozenset({"Administrator"}))
        lts = generate_lts(surgery_system, options)
        potentials = lts.transitions_of_kind(TransitionKind.POTENTIAL)
        assert potentials
        # flow transitions still form the single in-order chain
        flow_transitions = lts.transitions_of_kind(TransitionKind.FLOW)
        orders = [t.label.flow_key[1] for t in flow_transitions
                  if t.label.flow_key]
        assert sorted(orders) == orders or len(set(orders)) == 6

    def test_potential_reads_for_all_actors_default(self, tiny_system):
        options = GenerationOptions(include_potential_reads=True)
        lts = generate_lts(tiny_system, options)
        readers = {
            t.label.actor
            for t in lts.transitions_of_kind(TransitionKind.POTENTIAL)
        }
        # Alice already has/holds everything she may read (she wrote
        # it), so no state-changing potential read exists for her.
        assert readers == {"Bob"}


class TestSchemaEdgeCases:
    def test_anonymised_view_unknown_field(self):
        from repro.errors import SchemaError
        from repro.schema import DataSchema, Field
        schema = DataSchema("S", [Field("a")])
        with pytest.raises(SchemaError):
            schema.anonymised_view(["ghost"])


class TestDatastoreBatch:
    def test_insert_many(self):
        from repro.datastore import RuntimeDatastore
        from repro.schema import DataSchema, Field
        store = RuntimeDatastore("S", DataSchema("S", [Field("a")]))
        records = store.insert_many("w", [{"a": 1}, {"a": 2}])
        assert len(records) == 2
        assert len(store) == 2


class TestCategoryConversions:
    def test_sensitivity_category_values_ordered(self):
        from repro.core.risk import SensitivityCategory
        low = SensitivityCategory.LOW.to_value()
        medium = SensitivityCategory.MEDIUM.to_value()
        high = SensitivityCategory.HIGH.to_value()
        assert low < medium < high

    def test_unknown_category(self):
        from repro.core.risk import SensitivityCategory
        with pytest.raises(ValueError):
            SensitivityCategory.from_name("extreme")
