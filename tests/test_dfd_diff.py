"""Unit tests for model diffing and risk deltas."""

import pytest

from repro.casestudies import (
    build_surgery_system,
    surgery_patient,
    tighten_administrator_policy,
)
from repro.core.risk import RiskLevel
from repro.dfd import (
    SystemBuilder,
    diff_models,
    models_equivalent,
    risk_delta,
)


def _base():
    return (SystemBuilder("v")
            .schema("S", ["a", "b"])
            .actor("A").actor("B")
            .datastore("D", "S")
            .service("svc")
            .flow(1, "User", "A", ["a"])
            .flow(2, "A", "D", ["a"])
            .allow("A", ["read", "create"], "D", ["a", "b"])
            .build())


class TestDiffModels:
    def test_identical_models_empty_diff(self):
        diff = diff_models(_base(), _base())
        assert diff.is_empty
        assert diff.describe() == "no structural changes"
        assert models_equivalent(_base(), _base())

    def test_added_actor_and_flow(self):
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B").actor("C")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D", ["a"])
                 .flow(3, "D", "C", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .allow("C", "read", "D", ["a"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.added_actors == ("C",)
        assert len(diff.added_flows) == 1
        assert "D -> C" in diff.added_flows[0]
        assert diff.widens_access
        grants = [g.describe() for g in diff.added_grants]
        assert "C: read on D.a" in grants

    def test_removed_grant(self):
        before = _base()
        after = _base()
        from repro.access import Permission
        after.policy.revoke("A", Permission.READ, "D", fields=["b"],
                            store_fields=["a", "b"])
        diff = diff_models(before, after)
        assert not diff.widens_access
        assert [g.describe() for g in diff.removed_grants] == \
            ["A: read on D.b"]

    def test_describe_renders_changes(self):
        after = _base()
        after.policy.allow("B", "read", "D", ["a"])
        text = diff_models(_base(), after).describe()
        assert text.startswith("+ grant:")
        assert "B: read on D.a" in text

    def test_paper_remediation_as_diff(self):
        before = build_surgery_system()
        after = tighten_administrator_policy(build_surgery_system())
        diff = diff_models(before, after)
        assert not diff.widens_access
        removed = {g.describe() for g in diff.removed_grants}
        assert "Administrator: read on EHR.diagnosis" in removed
        # the delete grant and other fields survive
        assert all(g.permission == "read" for g in diff.removed_grants)


class TestDiffEdgeCases:
    """Edge cases the incremental-reanalysis layer depends on."""

    def test_empty_diff_has_no_classification_surface(self):
        diff = diff_models(_base(), _base())
        assert diff.is_empty
        assert not diff.structural_change
        assert not diff.acl_only
        assert diff.changed_grants == ()
        assert not diff.touches_permission("read", "create", "delete")

    def test_removed_then_readded_grant_is_a_noop(self):
        """Revoking a grant and granting it back must not read as
        widened access — the atoms cancel."""
        from repro.access import Permission
        after = _base()
        after.policy.revoke("A", Permission.READ, "D",
                            fields=["a", "b"],
                            store_fields=["a", "b"])
        after.policy.allow("A", "read", "D", ["a", "b"])
        diff = diff_models(_base(), after)
        assert not diff.widens_access
        assert diff.added_grants == ()
        assert diff.removed_grants == ()
        assert not diff.acl_only

    def test_partial_readd_still_surfaces_the_lost_atom(self):
        from repro.access import Permission
        after = _base()
        after.policy.revoke("A", Permission.READ, "D",
                            fields=["a", "b"],
                            store_fields=["a", "b"])
        after.policy.allow("A", "read", "D", ["a"])
        diff = diff_models(_base(), after)
        assert not diff.widens_access
        assert [g.describe() for g in diff.removed_grants] == \
            ["A: read on D.b"]
        assert diff.acl_only
        assert diff.touches_permission("read")
        assert not diff.touches_permission("create")

    def test_flow_purpose_rename_is_not_structural(self):
        """A flow's purpose is documentation; renaming it must not
        churn the diff (flows key on service/order/endpoints/fields)."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"], purpose="renamed intent")
                 .flow(2, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.is_empty

    def test_service_rename_is_a_remove_plus_add(self):
        """Renaming a service renames every flow key under it: the
        diff must report the full move, not silently match flows."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc2")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.added_services == ("svc2",)
        assert diff.removed_services == ("svc",)
        assert len(diff.added_flows) == 2
        assert len(diff.removed_flows) == 2
        assert diff.structural_change
        assert not diff.acl_only

    def test_reordered_flow_is_a_real_change(self):
        """Flow order drives 'sequence' generation; moving a flow to a
        different order must surface."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(3, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert len(diff.added_flows) == 1
        assert len(diff.removed_flows) == 1
        assert diff.structural_change

    def test_acl_only_is_false_under_mixed_changes(self):
        after = _base()
        after.policy.allow("B", "read", "D", ["a"])
        mixed = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B").actor("C")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .allow("B", "read", "D", ["a"])
                 .build())
        assert diff_models(_base(), after).acl_only
        assert not diff_models(_base(), mixed).acl_only


class TestRiskDelta:
    def test_paper_before_after(self):
        patient = surgery_patient()
        delta = risk_delta(
            build_surgery_system(),
            tighten_administrator_policy(build_surgery_system()),
            patient)
        assert delta.before_level is RiskLevel.MEDIUM
        assert delta.after_level is RiskLevel.LOW
        assert delta.improved
        assert "medium" in delta.describe()
        assert "low" in delta.describe()

    def test_no_change_not_improved(self):
        patient = surgery_patient()
        delta = risk_delta(build_surgery_system(),
                           build_surgery_system(), patient)
        assert not delta.improved
