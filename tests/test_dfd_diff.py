"""Unit tests for model diffing and risk deltas."""

import pytest

from repro.casestudies import (
    build_surgery_system,
    surgery_patient,
    tighten_administrator_policy,
)
from repro.core.risk import RiskLevel
from repro.dfd import (
    SystemBuilder,
    diff_models,
    models_equivalent,
    risk_delta,
)


def _base():
    return (SystemBuilder("v")
            .schema("S", ["a", "b"])
            .actor("A").actor("B")
            .datastore("D", "S")
            .service("svc")
            .flow(1, "User", "A", ["a"])
            .flow(2, "A", "D", ["a"])
            .allow("A", ["read", "create"], "D", ["a", "b"])
            .build())


class TestDiffModels:
    def test_identical_models_empty_diff(self):
        diff = diff_models(_base(), _base())
        assert diff.is_empty
        assert diff.describe() == "no structural changes"
        assert models_equivalent(_base(), _base())

    def test_added_actor_and_flow(self):
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B").actor("C")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D", ["a"])
                 .flow(3, "D", "C", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .allow("C", "read", "D", ["a"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.added_actors == ("C",)
        assert len(diff.added_flows) == 1
        assert "D -> C" in diff.added_flows[0]
        assert diff.widens_access
        grants = [g.describe() for g in diff.added_grants]
        assert "C: read on D.a" in grants

    def test_removed_grant(self):
        before = _base()
        after = _base()
        from repro.access import Permission
        after.policy.revoke("A", Permission.READ, "D", fields=["b"],
                            store_fields=["a", "b"])
        diff = diff_models(before, after)
        assert not diff.widens_access
        assert [g.describe() for g in diff.removed_grants] == \
            ["A: read on D.b"]

    def test_describe_renders_changes(self):
        after = _base()
        after.policy.allow("B", "read", "D", ["a"])
        text = diff_models(_base(), after).describe()
        assert text.startswith("+ grant:")
        assert "B: read on D.a" in text

    def test_paper_remediation_as_diff(self):
        before = build_surgery_system()
        after = tighten_administrator_policy(build_surgery_system())
        diff = diff_models(before, after)
        assert not diff.widens_access
        removed = {g.describe() for g in diff.removed_grants}
        assert "Administrator: read on EHR.diagnosis" in removed
        # the delete grant and other fields survive
        assert all(g.permission == "read" for g in diff.removed_grants)


class TestDiffEdgeCases:
    """Edge cases the incremental-reanalysis layer depends on."""

    def test_empty_diff_has_no_classification_surface(self):
        diff = diff_models(_base(), _base())
        assert diff.is_empty
        assert not diff.structural_change
        assert not diff.acl_only
        assert diff.changed_grants == ()
        assert not diff.touches_permission("read", "create", "delete")

    def test_removed_then_readded_grant_is_a_noop(self):
        """Revoking a grant and granting it back must not read as
        widened access — the atoms cancel."""
        from repro.access import Permission
        after = _base()
        after.policy.revoke("A", Permission.READ, "D",
                            fields=["a", "b"],
                            store_fields=["a", "b"])
        after.policy.allow("A", "read", "D", ["a", "b"])
        diff = diff_models(_base(), after)
        assert not diff.widens_access
        assert diff.added_grants == ()
        assert diff.removed_grants == ()
        assert not diff.acl_only

    def test_partial_readd_still_surfaces_the_lost_atom(self):
        from repro.access import Permission
        after = _base()
        after.policy.revoke("A", Permission.READ, "D",
                            fields=["a", "b"],
                            store_fields=["a", "b"])
        after.policy.allow("A", "read", "D", ["a"])
        diff = diff_models(_base(), after)
        assert not diff.widens_access
        assert [g.describe() for g in diff.removed_grants] == \
            ["A: read on D.b"]
        assert diff.acl_only
        assert diff.touches_permission("read")
        assert not diff.touches_permission("create")

    def test_flow_purpose_rename_is_not_structural(self):
        """A flow's purpose is documentation; renaming it must not
        churn the diff (flows key on service/order/endpoints/fields)."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"], purpose="renamed intent")
                 .flow(2, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.is_empty

    def test_service_rename_is_a_remove_plus_add(self):
        """Renaming a service renames every flow key under it: the
        diff must report the full move, not silently match flows."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc2")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.added_services == ("svc2",)
        assert diff.removed_services == ("svc",)
        assert len(diff.added_flows) == 2
        assert len(diff.removed_flows) == 2
        assert diff.structural_change
        assert not diff.acl_only

    def test_reordered_flow_is_a_real_change(self):
        """Flow order drives 'sequence' generation; moving a flow to a
        different order must surface."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(3, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert len(diff.added_flows) == 1
        assert len(diff.removed_flows) == 1
        assert diff.structural_change

    def test_acl_only_is_false_under_mixed_changes(self):
        after = _base()
        after.policy.allow("B", "read", "D", ["a"])
        mixed = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B").actor("C")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .allow("B", "read", "D", ["a"])
                 .build())
        assert diff_models(_base(), after).acl_only
        assert not diff_models(_base(), mixed).acl_only


def _anon_base():
    """A pipeline into a pseudonymised store: D holds a_anon/b_anon."""
    return (SystemBuilder("v")
            .schema("S", ["a", "b"])
            .anonymised_schema("SAnon", "S", ["a", "b"])
            .actor("A").actor("B")
            .datastore("D", "SAnon", anonymised=True)
            .service("svc")
            .flow(1, "User", "A", ["a", "b"])
            .flow(2, "A", "D", ["a", "b"])
            .allow("A", "create", "D")
            .build())


class TestDiffPseudonymisedAndMergeCases:
    """Edge cases the taint-certificate survival check leans on:
    grants over pseudonymised fields, flow retargets, store merges."""

    def test_grant_add_on_pseudonymised_field(self):
        after = _anon_base()
        after.policy.allow("B", "read", "D", ["a_anon"])
        diff = diff_models(_anon_base(), after)
        assert diff.acl_only
        assert [g.describe() for g in diff.added_grants] == \
            ["B: read on D.a_anon"]

    def test_grant_remove_on_pseudonymised_field(self):
        from repro.access import Permission
        before = _anon_base()
        before.policy.allow("B", "read", "D", ["a_anon", "b_anon"])
        after = _anon_base()
        after.policy.allow("B", "read", "D", ["a_anon", "b_anon"])
        after.policy.revoke("B", Permission.READ, "D",
                            fields=["b_anon"],
                            store_fields=["a_anon", "b_anon"])
        diff = diff_models(before, after)
        assert not diff.widens_access
        assert [g.describe() for g in diff.removed_grants] == \
            ["B: read on D.b_anon"]

    def test_wildcard_grant_expands_against_the_anon_schema(self):
        """A wildcard on a pseudonymised store diffs as its anon
        field atoms, never as the raw source fields."""
        after = _anon_base()
        after.policy.allow("B", "read", "D")
        diff = diff_models(_anon_base(), after)
        fields = sorted(g.field for g in diff.added_grants)
        assert fields == ["a_anon", "b_anon"]

    def test_flow_retarget_is_a_remove_plus_add(self):
        """Retargeting a flow (A->D becomes A->D2) must surface both
        sides — flows key on their endpoints."""
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S").datastore("D2", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a"])
                 .flow(2, "A", "D2", ["a"])
                 .allow("A", ["read", "create"], "D", ["a", "b"])
                 .build())
        diff = diff_models(_base(), after)
        assert diff.added_datastores == ("D2",)
        assert len(diff.added_flows) == 1
        assert "A -> D2" in diff.added_flows[0]
        assert len(diff.removed_flows) == 1
        assert "A -> D" in diff.removed_flows[0]
        assert diff.structural_change

    def test_store_merge_moves_flows_and_grants(self):
        """Merging D2 into D: the removed store, its flows and its
        grant atoms all surface in one diff."""
        before = (SystemBuilder("v")
                  .schema("S", ["a", "b"])
                  .actor("A").actor("B")
                  .datastore("D", "S").datastore("D2", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a", "b"])
                  .flow(2, "A", "D", ["a"])
                  .flow(3, "A", "D2", ["b"])
                  .allow("A", "create", "D", ["a"])
                  .allow("A", "create", "D2", ["b"])
                  .allow("B", "read", "D2", ["b"])
                  .build())
        after = (SystemBuilder("v")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a", "b"])
                 .flow(2, "A", "D", ["a"])
                 .flow(3, "A", "D", ["b"])
                 .allow("A", "create", "D", ["a", "b"])
                 .allow("B", "read", "D", ["b"])
                 .build())
        diff = diff_models(before, after)
        assert diff.removed_datastores == ("D2",)
        assert any("A -> D2" in f for f in diff.removed_flows)
        assert any("A -> D" in f for f in diff.added_flows)
        removed = {g.describe() for g in diff.removed_grants}
        added = {g.describe() for g in diff.added_grants}
        assert "A: create on D2.b" in removed
        assert "B: read on D2.b" in removed
        assert "A: create on D.b" in added
        assert "B: read on D.b" in added
        assert diff.structural_change

    def test_wildcard_grant_on_unknown_store_keeps_the_star(self):
        """A wildcard grant whose store the model no longer defines
        cannot expand against a schema — the atom keeps the literal
        '*' rather than vanishing from the diff."""
        after = _base()
        after.policy.allow("B", "read", "Ghost")
        diff = diff_models(_base(), after)
        assert [(g.store, g.field) for g in diff.added_grants] == \
            [("Ghost", "*")]


class TestRiskDelta:
    def test_paper_before_after(self):
        patient = surgery_patient()
        delta = risk_delta(
            build_surgery_system(),
            tighten_administrator_policy(build_surgery_system()),
            patient)
        assert delta.before_level is RiskLevel.MEDIUM
        assert delta.after_level is RiskLevel.LOW
        assert delta.improved
        assert "medium" in delta.describe()
        assert "low" in delta.describe()

    def test_no_change_not_improved(self):
        patient = surgery_patient()
        delta = risk_delta(build_surgery_system(),
                           build_surgery_system(), patient)
        assert not delta.improved
