"""The service wire contract: JSON round-trips and schema validation."""

import json

import pytest

from repro.casestudies import build_surgery_system, surgery_patient
from repro.engine import AnalysisJob, BatchEngine, EngineStats
from repro.service import (
    AnalysisRequest,
    AnalysisResponse,
    CachePruneResponse,
    CacheStatsResponse,
    JobStatus,
    ModelRef,
    ReanalyzeRequest,
    RequestError,
    SweepRequest,
    UserSpec,
    check_payload,
    population_breakdown,
    result_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
)


def json_roundtrip(payload):
    """Force the payload through real JSON, as the wire would."""
    return json.loads(json.dumps(payload))


class TestCheckPayload:
    FIELDS = {"name": ((str,), True, None),
              "count": ((int,), False, 3)}

    def test_fills_defaults(self):
        checked = check_payload({"name": "x"}, self.FIELDS, "msg")
        assert checked == {"name": "x", "count": 3}

    def test_rejects_non_object(self):
        with pytest.raises(RequestError, match="expected a JSON"):
            check_payload([1, 2], self.FIELDS, "msg")

    def test_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="unknown field"):
            check_payload({"name": "x", "zap": 1}, self.FIELDS, "msg")

    def test_rejects_missing_required(self):
        with pytest.raises(RequestError, match="missing required"):
            check_payload({"count": 1}, self.FIELDS, "msg")

    def test_rejects_type_mismatch(self):
        with pytest.raises(RequestError, match="must be int"):
            check_payload({"name": "x", "count": "y"},
                          self.FIELDS, "msg")

    def test_bool_is_not_an_int(self):
        """JSON true must not satisfy an integer field via Python's
        bool/int subclassing."""
        with pytest.raises(RequestError, match="boolean"):
            check_payload({"name": "x", "count": True},
                          self.FIELDS, "msg")


class TestModelRef:
    def test_roundtrip(self):
        ref = ModelRef(text="system x {}", label="demo")
        assert ModelRef.from_dict(json_roundtrip(ref.to_dict())) == ref

    def test_exactly_one_source(self):
        with pytest.raises(RequestError, match="exactly one"):
            ModelRef()
        with pytest.raises(RequestError, match="exactly one"):
            ModelRef(text="x", hash="y")

    def test_paths_can_be_forbidden(self):
        payload = ModelRef(path="/etc/passwd").to_dict()
        assert ModelRef.from_dict(payload, allow_paths=True)
        with pytest.raises(RequestError, match="not\\s+accepted"):
            ModelRef.from_dict(payload, allow_paths=False)


class TestUserSpec:
    def test_roundtrip(self):
        spec = UserSpec(name="ada", agree=("Svc",),
                        sensitivities=(("diagnosis", "high"),
                                       ("name", 0.5)),
                        default_sensitivity=0.1, acceptable="medium")
        assert UserSpec.from_dict(json_roundtrip(spec.to_dict())) == spec

    def test_profile_matches_direct_construction(self):
        from repro.consent import UserProfile
        spec = UserSpec(name="ada", agree=("Svc",),
                        sensitivities=(("diagnosis", "high"),),
                        default_sensitivity=0.2, acceptable="low")
        direct = UserProfile("ada", agreed_services=["Svc"],
                             sensitivities={"diagnosis": "high"},
                             default_sensitivity=0.2,
                             acceptable_risk="low")
        assert spec.to_profile().cache_key() == direct.cache_key()

    def test_rejects_bad_sensitivity_value(self):
        with pytest.raises(RequestError, match="sensitivity"):
            UserSpec.from_dict({"sensitivities": {"f": [1, 2]}})

    def test_rejects_unknown_acceptable_level(self):
        with pytest.raises(RequestError, match="acceptable"):
            UserSpec.from_dict({"acceptable": "apocalyptic"})

    def test_rejects_non_string_agree(self):
        with pytest.raises(RequestError, match="agree"):
            UserSpec.from_dict({"agree": [1]})


class TestRequests:
    def test_analysis_request_roundtrip(self):
        request = AnalysisRequest(
            models=(ModelRef(hash="a" * 64),),
            user=UserSpec(agree=("Svc",)),
            kind="consent_change",
            params={"withdraw": ("Svc",)})
        decoded = AnalysisRequest.from_dict(
            json_roundtrip(request.to_dict()))
        assert decoded == request

    def test_analysis_request_needs_models(self):
        with pytest.raises(RequestError, match="no models"):
            AnalysisRequest(models=())
        with pytest.raises(RequestError, match="missing required"):
            AnalysisRequest.from_dict({})

    def test_sweep_request_roundtrip_and_bounds(self):
        request = SweepRequest(count=5, seed=9, personas=3,
                               kinds=("disclosure", "population"))
        assert SweepRequest.from_dict(
            json_roundtrip(request.to_dict())) == request
        with pytest.raises(RequestError, match="count"):
            SweepRequest(count=-1)
        with pytest.raises(RequestError, match="personas"):
            SweepRequest(personas=0)

    def test_sweep_request_bounds_wire_reachable_work(self):
        """One request must not queue an arbitrarily large fleet."""
        with pytest.raises(RequestError, match="count"):
            SweepRequest(count=SweepRequest.MAX_COUNT + 1)
        with pytest.raises(RequestError, match="personas"):
            SweepRequest(personas=SweepRequest.MAX_PERSONAS + 1)

    def test_reanalyze_request_roundtrip(self):
        request = ReanalyzeRequest(
            before=ModelRef(hash="a" * 64),
            after=ModelRef(hash="b" * 64),
            user=UserSpec(agree=("Svc",)))
        assert ReanalyzeRequest.from_dict(
            json_roundtrip(request.to_dict())) == request


def _real_results():
    system = build_surgery_system()
    user = surgery_patient()
    jobs = [AnalysisJob(system=system, user=user, kind=kind,
                        scenario="surgery", family="f", variant="v")
            for kind in ("disclosure", "pseudonym", "consent_change")]
    return BatchEngine().run(jobs)


class TestResultSerialization:
    def test_signature_survives_json(self):
        """The acceptance contract: a JSON-decoded result reproduces
        signature() byte-identically for every kind payload shape."""
        batch = _real_results()
        for result in batch.results:
            payload = json_roundtrip(result_to_dict(result))
            assert result_from_dict(payload).signature() == \
                result.signature()

    def test_execution_metadata_travels(self):
        result = _real_results().results[0]
        decoded = result_from_dict(
            json_roundtrip(result_to_dict(result)))
        assert decoded.from_cache == result.from_cache
        assert decoded.lts_generated == result.lts_generated
        assert decoded.scenario == "surgery"

    def test_malformed_nested_payloads_raise_request_errors(self):
        """Decoders promise structured errors, even for shapes the
        declarative specs cannot cover (version-skewed peers)."""
        good = result_to_dict(_real_results().results[0])
        short_event = dict(good, events=[["low", "actor"]])
        with pytest.raises(RequestError, match="job result"):
            result_from_dict(short_event)
        with pytest.raises(RequestError, match="engine stats"):
            stats_from_dict({"bogus_key": 1})
        from repro.engine.cache import CacheStats
        batch = _real_results()
        payload = AnalysisResponse(
            results=batch.results, stats=batch.stats,
            result_cache=CacheStats(),
            max_level="low").to_dict()
        payload["result_cache"]["bogus"] = 1
        with pytest.raises(RequestError, match="result cache stats"):
            AnalysisResponse.from_dict(payload)

    def test_population_breakdown_works_on_decoded_results(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(), kind="population",
                          params={"count": 8, "seed": 3})
        result = BatchEngine().run([job]).results[0]
        decoded = result_from_dict(
            json_roundtrip(result_to_dict(result)))
        assert decoded.signature() == result.signature()
        breakdown = population_breakdown(decoded)
        assert breakdown == population_breakdown(result)
        assert breakdown["analysed"] + breakdown["skipped"] == 9
        assert set(breakdown["score_weights"]) == \
            {"semantic", "uniqueness", "linkability"}
        assert breakdown["field_scores"], "expected per-field scores"
        for row in breakdown["field_scores"]:
            assert set(row) == {"field", "semantic", "uniqueness",
                                "linkability", "composite"}

    def test_population_breakdown_rejects_other_kinds(self):
        result = _real_results().results[0]
        with pytest.raises(RequestError, match="population breakdown"):
            population_breakdown(result)

    def test_stats_roundtrip_preserves_describe(self):
        stats = EngineStats(backend="thread", jobs=4, result_hits=1,
                            executed=3, lts_generations=2,
                            lts_reuses=1, wall_time=0.25,
                            by_kind={"disclosure": 4})
        decoded = stats_from_dict(json_roundtrip(stats_to_dict(stats)))
        assert decoded.describe() == stats.describe()


class TestResponses:
    def test_analysis_response_roundtrip(self):
        batch = _real_results()
        from repro.engine import FleetReport
        from repro.engine.cache import CacheStats
        response = AnalysisResponse(
            results=batch.results, stats=batch.stats,
            result_cache=CacheStats(hits=1, misses=2, puts=3),
            max_level=FleetReport(batch.results).max_level().value,
            report=FleetReport(batch.results).to_dict())
        decoded = AnalysisResponse.from_dict(
            json_roundtrip(response.to_dict()))
        assert decoded.signatures() == response.signatures()
        assert decoded.max_level == response.max_level
        assert decoded.stats.describe() == response.stats.describe()
        assert decoded.report["jobs"] == len(batch.results)

    def test_cache_responses_roundtrip(self):
        stats = CacheStatsResponse(
            cache_dir="/tmp/c",
            stores=(("results", {"entries": 2, "bytes": 10,
                                 "oldest_age": 1.0,
                                 "newest_age": 0.5}),),
            live={"results": {"hits": 1, "misses": 0, "puts": 1,
                              "evictions": 0}})
        assert CacheStatsResponse.from_dict(
            json_roundtrip(stats.to_dict())) == stats
        from repro.engine.cache import PruneReport
        prune = CachePruneResponse(
            cache_dir="/tmp/c",
            stores=(("lts", PruneReport(1, 10, 2, 20)),))
        assert CachePruneResponse.from_dict(
            json_roundtrip(prune.to_dict())) == prune

    def test_job_status_roundtrip_and_validation(self):
        status = JobStatus(job_id="j1", op="sweep", status="done",
                           result={"max_level": "low"})
        assert JobStatus.from_dict(
            json_roundtrip(status.to_dict())) == status
        assert status.finished
        with pytest.raises(RequestError, match="unknown state"):
            JobStatus.from_dict({"job_id": "j", "op": "sweep",
                                 "status": "lost"})
