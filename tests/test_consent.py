"""Unit tests for user profiles, questionnaires and personas."""

import pytest

from repro.consent import (
    FUNDAMENTALIST,
    LIKERT_5,
    PRAGMATIST,
    Questionnaire,
    UNCONCERNED,
    UserProfile,
    profile_from_persona,
    simulate_users,
)
from repro.core.risk import RiskLevel
from repro.errors import AnalysisError
from repro.schema import DataSchema, Field, FieldKind


class TestUserProfile:
    def test_consent_lifecycle(self):
        user = UserProfile("u")
        user.agree_to("a", "b").withdraw_from("a")
        assert user.agreed_services == ("b",)
        assert user.has_agreed_to("b")
        assert not user.has_agreed_to("a")

    def test_sensitivities_accept_categories_and_numbers(self):
        user = UserProfile("u", sensitivities={
            "diagnosis": "high", "dob": 0.4})
        assert user.sigma("diagnosis") == pytest.approx(0.9)
        assert user.sigma("dob") == pytest.approx(0.4)

    def test_default_sensitivity(self):
        user = UserProfile("u", default_sensitivity=0.2)
        assert user.sigma("anything") == pytest.approx(0.2)

    def test_anon_field_inherits_original_sigma(self):
        user = UserProfile("u", sensitivities={"weight": 0.8})
        assert user.sigma("weight_anon") == pytest.approx(0.8)

    def test_explicit_anon_sigma_wins(self):
        user = UserProfile("u", sensitivities={
            "weight": 0.8, "weight_anon": 0.1})
        assert user.sigma("weight_anon") == pytest.approx(0.1)

    def test_acceptable_risk_parsed(self):
        assert UserProfile("u", acceptable_risk="medium") \
            .acceptable_risk is RiskLevel.MEDIUM

    def test_allowed_actors(self, surgery_system):
        user = UserProfile("u", agreed_services=["MedicalService"])
        allowed = user.allowed_actors(surgery_system)
        assert allowed == {"Receptionist", "Doctor", "Nurse"}
        assert user.non_allowed_actors(surgery_system) == \
            {"Administrator", "Researcher"}

    def test_unknown_agreed_service_rejected(self, surgery_system):
        user = UserProfile("u", agreed_services=["Ghost"])
        with pytest.raises(AnalysisError, match="Ghost"):
            user.allowed_actors(surgery_system)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            UserProfile("")


class TestQuestionnaire:
    def _questionnaire(self):
        return (Questionnaire()
                .ask_consent("MedicalService")
                .ask_sensitivity("diagnosis"))

    def test_build_profile(self):
        profile = self._questionnaire().build_profile("u", {
            "MedicalService": "yes",
            "diagnosis": "extremely",
        })
        assert profile.has_agreed_to("MedicalService")
        assert profile.sigma("diagnosis") == pytest.approx(1.0)

    def test_declined_consent(self):
        profile = self._questionnaire().build_profile("u", {
            "MedicalService": "no",
            "diagnosis": "not at all",
        })
        assert not profile.has_agreed_to("MedicalService")
        assert profile.sigma("diagnosis") == 0.0

    def test_missing_answer_rejected(self):
        with pytest.raises(AnalysisError, match="missing"):
            self._questionnaire().build_profile(
                "u", {"MedicalService": "yes"})

    def test_unknown_answer_key_rejected(self):
        with pytest.raises(AnalysisError, match="unknown"):
            self._questionnaire().build_profile("u", {
                "MedicalService": "yes", "diagnosis": "very",
                "shoe_size": "very",
            })

    def test_off_scale_answer_rejected(self):
        with pytest.raises(AnalysisError, match="not on the scale"):
            self._questionnaire().build_profile("u", {
                "MedicalService": "yes", "diagnosis": "sort of",
            })

    def test_invalid_consent_answer(self):
        with pytest.raises(AnalysisError, match="yes/no"):
            self._questionnaire().build_profile("u", {
                "MedicalService": "maybe", "diagnosis": "very",
            })

    def test_custom_scale_validated(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            Questionnaire().ask_sensitivity("x", scale={"hot": 2.0})

    def test_likert_is_monotone(self):
        values = list(LIKERT_5.values())
        assert values == sorted(values)


class TestPersonas:
    _schema = DataSchema("S", [
        Field("name", kind=FieldKind.IDENTIFIER),
        Field("weight", kind=FieldKind.SENSITIVE),
        Field("notes"),
    ])

    def test_fundamentalist_more_sensitive_than_unconcerned(self):
        import random
        rng_a, rng_b = random.Random(1), random.Random(1)
        fund = profile_from_persona("f", FUNDAMENTALIST, self._schema,
                                    ["svc"], rng_a)
        calm = profile_from_persona("c", UNCONCERNED, self._schema,
                                    ["svc"], rng_b)
        assert fund.sigma("weight") > calm.sigma("weight")

    def test_simulate_users_deterministic(self):
        first = simulate_users(20, list(self._schema), ["svc"], seed=42)
        second = simulate_users(20, list(self._schema), ["svc"], seed=42)
        assert [u.name for u in first] == [u.name for u in second]
        assert [u.sigma("weight") for u in first] == \
            [u.sigma("weight") for u in second]

    def test_simulate_users_follow_distribution_roughly(self):
        users = simulate_users(300, list(self._schema), ["svc"], seed=0)
        pragmatists = sum("pragmatist" in u.name for u in users)
        assert 100 < pragmatists < 250  # ~57% of 300

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            simulate_users(5, list(self._schema), ["svc"],
                           distribution=((PRAGMATIST, 0.5),))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_users(-1, list(self._schema), ["svc"])
