"""Round-trip tests for dict/JSON serialization and the DSL writer."""

import pytest

from repro.casestudies import build_research_system, build_surgery_system
from repro.dfd import (
    from_json,
    parse_dsl,
    system_from_dict,
    system_to_dict,
    to_dsl,
    to_json,
)
from repro.errors import ModelError


class TestDictRoundTrip:
    def test_tiny_system(self, tiny_system):
        data = system_to_dict(tiny_system)
        rebuilt = system_from_dict(data)
        assert system_to_dict(rebuilt) == data

    def test_surgery_system(self):
        system = build_surgery_system()
        data = system_to_dict(system)
        assert system_to_dict(system_from_dict(data)) == data

    def test_research_system(self):
        system = build_research_system()
        data = system_to_dict(system)
        assert system_to_dict(system_from_dict(data)) == data

    def test_missing_name_rejected(self):
        with pytest.raises(ModelError, match="name"):
            system_from_dict({})

    def test_missing_schema_reference_rejected(self):
        data = {
            "name": "x",
            "datastores": [{"name": "D", "schema": "Ghost"}],
        }
        with pytest.raises(ModelError, match="missing"):
            system_from_dict(data)

    def test_dict_content_shape(self, tiny_system):
        data = system_to_dict(tiny_system)
        assert data["name"] == "tiny"
        assert {s["name"] for s in data["schemas"]} == {"S"}
        assert {a["name"] for a in data["actors"]} == {"Alice", "Bob"}
        assert len(data["acl"]) == 2
        flows = data["services"][0]["flows"]
        assert flows[0]["purpose"] == "signup"


class TestJsonRoundTrip:
    def test_json_round_trip(self, tiny_system):
        text = to_json(tiny_system)
        rebuilt = from_json(text)
        assert system_to_dict(rebuilt) == system_to_dict(tiny_system)

    def test_json_is_indented(self, tiny_system):
        assert "\n  " in to_json(tiny_system)


class TestDslRoundTrip:
    def test_tiny_system(self, tiny_system):
        text = to_dsl(tiny_system)
        reparsed = parse_dsl(text)
        assert system_to_dict(reparsed) == system_to_dict(tiny_system)

    def test_surgery_system(self):
        system = build_surgery_system()
        reparsed = parse_dsl(to_dsl(system))
        assert system_to_dict(reparsed) == system_to_dict(system)

    def test_research_system(self):
        system = build_research_system()
        reparsed = parse_dsl(to_dsl(system))
        assert system_to_dict(reparsed) == system_to_dict(system)

    def test_quoted_names_survive(self):
        from repro.dfd import SystemBuilder
        system = (SystemBuilder("My System").schema("S", ["a"])
                  .actor("A")
                  .service("Svc With Spaces")
                  .flow(1, "User", "A", ["a"], purpose="with \"quotes\"")
                  .build())
        reparsed = parse_dsl(to_dsl(system))
        assert "Svc With Spaces" in reparsed.services
        flow = reparsed.service("Svc With Spaces").flows[0]
        assert flow.purpose == 'with "quotes"'
