"""The asyncio front-end: parity with the threaded server, streaming,
backpressure, cancellation, auth, rate limiting and deadlines.

The centrepiece is a property test driving *identical* request
streams through a live threaded server and a live asyncio server
backed by equally-configured facades, asserting byte-identical
response payloads (after normalising wall-clock fields — ``duration``
and friends genuinely differ between two independent runs) and
identical :meth:`JobResult.signature` tuples on every ``/v1/*``
route. Both servers see every example's requests in the same order,
so their cache states stay in lockstep across the whole run.
"""

import http.client
import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import (
    AnalysisResponse,
    AnalysisService,
    AsyncServerThread,
    TokenBucket,
    WorkerLoad,
    make_server,
)

MODEL = """
system demo {
  schema S {
    field name: string kind identifier
    field issue: string kind sensitive
  }
  actor Doctor
  actor Auditor
  datastore Records schema S
  service Consult {
    flow 1 User -> Doctor fields [name, issue] purpose "consult"
    flow 2 Doctor -> Records fields [name, issue] purpose "record"
  }
  acl {
    allow Doctor read, create on Records
    allow Auditor read on Records
  }
}
"""

MODEL_B = """
system clinic {
  schema S {
    field email: string kind identifier
    field notes: string kind sensitive
  }
  actor Nurse
  datastore Charts schema S
  service Intake {
    flow 1 User -> Nurse fields [email, notes] purpose "intake"
    flow 2 Nurse -> Charts fields [email, notes] purpose "file"
  }
  acl {
    allow Nurse read, create on Charts
  }
}
"""

USER = {"agree": ["Consult"], "sensitivities": {"issue": "high"}}

#: Wall-clock fields that honestly differ between two runs of the
#: same work, plus the load fields only a serving front-end fills in.
VOLATILE = ("duration", "wall_time", "oldest_age", "newest_age",
            "queue_depth", "shed_total", "inflight_limit")
_VOLATILE_RE = re.compile(
    r'"(%s)":\s*-?[0-9.e+-]+' % "|".join(VOLATILE))


def normalize(body: bytes) -> str:
    return _VOLATILE_RE.sub(r'"\1": 0', body.decode("utf-8"))


def call(base, path, payload=None, method=None, headers=None):
    """One JSON exchange; ``(status, raw body bytes)``."""
    data = json.dumps(payload).encode() if payload is not None \
        else None
    request = urllib.request.Request(
        base + path, data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json",
                 **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def async_server():
    service = AnalysisService(backend="thread")
    front = AsyncServerThread(service).start()
    yield front.base, service, front
    front.stop()
    service.close()


# -- parity: one request stream, two front-ends --------------------------------

# Each op is (path, payload) — POST when payload is not None. The
# pool walks every wire route except the async job table (its
# queued/running snapshots race wall-clock, covered deterministically
# below).
OPS = st.lists(
    st.one_of(
        st.just(("/v1/models", {"text": MODEL})),
        st.just(("/v1/models", {"text": MODEL_B})),
        st.just(("/v1/models", None)),
        st.just(("/v1/health", None)),
        st.just(("/v1/kinds", None)),
        st.just(("/v1/cache/stats", None)),
        st.builds(
            lambda level: ("/v1/analyze", {
                "models": [{"text": MODEL}],
                "user": {"agree": ["Consult"],
                         "sensitivities": {"issue": level}}}),
            st.sampled_from(["low", "medium", "high"])),
        st.builds(
            lambda seed, count, screen: ("/v1/sweep", {
                "seed": seed, "count": count, "screen": screen}),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=1, max_value=2),
            st.booleans()),
        st.builds(
            lambda seed: ("/v1/sweep", {
                "seed": seed, "count": 2, "indices": [0, 2]}),
            st.integers(min_value=0, max_value=1)),
        st.just(("/v1/lint", {"models": [{"text": MODEL}]})),
        st.just(("/v1/nope", None)),            # GET 404
        st.just(("/v1/nope", {})),              # POST 404
        st.just(("/v1/models", {"wrong": 1})),  # typed 400
        st.just(("/v1/sweep", {"count": -4})),  # refused request
    ),
    min_size=1, max_size=6)


class TestFrontEndParity:
    """Identical request streams answer identically on both fronts."""

    @classmethod
    def setup_class(cls):
        cls.threaded_service = AnalysisService(backend="thread")
        cls.httpd = make_server(cls.threaded_service, port=0)
        cls.thread = threading.Thread(
            target=cls.httpd.serve_forever, daemon=True)
        cls.thread.start()
        host, port = cls.httpd.server_address[:2]
        cls.threaded_base = f"http://{host}:{port}"
        cls.async_service = AnalysisService(backend="thread")
        cls.front = AsyncServerThread(cls.async_service).start()
        cls.async_base = cls.front.base

    @classmethod
    def teardown_class(cls):
        cls.httpd.shutdown()
        cls.httpd.server_close()
        cls.threaded_service.close()
        cls.thread.join(timeout=5)
        cls.front.stop()
        cls.async_service.close()

    @given(ops=OPS)
    @settings(max_examples=25, deadline=None)
    def test_byte_identical_responses(self, ops):
        for path, payload in ops:
            t_status, t_body = call(self.threaded_base, path, payload)
            a_status, a_body = call(self.async_base, path, payload)
            assert t_status == a_status, (path, payload)
            assert normalize(t_body) == normalize(a_body), \
                (path, payload)
            if t_status == 200 and path in ("/v1/analyze",
                                            "/v1/sweep"):
                t_sigs = AnalysisResponse.from_dict(
                    json.loads(t_body)).signatures()
                a_sigs = AnalysisResponse.from_dict(
                    json.loads(a_body)).signatures()
                assert t_sigs == a_sigs


def test_async_job_routes_round_trip(async_server):
    """The async job table behaves identically once jobs settle."""
    base, service, _ = async_server
    status, body = call(base, "/v1/jobs", {
        "op": "analyze",
        "request": {"models": [{"text": MODEL}], "user": USER}})
    assert status == 202
    job_id = json.loads(body)["job_id"]
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        status, body = call(base, f"/v1/jobs/{job_id}")
        assert status == 200
        record = json.loads(body)
        if record["status"] == "done":
            break
        time.sleep(0.02)
    assert record["status"] == "done"
    direct = service.job_status(job_id).to_dict()
    assert normalize(json.dumps(direct).encode()) == \
        normalize(json.dumps(record).encode())


# -- streaming -----------------------------------------------------------------

def test_stream_emits_first_line_before_last_job_runs(tmp_path):
    """The laziness pin: pulling one ndjson line runs one job, not
    the fleet — streaming starts before the sweep finishes."""
    from repro.service import SweepRequest
    service = AnalysisService(backend="serial")
    try:
        executed = []
        original = service._run

        def counting_run(jobs, **kwargs):
            executed.extend(jobs)
            return original(jobs, **kwargs)

        service._run = counting_run
        lines = service.sweep_stream(SweepRequest(seed=5, count=6))
        first = next(lines)
        assert set(first) == {"index", "fingerprint", "result"}
        assert first["index"] == 0
        assert 0 < len(executed) < 6
        lines.close()
    finally:
        service.close()


def test_stream_over_http_matches_buffered_sweep(async_server):
    base, service, _ = async_server
    sweep = {"seed": 9, "count": 4}
    status, buffered = call(base, "/v1/sweep", sweep)
    assert status == 200
    buffered = json.loads(buffered)

    request = urllib.request.Request(
        base + "/v1/sweep?stream=1",
        data=json.dumps(sweep).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=30) as reply:
        assert reply.status == 200
        assert reply.headers["Content-Type"] == \
            "application/x-ndjson"
        lines = [json.loads(line) for line in reply if line.strip()]
    summary = lines[-1]["summary"]
    results = [line for line in lines[:-1]]
    assert [line["index"] for line in results] == \
        list(range(len(results)))
    assert summary["jobs"] == len(results)
    assert summary["max_level"] == buffered["max_level"]
    streamed_fps = [line["result"]["fingerprint"]
                    for line in results]
    buffered_fps = [result["fingerprint"]
                    for result in buffered["results"]]
    assert streamed_fps == buffered_fps


def test_stream_mid_disconnect_stops_jobs(async_server):
    base, service, front = async_server
    executed = []
    original = service._run

    def slow_run(jobs, **kwargs):
        executed.extend(jobs)
        time.sleep(0.05)
        return original(jobs, **kwargs)

    service._run = slow_run
    conn = http.client.HTTPConnection(front.host, front.port)
    conn.request("POST", "/v1/sweep?stream=1",
                 json.dumps({"seed": 3, "count": 10}),
                 {"Content-Type": "application/json"})
    reply = conn.getresponse()
    first = json.loads(reply.readline())
    assert first["index"] == 0
    conn.close()                      # walk away mid-stream
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and \
            front.server.cancelled_total == 0:
        time.sleep(0.02)
    assert front.server.cancelled_total == 1
    settled = len(executed)
    time.sleep(0.3)                   # would keep growing if alive
    assert len(executed) == settled
    assert len(executed) < 20         # 10 scenarios x 1 kind x ...


def test_threaded_stream_matches_async_stream():
    """The threaded front-end speaks the same streaming wire."""
    def collect(base):
        request = urllib.request.Request(
            base + "/v1/sweep?stream=1",
            data=json.dumps({"seed": 2, "count": 3}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request, timeout=30) as reply:
            assert reply.headers["Content-Type"] == \
                "application/x-ndjson"
            return [normalize(line) for line in reply if line.strip()]

    t_service = AnalysisService(backend="thread")
    httpd = make_server(t_service, port=0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    a_service = AnalysisService(backend="thread")
    front = AsyncServerThread(a_service).start()
    try:
        threaded = collect("http://%s:%s" % httpd.server_address[:2])
        asynced = collect(front.base)
        assert threaded == asynced
    finally:
        httpd.shutdown()
        httpd.server_close()
        t_service.close()
        front.stop()
        a_service.close()


# -- backpressure, rate limiting, auth, deadlines ------------------------------

class SlowSweepService(AnalysisService):
    """A facade whose sweeps dwell long enough to observe queueing."""

    dwell = 0.4

    def sweep(self, request):
        time.sleep(self.dwell)
        return super().sweep(request)


def test_shedding_answers_typed_429():
    service = SlowSweepService(backend="serial")
    front = AsyncServerThread(service, max_inflight=1,
                              queue_limit=0).start()
    try:
        outcomes = []

        def fire(seed):
            status, body = call(front.base, "/v1/sweep",
                                {"seed": seed, "count": 1})
            outcomes.append(
                (status,
                 json.loads(body).get("error", {}).get("code")))

        threads = [threading.Thread(target=fire, args=(seed,))
                   for seed in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shed = [outcome for outcome in outcomes
                if outcome == (429, "overloaded")]
        served = [outcome for outcome in outcomes
                  if outcome[0] == 200]
        assert served and shed
        assert len(served) + len(shed) == 5
        # The health body exposes the shed accounting.
        _, health = call(front.base, "/v1/health")
        load = WorkerLoad.from_health(json.loads(health))
        assert load.shed_total == len(shed)
        assert load.inflight_limit == 1
    finally:
        front.stop()
        service.close()


def test_rate_limit_answers_typed_429_and_health_is_exempt():
    service = AnalysisService(backend="serial")
    front = AsyncServerThread(service, rate_limit=1,
                              rate_burst=2).start()
    try:
        codes = [call(front.base, "/v1/kinds")[0] for _ in range(5)]
        assert codes.count(200) == 2
        assert codes.count(429) == 3
        status, body = call(front.base, "/v1/models", {})
        assert (status,
                json.loads(body)["error"]["code"]) == \
            (429, "rate_limited")
        assert call(front.base, "/v1/health")[0] == 200
    finally:
        front.stop()
        service.close()


def test_auth_hook_answers_401_and_health_is_exempt():
    service = AnalysisService(backend="serial")
    front = AsyncServerThread(service, auth_token="hunter2").start()
    try:
        status, body = call(front.base, "/v1/models", {"text": MODEL})
        assert (status,
                json.loads(body)["error"]["code"]) == \
            (401, "unauthorized")
        assert call(front.base, "/v1/kinds")[0] == 401
        assert call(front.base, "/v1/health")[0] == 200
        status, _ = call(front.base, "/v1/models", {"text": MODEL},
                         headers={"Authorization": "Bearer hunter2"})
        assert status == 201
    finally:
        front.stop()
        service.close()


def test_request_deadline_answers_typed_408():
    service = SlowSweepService(backend="serial")
    front = AsyncServerThread(service, request_timeout=0.1).start()
    try:
        status, body = call(front.base, "/v1/sweep",
                            {"seed": 1, "count": 1})
        assert status == 408
        assert json.loads(body)["error"]["code"] == \
            "deadline_exceeded"
        assert front.server.timeouts_total == 1
    finally:
        front.stop()
        service.close()


def test_threaded_request_timeout_answers_typed_408():
    """The threaded front-end honours --request-timeout too: a body
    that never arrives answers 408, not a silent drop."""
    service = AnalysisService(backend="serial")
    httpd = make_server(service, port=0, request_timeout=0.2)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]
    try:
        raw = socket.create_connection((host, port), timeout=10)
        raw.sendall(b"POST /v1/sweep HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 100\r\n\r\n{")  # ...stall
        # Head and body may land in separate segments under load.
        buffered = b""
        while b"deadline_exceeded" not in buffered:
            data = raw.recv(65536)
            if not data:
                break
            buffered += data
        reply = buffered.decode()
        raw.close()
        assert "408" in reply.splitlines()[0]
        assert "deadline_exceeded" in reply
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()


def test_disconnect_cancels_queued_work():
    ran = []

    class TrackingService(AnalysisService):
        def sweep(self, request):
            ran.append(request.seed)
            time.sleep(0.3)
            return super().sweep(request)

    service = TrackingService(backend="serial")
    front = AsyncServerThread(service, max_inflight=1,
                              queue_limit=8).start()
    try:
        first = http.client.HTTPConnection(front.host, front.port)
        first.request("POST", "/v1/sweep",
                      json.dumps({"seed": 1, "count": 1}),
                      {"Content-Type": "application/json"})
        time.sleep(0.05)              # occupies the only slot
        second = http.client.HTTPConnection(front.host, front.port)
        second.request("POST", "/v1/sweep",
                       json.dumps({"seed": 2, "count": 1}),
                       {"Content-Type": "application/json"})
        time.sleep(0.05)              # now queued behind the first
        second.close()                # ...and abandoned
        reply = first.getresponse()
        assert reply.status == 200
        reply.read()
        first.close()
        time.sleep(0.5)
        assert ran == [1]             # the abandoned sweep never ran
        assert front.server.cancelled_total == 1
    finally:
        front.stop()
        service.close()


# -- lifecycle -----------------------------------------------------------------

def test_graceful_shutdown_drains_in_flight_requests():
    service = SlowSweepService(backend="serial")
    service.dwell = 0.3
    front = AsyncServerThread(service).start()
    outcome = {}

    def fire():
        outcome["reply"] = call(front.base, "/v1/sweep",
                                {"seed": 4, "count": 1})

    worker = threading.Thread(target=fire)
    worker.start()
    time.sleep(0.1)                   # request is on the executor
    front.stop(drain=True)            # must not cut it off
    worker.join(timeout=10)
    assert outcome["reply"][0] == 200


def test_port_zero_binds_ephemeral_port_and_reports_it():
    service = AnalysisService(backend="serial")
    front = AsyncServerThread(service, port=0).start()
    try:
        assert front.port > 0
        assert call(front.base, "/v1/health")[0] == 200
    finally:
        front.stop()
        service.close()


def test_health_decodes_front_end_load_fields(async_server):
    base, _, front = async_server
    _, body = call(base, "/v1/health")
    health = json.loads(body)
    load = WorkerLoad.from_health(health)
    assert load.inflight_limit == front.server.max_inflight
    assert load.to_dict() == health["load"]


# -- token bucket --------------------------------------------------------------

def test_token_bucket_refills_at_rate():
    now = [0.0]
    bucket = TokenBucket(rate=2, burst=2, clock=lambda: now[0])
    assert bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()
    now[0] += 0.5                     # half a second: one token back
    assert bucket.try_take()
    assert not bucket.try_take()
    now[0] += 10.0                    # refill clamps at burst
    assert bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()
