"""The static taint pre-screen: closure soundness, certificates,
engine screening, the `taint` analysis kind, and the hypothesis
property pinning the soundness contract (taint-clear => the exact
disclosure analyzer reports zero risk events)."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.casestudies import (
    build_surgery_system,
    surgery_patient,
    tighten_administrator_policy,
)
from repro.consent import UserProfile
from repro.core import GenerationOptions
from repro.core.risk import DisclosureRiskAnalyzer
from repro.dfd import SystemBuilder, diff_models
from repro.engine import (
    AnalysisJob,
    BatchEngine,
    FleetReport,
    ScenarioGenerator,
    get_kind,
    model_fingerprint,
    scenario_jobs,
)
from repro.taint import (
    TaintCertificate,
    build_certificate,
    certificate_from_report,
    compute_taint,
    content_universe,
)

#: The soundness property runs deeper in CI (the acceptance bar is
#: >= 200 examples) and lighter on a developer loop.
SOUNDNESS_EXAMPLES = int(os.environ.get(
    "TAINT_SOUNDNESS_EXAMPLES",
    "200" if os.environ.get("CI") else "60"))


def _options(system, user):
    return DisclosureRiskAnalyzer.default_options(system, user)


def _chain():
    """User -> A -> D -> B: everything B has arrives through D."""
    return (SystemBuilder("chain")
            .schema("S", ["a", "b"])
            .actor("A").actor("B")
            .datastore("D", "S")
            .service("svc")
            .flow(1, "User", "A", ["a", "b"])
            .flow(2, "A", "D", ["a"])
            .flow(3, "D", "B", ["a"])
            .allow("A", "create", "D", ["a"])
            .allow("B", "read", "D", ["a"])
            .build())


class TestContentUniverse:
    def test_schema_fields(self):
        universe = content_universe(_chain())
        assert universe["D"] == frozenset({"a", "b"})

    def test_extra_inbound_fields_extend_the_universe(self):
        system = (SystemBuilder("extra")
                  .schema("S", ["a"])
                  .actor("A")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "D", ["a", "offschema"])
                  .build(validate=False))
        assert content_universe(system)["D"] == \
            frozenset({"a", "offschema"})


class TestClosure:
    def test_chain_reaches_through_the_store(self):
        report = compute_taint(_chain())
        assert report.reaches("a", "A")
        assert report.reaches("a", "B")
        assert ("D", "a") in report.content_atoms

    def test_unforwarded_field_never_reaches(self):
        report = compute_taint(_chain())
        # `b` stops at A: the A->D flow only carries `a`.
        assert report.reaches("b", "A")
        assert not report.reaches("b", "B")
        assert ("b", "B") in report.unreachable_pairs()

    def test_user_trivially_reaches_everything(self):
        report = compute_taint(_chain())
        assert report.reaches("a", "User")
        assert report.reaches("b", "User")

    def test_flow_reads_are_risk_surface(self):
        report = compute_taint(_chain())
        assert report.flow_read_fields["B"] == frozenset({"a"})
        assert "B" in report.flagged_actors()
        assert not report.clean_for(("B",))
        assert report.clean_for(())

    def test_witness_path_explains_the_derivation(self):
        report = compute_taint(_chain())
        path = report.witness_path("a", "B")
        assert path
        assert any("reads" in step for step in path)
        assert report.witness_path("b", "B") == ()

    def test_potential_reads_feed_back_into_the_fixpoint(self):
        """An actor whose only inbound path is a policy read still
        propagates onward — the closure must not treat potential
        reads as terminal."""
        system = (SystemBuilder("feedback")
                  .schema("S", ["a"])
                  .actor("A").actor("Reader").actor("Sink")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "D", ["a"])
                  .flow(3, "Reader", "Sink", ["a"])
                  .allow("A", "create", "D", ["a"])
                  .allow("Reader", "read", "D", ["a"])
                  .build())
        options = GenerationOptions(
            include_potential_reads=True,
            potential_read_actors=frozenset({"Reader", "Sink"}))
        report = compute_taint(system, options)
        assert report.reaches("a", "Reader")
        assert report.reaches("a", "Sink")

    def test_originated_fields_materialise_on_firing(self):
        system = (SystemBuilder("orig")
                  .schema("S", ["a", "verdict"])
                  .actor("A", originates=["verdict"])
                  .actor("B")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "B", ["verdict"])
                  .build())
        report = compute_taint(system)
        assert report.reaches("verdict", "A")
        assert report.reaches("verdict", "B")

    def test_pseudonymisation_renames_into_anonymised_stores(self):
        system = (SystemBuilder("anon")
                  .schema("S", ["a"])
                  .anonymised_schema("SAnon", "S", ["a"])
                  .actor("A").actor("B")
                  .datastore("D", "SAnon", anonymised=True)
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "D", ["a"])
                  .flow(3, "D", "B", ["a_anon"])
                  .allow("A", "create", "D")
                  .build())
        report = compute_taint(system)
        assert ("D", "a_anon") in report.content_atoms
        assert ("D", "a") not in report.content_atoms
        # B reads only the pseudonymised variant.
        assert report.reaches("a_anon", "B")
        assert not report.reaches("a", "B")

    def test_never_ready_store_read_is_dropped(self):
        """A store->actor flow demanding a field outside the store's
        content universe can never fire (mirrors never_ready)."""
        system = (SystemBuilder("neverready")
                  .schema("S", ["a"])
                  .actor("A").actor("B")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .flow(2, "A", "D", ["a"])
                  .flow(3, "D", "B", ["ghost"])
                  .allow("A", "create", "D", ["a"])
                  .build(validate=False))
        report = compute_taint(system)
        assert not report.blockers
        assert "B" not in report.flow_read_fields
        assert not report.reaches("ghost", "B")

    def test_unknown_service_is_a_blocker(self):
        report = compute_taint(
            _chain(), GenerationOptions(services=("nope",)))
        assert report.blockers
        assert not report.clean_for(())
        # Blockers poison every impossibility claim.
        assert report.reaches("b", "B")
        assert report.unreachable_pairs() == ()

    def test_empty_flow_selection_is_a_blocker(self):
        report = compute_taint(
            _chain(), GenerationOptions(services=()))
        assert report.blockers

    def test_invalid_initial_contents_is_a_blocker(self):
        report = compute_taint(_chain(), GenerationOptions(
            initial_store_contents={"D": ("ghost",)}))
        assert report.blockers

    def test_initial_contents_seed_the_closure(self):
        system = (SystemBuilder("seeded")
                  .schema("S", ["a"])
                  .actor("B")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "D", "B", ["a"])
                  .build(validate=False))
        empty = compute_taint(system)
        assert not empty.reaches("a", "B")
        seeded = compute_taint(system, GenerationOptions(
            initial_store_contents={"D": ("a",)}))
        assert seeded.reaches("a", "B")

    def test_surgery_flags_exactly_the_paper_actors(self):
        system = build_surgery_system()
        user = surgery_patient()
        report = compute_taint(system, _options(system, user))
        non_allowed = tuple(sorted(user.non_allowed_actors(system)))
        assert not report.clean_for(non_allowed)
        assert "Administrator" in report.flagged_actors()

    def test_tightened_surgery_still_flags_administrator(self):
        """IV.A remediation drops the risk level, not the read grants
        on every field — the screen must keep flagging."""
        system = tighten_administrator_policy(build_surgery_system())
        user = surgery_patient()
        report = compute_taint(system, _options(system, user))
        non_allowed = tuple(sorted(user.non_allowed_actors(system)))
        assert not report.clean_for(non_allowed)


class TestCertificate:
    def test_distils_the_report_verdicts(self):
        system = _chain()
        report = compute_taint(system)
        certificate = certificate_from_report(report, system)
        assert certificate.clean_for(()) == report.clean_for(())
        assert certificate.clean_for(("B",)) == \
            report.clean_for(("B",))
        assert certificate.flagged_actors() == \
            report.flagged_actors()
        assert ("D", "a") in certificate.tracked_atoms
        assert ("D", "b") not in certificate.tracked_atoms

    def test_fingerprint_is_deterministic_and_content_bound(self):
        one = build_certificate(_chain())
        two = build_certificate(_chain())
        assert one.fingerprint() == two.fingerprint()
        rebound = one.rebind("other-model-fp")
        assert rebound.model_fp == "other-model-fp"
        assert rebound.tracked_atoms == one.tracked_atoms
        assert rebound.fingerprint() != one.fingerprint()

    def test_describe_names_the_verdict(self):
        assert "clean" in build_certificate(
            (SystemBuilder("quiet").schema("S", ["a"]).actor("A")
             .datastore("D", "S").service("svc")
             .flow(1, "User", "A", ["a"]).build()),
        ).describe()
        assert "flags" in build_certificate(_chain()).describe()

    # -- survives_acl_change ---------------------------------------------------

    def _cert(self):
        return build_certificate(_chain())

    def test_untracked_read_grant_survives(self):
        """The precision fix: a read grant on a field taint never
        stores cannot create a READ event."""
        after = _chain()
        after.policy.allow("B", "read", "D", ["b"])
        diff = diff_models(_chain(), after)
        assert self._cert().survives_acl_change(diff)

    def test_tracked_read_grant_invalidates(self):
        after = _chain()
        after.policy.allow("B", "read", "D", ["a"])
        # grant keys dedupe against the existing B-read-a grant; use a
        # new subject so the atom actually appears in the diff
        after.policy.allow("Eve", "read", "D", ["a"])
        diff = diff_models(_chain(), after)
        assert any(g.field == "a" for g in diff.added_grants)
        assert not self._cert().survives_acl_change(diff)

    def test_wildcard_grant_on_tracked_store_invalidates(self):
        certificate = self._cert()
        assert certificate.survives_acl_change(diff_models(
            _chain(), _chain()))
        # A wildcard over a store holding tracked atoms may cover them.
        from repro.dfd.diff import GrantKey
        from repro.dfd.diff import ModelDiff
        diff = ModelDiff(added_grants=(
            GrantKey("Eve", "D", "read", "*"),))
        assert not certificate.survives_acl_change(diff)

    def test_nonschema_tracked_store_always_invalidates(self):
        """covers() matches wildcard entries against *any* field, but
        grant keys expand against the schema only — a store tracked
        outside its schema must refuse every read-grant addition."""
        system = (SystemBuilder("offschema")
                  .schema("S", ["a"])
                  .actor("A").actor("B")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a", "ghost"])
                  .flow(2, "A", "D", ["ghost"])
                  .build(validate=False))
        certificate = build_certificate(system)
        assert "D" in certificate.nonschema_tracked_stores
        from repro.dfd.diff import GrantKey, ModelDiff
        diff = ModelDiff(added_grants=(
            GrantKey("B", "D", "read", "a"),))
        assert not certificate.survives_acl_change(diff)

    def test_grant_removal_survives(self):
        after = _chain()
        from repro.access import Permission
        after.policy.revoke("B", Permission.READ, "D", fields=["a"],
                            store_fields=["a", "b"])
        diff = diff_models(_chain(), after)
        assert diff.removed_grants
        assert self._cert().survives_acl_change(diff)

    def test_non_read_grant_survives(self):
        after = _chain()
        after.policy.allow("B", "create", "D", ["a"])
        diff = diff_models(_chain(), after)
        assert self._cert().survives_acl_change(diff)

    def test_structural_change_invalidates(self):
        after = (SystemBuilder("chain")
                 .schema("S", ["a", "b"])
                 .actor("A").actor("B").actor("C")
                 .datastore("D", "S")
                 .service("svc")
                 .flow(1, "User", "A", ["a", "b"])
                 .flow(2, "A", "D", ["a"])
                 .flow(3, "D", "B", ["a"])
                 .allow("A", "create", "D", ["a"])
                 .allow("B", "read", "D", ["a"])
                 .build())
        diff = diff_models(_chain(), after)
        assert diff.structural_change
        assert not self._cert().survives_acl_change(diff)


class TestEngineScreen:
    def _jobs(self, count=16, seed=3):
        return scenario_jobs(
            ScenarioGenerator(seed=seed).generate(count))

    def test_screen_skips_clean_jobs(self):
        jobs = self._jobs()
        batch = BatchEngine(backend="serial").run(jobs, screen=True)
        assert batch.stats.screened > 0
        assert batch.stats.screen_flagged > 0
        assert batch.stats.executed == batch.stats.jobs - \
            batch.stats.screened - batch.stats.deduplicated
        assert len(batch.results) == len(jobs)

    def test_screened_results_match_exact_runs(self):
        """The acceptance contract: screened jobs are zero-event in
        the exact run; non-skipped jobs have byte-identical
        signatures."""
        jobs = self._jobs()
        plain = BatchEngine(backend="serial").run(jobs)
        screened = BatchEngine(backend="serial").run(jobs, screen=True)
        exact = {r.fingerprint: r for r in plain.results}
        skipped = 0
        for result in screened.results:
            twin = exact[result.fingerprint]
            if result.detail("screened"):
                skipped += 1
                assert twin.max_level == "none"
                assert twin.events == ()
                assert result.max_level == "none"
                assert result.non_allowed_actors == \
                    twin.non_allowed_actors
                assert not result.lts_generated
            else:
                assert repr(result.signature()) == \
                    repr(twin.signature())
        assert skipped == screened.stats.screened > 0

    def test_screen_reduces_lts_generations(self):
        jobs = self._jobs()
        plain = BatchEngine(backend="serial").run(jobs)
        screened = BatchEngine(backend="serial").run(jobs, screen=True)
        assert screened.stats.lts_generations < \
            plain.stats.lts_generations

    def test_screened_results_never_poison_the_result_cache(self):
        """An unscreened run after a screened one must compute exact
        answers, not be served screened stand-ins."""
        engine = BatchEngine(backend="serial")
        jobs = self._jobs(count=6)
        first = engine.run(jobs, screen=True)
        assert first.stats.screened > 0
        second = engine.run(jobs)
        assert all(not r.detail("screened") for r in second.results)
        # Exactly the screened jobs miss the warm result cache.
        assert second.stats.result_hits == \
            len(jobs) - first.stats.screened

    def test_result_cache_hits_win_over_the_screen(self):
        engine = BatchEngine(backend="serial")
        jobs = self._jobs(count=6)
        engine.run(jobs)
        warm = engine.run(jobs, screen=True)
        assert warm.stats.screened == 0
        assert warm.stats.result_hits == len(jobs)

    def test_certificates_come_from_the_taint_cache_when_warm(self):
        engine = BatchEngine(backend="serial")
        job = self._jobs(count=1)[0]
        cold = engine.screen_certificate(job)
        before_hits = engine.taint_cache.stats.hits
        warm = engine.screen_certificate(job)
        assert engine.taint_cache.stats.hits > before_hits
        assert warm.fingerprint() == cold.fingerprint()

    def test_user_without_agreed_services_is_never_skipped(self):
        """Exact analysis raises for such users; the screen must
        preserve the raise, not convert it into a silent clean
        verdict."""
        from repro.errors import ReproError
        system = _chain()
        job = AnalysisJob(system=system,
                          user=UserProfile("u", agreed_services=[]))
        engine = BatchEngine(backend="serial")
        with pytest.raises(ReproError) as plain:
            engine.run([job])
        with pytest.raises(ReproError) as screened:
            engine.run([job], screen=True)
        assert str(screened.value) == str(plain.value)

    def test_screen_only_touches_screenable_kinds(self):
        system = build_surgery_system()
        jobs = [AnalysisJob(system=system, user=surgery_patient(),
                            kind="pseudonym")]
        batch = BatchEngine(backend="serial").run(jobs, screen=True)
        assert batch.stats.screened == 0
        assert batch.stats.screen_flagged == 0

    def test_stats_describe_reports_screen_counters(self):
        batch = BatchEngine(backend="serial").run(
            self._jobs(count=8), screen=True)
        assert "taint screen" in batch.stats.describe()
        plain = BatchEngine(backend="serial").run(self._jobs(count=2))
        assert "taint screen" not in plain.stats.describe()

    def test_fleet_report_rolls_up_screened_counts(self):
        batch = BatchEngine(backend="serial").run(
            self._jobs(), screen=True)
        report = FleetReport(batch.results, batch.stats)
        rollup = report.kind_rollups()["disclosure"]
        assert rollup["screened"] == batch.stats.screened


class TestTaintKind:
    def test_registered_and_screenable_flags(self):
        taint = get_kind("taint")
        assert not taint.uses_lts
        assert not taint.screenable
        assert get_kind("disclosure").screenable
        assert not get_kind("pseudonym").screenable

    def test_taint_kind_runs_through_the_engine(self):
        system = build_surgery_system()
        job = AnalysisJob(system=system, user=surgery_patient(),
                          kind="taint")
        batch = BatchEngine(backend="serial").run([job])
        result = batch.results[0]
        assert result.kind == "taint"
        assert result.states == 0
        assert not result.lts_generated
        assert result.detail("clean") is False
        assert result.detail("certificate")
        assert result.max_level == "low"

    def test_taint_kind_clean_verdict(self):
        system = (SystemBuilder("quiet")
                  .schema("S", ["a"])
                  .actor("A")
                  .datastore("D", "S")
                  .service("svc")
                  .flow(1, "User", "A", ["a"])
                  .build())
        job = AnalysisJob(
            system=system,
            user=UserProfile("u", agreed_services=["svc"]),
            kind="taint")
        result = BatchEngine(backend="serial").run([job]).results[0]
        assert result.detail("clean") is True
        assert result.max_level == "none"
        assert result.events == ()

    def test_taint_verdict_agrees_with_exact_analysis(self):
        system = build_surgery_system()
        user = surgery_patient()
        taint_result = BatchEngine(backend="serial").run(
            [AnalysisJob(system=system, user=user, kind="taint")]
        ).results[0]
        exact = DisclosureRiskAnalyzer(system).analyse(user)
        assert taint_result.detail("clean") == \
            (len(exact.events) == 0)


class TestSoundnessProperty:
    """The screen's contract, pinned over randomized scenario fleets:
    every pair the closure marks unreachable is absent from the exact
    analysis, and taint-clear models are exactly zero-event."""

    @given(seed=st.integers(min_value=0, max_value=10_000),
           pick=st.integers(min_value=0, max_value=3),
           extra_grant=st.booleans())
    @settings(max_examples=SOUNDNESS_EXAMPLES, deadline=None)
    def test_taint_clear_implies_zero_exact_events(
            self, seed, pick, extra_grant):
        scenarios = ScenarioGenerator(seed=seed).generate(4)
        scenario = scenarios[pick % len(scenarios)]
        system = scenario.system
        if extra_grant and system.datastores and system.actors:
            # Randomly widen the policy: the screen must track it.
            store_name = sorted(system.datastores)[seed %
                                                   len(system.datastores)]
            actor_name = sorted(system.actors)[seed %
                                               len(system.actors)]
            fields = sorted(
                system.datastores[store_name].field_names())
            if fields:
                system.policy.allow(
                    actor_name, "read", store_name,
                    [fields[seed % len(fields)]])
        for job in scenario.jobs("disclosure"):
            user = job.user
            if not user.agreed_services:
                continue
            options = _options(system, user)
            report = compute_taint(system, options)
            non_allowed = tuple(sorted(
                user.non_allowed_actors(system)))
            exact = DisclosureRiskAnalyzer(system).analyse(user)
            if report.clean_for(non_allowed):
                assert exact.events == (), (
                    f"screen declared {system.name!r} clean for "
                    f"{user.name!r} but exact analysis found "
                    f"{len(exact.events)} events")
            # The stronger per-pair direction: every exact event's
            # (field, actor) is reachable in the closure.
            for event in exact.events:
                for field_name in event.fields:
                    assert report.reaches(field_name, event.actor), (
                        f"exact event {event.actor}/{field_name} "
                        f"missing from the closure on {system.name!r}")
