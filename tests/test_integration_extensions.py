"""Integration: the extension modules working together on one system.

A loyalty-programme operator's full workflow: measure the release,
check purpose limitation, monitor a user fleet, evaluate a member's
consent change, and pick a pseudonymisation configuration — all on the
same model.
"""

import pytest

from repro.anonymize import privacy_metrics, recommend
from repro.casestudies import (
    ANALYTICS_SERVICE,
    CHECKOUT_SERVICE,
    OFFERS_SERVICE,
    build_loyalty_system,
    loyalty_member,
    synthetic_physical_records,
)
from repro.core import GenerationOptions, generate_lts
from repro.core.export import disclosure_report_to_dict
from repro.core.risk import (
    RiskLevel,
    ValueRiskPolicy,
    analyse_consent_change,
    analyse_disclosure,
)
from repro.dfd import diff_models, parse_dsl, to_dsl
from repro.monitor import MonitorPool, ServiceRuntime, read_event
from repro.policy import check_purpose_limitation

PURCHASE = {"customer_id": "c-1", "postcode": "SO17",
            "age_band": "30-39", "basket": "wine", "spend": 20.0}


@pytest.fixture
def loyalty_system():
    return build_loyalty_system()


class TestOperatorWorkflow:
    def test_purpose_limitation_on_loyalty(self, loyalty_system):
        lts = generate_lts(loyalty_system, GenerationOptions(
            services=(CHECKOUT_SERVICE, OFFERS_SERVICE)))
        violations = check_purpose_limitation(lts)
        # offer generation reuses purchase data beyond the checkout
        # purpose — exactly what the check must surface
        assert violations
        assert any(v.purpose == "offer generation"
                   for v in violations)

    def test_consent_change_preview_then_monitor(self, loyalty_system):
        member = loyalty_member("m1")
        sales_fields = loyalty_system.datastore(
            "SalesDB").field_names()
        preview = analyse_consent_change(
            loyalty_system, member, agree=[ANALYTICS_SERVICE],
            initial_store_contents={"SalesDB": sales_fields})
        # agreeing to analytics makes DataOfficer/Analyst allowed
        assert "DataOfficer" in preview.newly_allowed_actors
        assert not preview.risk_increases

        # the member declines anyway; monitoring must flag the officer
        pool = MonitorPool(loyalty_system)
        pool.register(member)
        runtime = ServiceRuntime(loyalty_system,
                                 monitor=pool.monitor_for("m1"))
        runtime.run_service(CHECKOUT_SERVICE, PURCHASE)
        pool.observe("m1", read_event(
            "DataOfficer", "SalesDB",
            ["age_band", "basket", "customer_id", "postcode",
             "spend"]))
        assert pool.users_with_critical_alerts() == ("m1",)

    def test_release_metrics_and_recommendation(self):
        records = [r.mask(["name"])
                   for r in synthetic_physical_records(150, seed=31)]
        policy = ValueRiskPolicy("weight", closeness=5.0,
                                 confidence=0.9,
                                 max_violation_fraction=0.1)
        chosen = recommend(records, ("age", "height"), policy)
        metrics = privacy_metrics(chosen.result.records,
                                  ("age", "height"), "weight")
        assert metrics.k >= chosen.candidate.k
        assert metrics.satisfies(k=chosen.candidate.k)

    def test_model_change_review_loop(self, loyalty_system):
        """Edit the DSL text, diff against the deployed model, check
        the new risk — the MDE loop end to end through text."""
        member = loyalty_member("m1")
        before_report = analyse_disclosure(loyalty_system, member)

        text = to_dsl(loyalty_system)
        # the proposed change: marketing gets raw SalesDB access
        hacked = text.replace(
            "allow analytics read on TrendsDB",
            "allow analytics read on TrendsDB\n"
            "    allow MarketingDirector read on SalesDB")
        proposed = parse_dsl(hacked)
        diff = diff_models(loyalty_system, proposed)
        assert diff.widens_access
        added = {g.describe() for g in diff.added_grants}
        assert any("MarketingDirector: read on SalesDB" in g
                   for g in added)

        after_report = analyse_disclosure(proposed, member)
        assert after_report.max_level >= before_report.max_level
        actors = {e.actor for e in after_report.events}
        assert "MarketingDirector" in actors

    def test_report_export_round_trip(self, loyalty_system):
        import json
        member = loyalty_member("m1")
        report = analyse_disclosure(loyalty_system, member)
        data = json.loads(json.dumps(
            disclosure_report_to_dict(report)))
        assert data["user"] == "m1"
        assert data["max_level"] == report.max_level.value
