"""Property: the lint structural tier is a faithful mirror of
:func:`repro.dfd.validation.validate_system` — every validation issue
(ERROR and WARNING alike) maps to exactly one lint diagnostic with the
same rule code, severity and message, over randomly built systems that
may or may not validate."""

import string

from hypothesis import given, settings, strategies as st

from repro.dfd import SystemBuilder
from repro.dfd.validation import Severity, validate_system
from repro.lint import run_lint

names = st.text(alphabet=string.ascii_lowercase, min_size=1,
                max_size=6)


@st.composite
def random_system(draw):
    """A builder system with deliberately unconstrained wiring: flows
    may reference unknown nodes, grants may target unknown stores or
    fields, services may be empty — the whole validation surface."""
    fields = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    actors = draw(st.lists(names.map(str.title), min_size=0,
                           max_size=3, unique=True))
    builder = SystemBuilder(draw(names))
    builder.schema("s", fields)
    for actor in actors:
        builder.actor(actor)
    has_store = draw(st.booleans())
    if has_store:
        builder.datastore("store", "s")
    # Candidate endpoints include "User", a possibly-missing store and
    # a node name that may not exist at all.
    nodes = ["User", "store", "ghost"] + actors
    service_count = draw(st.integers(min_value=0, max_value=2))
    for index in range(service_count):
        builder.service(f"svc{index}")
        for order in range(draw(st.integers(min_value=0,
                                            max_value=3))):
            source = draw(st.sampled_from(nodes))
            target = draw(st.sampled_from(
                [node for node in nodes if node != source]))
            builder.flow(
                order + 1,
                source,
                target,
                draw(st.lists(st.sampled_from(fields + ["bogus"]),
                              min_size=1, max_size=3, unique=True)),
                purpose=draw(names))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        builder.allow(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["read", "create", "write"])),
            draw(st.sampled_from(["store", "ghost"])),
            draw(st.one_of(
                st.just(("*",)),
                st.lists(st.sampled_from(fields + ["bogus"]),
                         min_size=1, max_size=2, unique=True))))
    return builder.build(validate=False)


@settings(max_examples=60, deadline=None)
@given(random_system())
def test_structural_tier_mirrors_validate_system(system):
    issues = validate_system(system, strict=False)
    report = run_lint(system, select=("structural",))
    assert sorted((i.code, i.severity.value, i.message)
                  for i in issues) == \
        sorted((d.rule, d.severity.value, d.message)
               for d in report.diagnostics)


@settings(max_examples=60, deadline=None)
@given(random_system())
def test_every_validation_error_has_exactly_one_diagnostic(system):
    errors = [i for i in validate_system(system, strict=False)
              if i.severity is Severity.ERROR]
    report = run_lint(system)
    lint_errors = [d for d in report.diagnostics
                   if d.severity is Severity.ERROR]
    # Exactly one lint diagnostic per validation ERROR, same code.
    assert sorted(i.code for i in errors) == \
        sorted(d.rule for d in lint_errors)
    assert report.errors == len(errors)
    # Strict-lint refusal aligns with strict validation: a model the
    # engine would refuse is exactly a model with validation errors.
    assert (report.exit_code() == 1) == bool(errors)


@settings(max_examples=40, deadline=None)
@given(random_system())
def test_full_report_is_deterministic(system):
    first = run_lint(system)
    second = run_lint(system)
    assert first.to_dict() == second.to_dict()
