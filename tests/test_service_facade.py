"""The AnalysisService facade: one object behind every entrypoint."""

import time

import pytest

from repro.casestudies import build_surgery_system
from repro.dfd import to_dsl
from repro.engine import AnalysisJob, BatchEngine
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    InvalidModelError,
    ModelRef,
    NotFoundError,
    ReanalyzeRequest,
    RequestError,
    SweepRequest,
    UserSpec,
)

MODEL = """
system demo {
  schema S {
    field name: string kind identifier
    field issue: string kind sensitive
  }
  actor Doctor
  actor Auditor
  datastore Records schema S
  service Consult {
    flow 1 User -> Doctor fields [name, issue] purpose "consult"
    flow 2 Doctor -> Records fields [name, issue] purpose "record"
  }
  acl {
    allow Doctor read, create on Records
    allow Auditor read on Records
  }
}
"""

USER = UserSpec(agree=("Consult",),
                sensitivities=(("issue", "high"),))


@pytest.fixture
def service():
    svc = AnalysisService(backend="serial")
    yield svc
    svc.close()


class TestModelStore:
    def test_upload_is_idempotent_and_content_addressed(self, service):
        first = service.upload_model(MODEL)
        second = service.upload_model(MODEL + "\n\n")
        assert first == second
        assert service.model_hashes() == (first,)

    def test_upload_rejects_parse_errors(self, service):
        with pytest.raises(InvalidModelError, match="does not parse"):
            service.upload_model("system { nope")

    def test_upload_rejects_invalid_structure(self, service):
        broken = """
        system demo {
          schema S { field a: string }
          actor A
          service svc { flow 1 User -> Ghost fields [a] }
        }
        """
        with pytest.raises(InvalidModelError,
                           match="structurally invalid") as exc:
            service.upload_model(broken)
        assert exc.value.issues

    def test_unknown_hash_is_not_found(self, service):
        with pytest.raises(NotFoundError, match="unknown model hash"):
            service.analyze(AnalysisRequest(
                models=(ModelRef(hash="f" * 64),), user=USER))

    def test_path_refs_resolve_and_register(self, service, tmp_path):
        path = tmp_path / "m.dsl"
        path.write_text(MODEL)
        response = service.analyze(AnalysisRequest(
            models=(ModelRef(path=str(path)),), user=USER))
        assert response.results[0].scenario == str(path)
        assert len(service.model_hashes()) == 1

    def test_missing_path_is_a_request_error(self, service):
        with pytest.raises(RequestError):
            service.analyze(AnalysisRequest(
                models=(ModelRef(path="/no/such.dsl"),), user=USER))


class TestAnalyze:
    def test_signatures_match_a_direct_engine_run(self, service):
        """The facade is a facade: same fingerprints, same results as
        hand-wiring the engine."""
        model_hash = service.upload_model(MODEL)
        response = service.analyze(AnalysisRequest(
            models=(ModelRef(hash=model_hash),), user=USER))

        from repro.dfd import parse_dsl
        direct = BatchEngine(backend="serial").run([AnalysisJob(
            system=parse_dsl(MODEL, validate=False),
            user=USER.to_profile())])
        assert response.signatures() == \
            tuple(r.signature() for r in direct.results)

    def test_unknown_kind_is_a_request_error(self, service):
        model_hash = service.upload_model(MODEL)
        with pytest.raises(RequestError, match="unknown analysis kind"):
            service.analyze(AnalysisRequest(
                models=(ModelRef(hash=model_hash),), user=USER,
                kind="dataflow"))

    def test_engine_errors_become_structured(self, service):
        """A user agreeing to a service the model lacks is an
        AnalysisError (a ReproError), not a traceback."""
        from repro.errors import ReproError
        model_hash = service.upload_model(MODEL)
        with pytest.raises(ReproError):
            service.analyze(AnalysisRequest(
                models=(ModelRef(hash=model_hash),),
                user=UserSpec(agree=("Ghost",))))

    def test_shared_result_cache_across_requests(self, service):
        model_hash = service.upload_model(MODEL)
        request = AnalysisRequest(models=(ModelRef(hash=model_hash),),
                                  user=USER)
        cold = service.analyze(request)
        warm = service.analyze(request)
        assert cold.stats.executed == 1
        assert warm.stats.result_hits == 1
        assert warm.results[0].from_cache
        assert cold.signatures() == warm.signatures()

    def test_population_kind_through_the_service(self, service):
        model_hash = service.upload_model(MODEL)
        response = service.analyze(AnalysisRequest(
            models=(ModelRef(hash=model_hash),), user=USER,
            kind="population", params={"count": 5, "seed": 2}))
        result = response.results[0]
        assert result.kind == "population"
        assert result.detail("analysed") >= 1


class TestSweep:
    def test_sweep_aggregates_a_fleet(self, service):
        response = service.sweep(SweepRequest(count=4, personas=1))
        assert len(response.results) == 4
        assert response.report["jobs"] == 4
        assert "level_histogram" in response.report

    def test_sweep_validates_kinds(self, service):
        with pytest.raises(RequestError, match="unknown analysis"):
            service.sweep(SweepRequest(count=2, kinds=("bogus",)))


class TestReanalyze:
    def test_incremental_plan_and_results(self, service, tmp_path):
        before = tmp_path / "before.dsl"
        before.write_text(MODEL)
        after = tmp_path / "after.dsl"
        after.write_text(MODEL.replace(
            "    allow Auditor read on Records\n",
            "    allow Auditor read on Records\n"
            "    allow Auditor create on Records\n"))
        response = service.reanalyze(ReanalyzeRequest(
            before=ModelRef(path=str(before)),
            after=ModelRef(path=str(after)), user=USER))
        assert response.plan_level == "analyzers"
        assert response.lts_seeded == 1
        assert response.outcome.stats.lts_generations == 0
        assert "change invalidates: analyzers" in response.describe()

    def test_baseline_cache_accounting_is_a_snapshot(self, service,
                                                     tmp_path):
        """The baseline response must report the cache as it stood
        after the baseline run, not after the incremental leg."""
        before = tmp_path / "before.dsl"
        before.write_text(MODEL)
        after = tmp_path / "after.dsl"
        after.write_text(MODEL.replace(
            "    allow Auditor read on Records\n",
            "    allow Auditor read on Records\n"
            "    allow Auditor create on Records\n"))
        response = service.reanalyze(ReanalyzeRequest(
            before=ModelRef(path=str(before)),
            after=ModelRef(path=str(after)), user=USER))
        assert response.baseline.result_cache.puts == 1
        assert response.outcome.result_cache.puts == 2

    def test_identical_models_short_circuit(self, service, tmp_path):
        path = tmp_path / "m.dsl"
        path.write_text(MODEL)
        response = service.reanalyze(ReanalyzeRequest(
            before=ModelRef(path=str(path)),
            after=ModelRef(path=str(path)), user=USER))
        assert response.plan_level == "nothing"
        assert response.outcome.stats.result_hits == 1


class TestCacheLifecycle:
    def test_cache_stats_never_creates_stores(self, tmp_path):
        target = str(tmp_path / "nowhere")
        response = AnalysisService(cache_dir=target).cache_stats()
        assert response.stores == ()
        import os
        assert not os.path.exists(target)

    def test_stats_and_prune_roundtrip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        service = AnalysisService(backend="serial",
                                  cache_dir=cache_dir)
        model_hash = service.upload_model(MODEL)
        service.analyze(AnalysisRequest(
            models=(ModelRef(hash=model_hash),), user=USER))
        stats = service.cache_stats()
        stores = dict(stats.stores)
        assert stores["results"]["entries"] == 1
        assert stores["lts"]["entries"] == 1
        assert stats.live["results"]["puts"] == 1
        pruned = service.prune_cache(max_bytes=0)
        assert sum(r.removed for _, r in pruned.stores) == 2

    def test_prune_without_cache_dir_is_an_error(self):
        with pytest.raises(RequestError, match="cache_dir"):
            AnalysisService().prune_cache(max_bytes=0)


class TestAsyncJobs:
    def _wait(self, service, job_id, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status = service.job_status(job_id)
            if status.finished:
                return status
            time.sleep(0.01)
        raise AssertionError(f"job {job_id} never finished")

    def test_submit_poll_fetch(self, service):
        model_hash = service.upload_model(MODEL)
        request = AnalysisRequest(models=(ModelRef(hash=model_hash),),
                                  user=USER)
        job_id = service.submit("analyze", request)
        status = self._wait(service, job_id)
        assert status.status == "done"
        assert status.result["max_level"] in ("none", "low",
                                              "medium", "high")
        # The async result is the same wire payload the sync call
        # produces (modulo cache accounting).
        sync = service.analyze(request)
        from repro.service import AnalysisResponse
        decoded = AnalysisResponse.from_dict(status.result)
        assert decoded.signatures() == sync.signatures()

    def test_identical_submissions_coalesce(self, service):
        model_hash = service.upload_model(MODEL)
        request = AnalysisRequest(models=(ModelRef(hash=model_hash),),
                                  user=USER)
        first = service.submit("analyze", request)
        second = service.submit("analyze", request)
        assert first == second
        assert len(service.job_ids()) == 1

    def test_failed_jobs_report_typed_errors(self, service):
        request = AnalysisRequest(models=(ModelRef(hash="0" * 64),),
                                  user=USER)
        status = self._wait(service,
                            service.submit("analyze", request))
        assert status.status == "error"
        assert status.error["code"] == "not_found"

    def test_unknown_op_and_job_id(self, service):
        with pytest.raises(RequestError, match="unknown operation"):
            service.submit("explode", SweepRequest(count=1))
        with pytest.raises(NotFoundError, match="unknown job id"):
            service.job_status("nope")

    def test_failed_jobs_can_be_retried(self, service):
        """An error record must not poison the job identity: once the
        missing model is uploaded, the identical resubmission runs."""
        request = None
        # First submission fails: the hash is not uploaded yet.
        system = build_surgery_system()
        from repro.engine import model_fingerprint
        model_hash = model_fingerprint(system)
        request = AnalysisRequest(
            models=(ModelRef(hash=model_hash),),
            user=UserSpec(agree=("MedicalService",)))
        job_id = service.submit("analyze", request)
        assert self._wait(service, job_id).status == "error"
        service.register_model(system)
        assert service.submit("analyze", request) == job_id
        assert self._wait(service, job_id).status == "done"

    def test_engine_errors_in_jobs_are_analysis_errors(self, service):
        """Bad kind params surface as the caller's fault, not an
        internal service failure."""
        model_hash = service.upload_model(MODEL)
        request = AnalysisRequest(
            models=(ModelRef(hash=model_hash),), user=USER,
            kind="population", params={"count": -1})
        status = self._wait(service,
                            service.submit("analyze", request))
        assert status.status == "error"
        assert status.error["code"] == "analysis_error"

    def test_path_refs_get_content_addressed_job_ids(self, service,
                                                     tmp_path):
        """Editing the file behind a path ref must produce a *new*
        job id — never a stale coalesced result."""
        path = tmp_path / "m.dsl"
        path.write_text(MODEL)
        request = AnalysisRequest(models=(ModelRef(path=str(path)),),
                                  user=USER)
        first = service.submit("analyze", request)
        assert self._wait(service, first).status == "done"
        path.write_text(MODEL.replace(
            "    allow Auditor read on Records\n", ""))
        second = service.submit("analyze", request)
        assert second != first
        assert self._wait(service, second).status == "done"

    def test_submit_after_close_is_refused(self):
        from repro.service import ServiceError
        service = AnalysisService(backend="serial")
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit("sweep", SweepRequest(count=1))


class TestDescribe:
    def test_health_snapshot(self, service):
        payload = service.describe()
        assert payload["status"] == "ok"
        assert "population" in payload["kinds"]
        assert payload["engine"] is None  # lazily built
        service.sweep(SweepRequest(count=1, personas=1))
        assert service.describe()["engine"] is not None

    def test_register_parsed_model(self, service):
        system = build_surgery_system()
        model_hash = service.register_model(system)
        text_hash = service.upload_model(to_dsl(system))
        assert model_hash == text_hash


class TestBoundedJobTable:
    """The async job table is capped: finished records are evicted
    oldest-first once the table exceeds ``max_jobs`` (ROADMAP "Service
    hardening" — a long-lived server must not grow per submission)."""

    def _wait(self, service, job_id, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status = service.job_status(job_id)
            if status.finished:
                return status
            time.sleep(0.01)
        raise AssertionError(f"job {job_id} never finished")

    def _requests(self, service, count):
        model_hash = service.upload_model(MODEL)
        return [
            AnalysisRequest(
                models=(ModelRef(hash=model_hash),),
                user=UserSpec(agree=("Consult",),
                              sensitivities=(("issue", level),)))
            for level in ("high", "medium", "low")[:count]
        ]

    def test_max_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="max_jobs"):
            AnalysisService(max_jobs=0)

    def test_oldest_finished_jobs_are_evicted(self):
        service = AnalysisService(backend="serial", max_jobs=2)
        try:
            ids = []
            for request in self._requests(service, 3):
                job_id = service.submit("analyze", request)
                assert self._wait(service, job_id).status == "done"
                ids.append(job_id)
            assert len(set(ids)) == 3          # distinct submissions
            assert len(service.job_ids()) == 2
            with pytest.raises(NotFoundError, match="unknown job id"):
                service.job_status(ids[0])      # oldest evicted
            assert service.job_status(ids[1]).status == "done"
            assert service.job_status(ids[2]).status == "done"
            assert service.describe()["max_jobs"] == 2
        finally:
            service.close()

    def test_evicted_job_can_be_resubmitted(self):
        """Eviction never loses results: the identical request gets a
        fresh record and is served from the result cache."""
        service = AnalysisService(backend="serial", max_jobs=1)
        try:
            requests = self._requests(service, 2)
            first = service.submit("analyze", requests[0])
            assert self._wait(service, first).status == "done"
            second = service.submit("analyze", requests[1])
            assert self._wait(service, second).status == "done"
            assert first not in service.job_ids()
            again = service.submit("analyze", requests[0])
            assert again == first               # same canonical identity
            assert self._wait(service, again).status == "done"
        finally:
            service.close()

    def test_default_cap_leaves_small_tables_alone(self, service):
        for request in self._requests(service, 3):
            self._wait(service, service.submit("analyze", request))
        assert len(service.job_ids()) == 3
