"""Unit tests for population-level risk analysis."""

import pytest

from repro.consent import UserProfile, simulate_users
from repro.core.risk import (
    PopulationAnalyzer,
    RiskLevel,
    analyse_population,
)


def _users(surgery_system):
    sensitive = UserProfile(
        "sensitive", agreed_services=["MedicalService"],
        sensitivities={"diagnosis": "high"}, default_sensitivity=0.2,
        acceptable_risk="low")
    relaxed = UserProfile(
        "relaxed", agreed_services=["MedicalService"],
        default_sensitivity=0.05, acceptable_risk="high")
    both_services = UserProfile(
        "trusting",
        agreed_services=["MedicalService", "MedicalResearchService"],
        sensitivities={"diagnosis": "high"}, acceptable_risk="medium")
    no_consent = UserProfile("offline")
    return [sensitive, relaxed, both_services, no_consent]


class TestPopulationAnalysis:
    def test_outcomes_per_user(self, surgery_system):
        report = analyse_population(surgery_system,
                                    _users(surgery_system))
        assert report.analysed_count == 3
        assert report.skipped == ("offline",)
        by_name = {o.user_name: o for o in report.outcomes}
        assert by_name["sensitive"].max_level is RiskLevel.MEDIUM
        assert by_name["relaxed"].max_level is RiskLevel.LOW
        # all actors allowed for the trusting user -> no risk events
        assert by_name["trusting"].max_level is RiskLevel.NONE

    def test_level_histogram(self, surgery_system):
        report = analyse_population(surgery_system,
                                    _users(surgery_system))
        histogram = report.level_histogram()
        assert histogram[RiskLevel.MEDIUM] == 1
        assert histogram[RiskLevel.LOW] == 1
        assert histogram[RiskLevel.NONE] == 1

    def test_unacceptable_fraction(self, surgery_system):
        report = analyse_population(surgery_system,
                                    _users(surgery_system))
        # only 'sensitive' (acceptable=low) has a MEDIUM event
        assert report.unacceptable_fraction == pytest.approx(1 / 3)

    def test_users_at_or_above(self, surgery_system):
        report = analyse_population(surgery_system,
                                    _users(surgery_system))
        assert [o.user_name for o in
                report.users_at_or_above("medium")] == ["sensitive"]

    def test_hot_spots_point_at_admin_ehr(self, surgery_system):
        report = analyse_population(surgery_system,
                                    _users(surgery_system))
        spots = report.hot_spots()
        assert spots[("Administrator", "diagnosis")] == 2

    def test_summary_table(self, surgery_system):
        report = analyse_population(surgery_system,
                                    _users(surgery_system))
        table = report.summary_table()
        assert "MEDIUM" in table and "users" in table

    def test_lts_cache_reused(self, surgery_system):
        analyzer = PopulationAnalyzer(surgery_system)
        users = _users(surgery_system)
        analyzer.analyse(users)
        # two distinct consent sets among analysed users
        assert len(analyzer._lts_cache) == 2

    def test_empty_population(self, surgery_system):
        report = analyse_population(surgery_system, [])
        assert report.analysed_count == 0
        assert report.unacceptable_fraction == 0.0

    def test_simulated_westin_population(self, surgery_system):
        schema = surgery_system.schemas["EHRSchema"]
        users = simulate_users(
            40, list(schema), list(surgery_system.services), seed=5)
        report = analyse_population(surgery_system, users)
        assert report.analysed_count + len(report.skipped) == 40
        # fundamentalists with partial consent should produce some risk
        assert report.users_at_or_above("low")
