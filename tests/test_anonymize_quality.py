"""Unit tests for l-diversity, suppression, utility and
re-identification metrics."""

import math

import pytest

from repro.anonymize import (
    GlobalRecodingAnonymizer,
    Interval,
    acceptable_utility,
    average_class_size,
    check_l_diversity,
    discernibility,
    diversity_by_class,
    field_utility,
    full_report,
    generalization_precision,
    is_l_diverse,
    journalist_risk,
    marketer_risk,
    prosecutor_risk,
    suppress_cells,
    suppress_small_classes,
    suppression_cost,
    utility_report,
)
from repro.anonymize.generalize import SUPPRESSED
from repro.datastore import make_records


def _records():
    return make_records([
        {"age": 1, "diag": "flu"},
        {"age": 1, "diag": "flu"},
        {"age": 2, "diag": "flu"},
        {"age": 2, "diag": "cold"},
    ])


class TestLDiversity:
    def test_distinct_l(self):
        report = check_l_diversity(_records(), ["age"], "diag")
        # class age=1 has one distinct value; class age=2 has two
        assert report.distinct_l == 1

    def test_is_l_diverse(self):
        assert is_l_diverse(_records(), ["age"], "diag", 1)
        assert not is_l_diverse(_records(), ["age"], "diag", 2)
        assert is_l_diverse([], ["age"], "diag", 5)

    def test_entropy_l(self):
        report = check_l_diversity(_records(), ["age"], "diag")
        # homogeneous class: entropy 0 -> exp(0) = 1
        assert math.isclose(report.entropy_l, 1.0)

    def test_entropy_uniform_class(self):
        records = make_records([
            {"age": 1, "diag": "a"}, {"age": 1, "diag": "b"},
        ])
        report = check_l_diversity(records, ["age"], "diag")
        assert math.isclose(report.entropy_l, 2.0)

    def test_diversity_by_class(self):
        by_class = diversity_by_class(_records(), ["age"], "diag")
        assert by_class[(1,)] == 1
        assert by_class[(2,)] == 2

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            is_l_diverse(_records(), ["age"], "diag", 0)

    def test_kanon_not_sufficient_for_value_protection(self):
        """The paper's motivating point: 2-anonymous but homogeneous."""
        records = make_records([
            {"age": 1, "diag": "flu"}, {"age": 1, "diag": "flu"},
        ])
        from repro.anonymize import check_k_anonymity
        assert check_k_anonymity(records, ["age"]) == 2
        assert not is_l_diverse(records, ["age"], "diag", 2)


class TestSuppression:
    def test_small_classes_suppressed(self):
        kept, suppressed = suppress_small_classes(_records(), ["age"], 2)
        assert len(kept) == 4
        kept2, suppressed2 = suppress_small_classes(
            _records()[:3], ["age"], 2)
        assert len(suppressed2) == 1

    def test_suppress_cells_keeps_columns(self):
        result = suppress_cells(_records(), ["diag"])
        assert all(r["diag"] == SUPPRESSED for r in result)
        assert all(r["age"] != SUPPRESSED for r in result)

    def test_suppression_cost(self):
        assert suppression_cost(10, 8) == pytest.approx(0.2)
        assert suppression_cost(0, 0) == 0.0
        with pytest.raises(ValueError):
            suppression_cost(5, 6)


class TestUtility:
    def test_mean_preserved_by_midpoints(self):
        original = make_records([{"w": 10}, {"w": 20}])
        released = make_records([
            {"w": Interval(5, 15)}, {"w": Interval(15, 25)},
        ])
        utility = field_utility(original, released, "w")
        assert utility.original_mean == 15
        assert utility.released_mean == 15
        assert utility.mean_error == 0
        assert utility.coverage == 1.0

    def test_suppressed_cells_reduce_coverage(self):
        original = make_records([{"w": 10}, {"w": 20}])
        released = make_records([{"w": SUPPRESSED}, {"w": 20}])
        utility = field_utility(original, released, "w")
        assert utility.coverage == 0.5

    def test_non_numeric_original_rejected(self):
        original = make_records([{"w": "heavy"}])
        with pytest.raises(ValueError, match="no numeric"):
            field_utility(original, original, "w")

    def test_utility_report_and_acceptance(self):
        original = make_records([{"w": 10}, {"w": 20}])
        released = make_records([
            {"w": Interval(5, 15)}, {"w": Interval(15, 25)},
        ])
        report = utility_report(original, released, ["w"])
        ok, reasons = acceptable_utility(report)
        assert ok and not reasons

    def test_acceptance_rejects_drifted_mean(self):
        original = make_records([{"w": 10}, {"w": 20}])
        released = make_records([{"w": 100}, {"w": 200}])
        ok, reasons = acceptable_utility(
            utility_report(original, released, ["w"]))
        assert not ok
        assert any("drifted" in reason for reason in reasons)

    def test_precision_metric(self, raw_physical, physical_hierarchies):
        result = GlobalRecodingAnonymizer(physical_hierarchies).anonymize(
            [r.mask(["name"]) for r in raw_physical], k=2)
        precision = generalization_precision(result,
                                             physical_hierarchies)
        max_levels = physical_hierarchies.max_levels()
        expected = 1 - (1 / max_levels["age"] +
                        1 / max_levels["height"]) / 2
        assert precision == pytest.approx(expected)

    def test_precision_requires_levels(self):
        from repro.anonymize import MondrianAnonymizer
        records = make_records([{"a": 1}, {"a": 2}])
        result = MondrianAnonymizer(["a"]).anonymize(records, k=2)
        with pytest.raises(ValueError, match="Mondrian"):
            generalization_precision(result, None)

    def test_discernibility(self, raw_physical, physical_hierarchies):
        result = GlobalRecodingAnonymizer(physical_hierarchies).anonymize(
            [r.mask(["name"]) for r in raw_physical], k=2)
        # three classes of 2: 3 * 4 = 12, no suppression
        assert discernibility(result) == 12

    def test_average_class_size(self, raw_physical,
                                physical_hierarchies):
        result = GlobalRecodingAnonymizer(physical_hierarchies).anonymize(
            [r.mask(["name"]) for r in raw_physical], k=2)
        assert average_class_size(result) == pytest.approx(2.0)


class TestReidentification:
    def test_prosecutor(self):
        records = make_records([
            {"a": 1}, {"a": 1}, {"a": 2},
        ])
        report = prosecutor_risk(records, ["a"])
        assert report.highest_risk == 1.0
        assert report.average_risk == pytest.approx((0.5 + 0.5 + 1) / 3)
        assert report.records_at_risk == 3  # all >= 0.5

    def test_prosecutor_threshold(self):
        records = make_records([{"a": 1}] * 4)
        report = prosecutor_risk(records, ["a"], threshold=0.5)
        assert report.records_at_risk == 0
        assert report.highest_risk == 0.25

    def test_journalist_uses_population(self):
        sample = make_records([{"a": 1}])
        population = make_records([{"a": 1}] * 10)
        report = journalist_risk(sample, population, ["a"])
        assert report.highest_risk == pytest.approx(0.1)

    def test_journalist_missing_population_class(self):
        sample = make_records([{"a": 99}])
        population = make_records([{"a": 1}])
        report = journalist_risk(sample, population, ["a"])
        assert report.highest_risk == 1.0

    def test_marketer(self):
        records = make_records([{"a": 1}, {"a": 1}, {"a": 2}])
        assert marketer_risk(records, ["a"]) == pytest.approx(2 / 3)

    def test_full_report(self):
        records = make_records([{"a": 1}, {"a": 1}])
        report = full_report(records, ["a"],
                             population=make_records([{"a": 1}] * 4))
        assert set(report) == {"prosecutor", "journalist", "marketer"}
        assert "prosecutor" in str(report["prosecutor"])

    def test_empty_inputs(self):
        assert prosecutor_risk([], ["a"]).highest_risk == 0.0
        assert marketer_risk([], ["a"]) == 0.0
