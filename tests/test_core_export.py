"""Unit tests for JSON export of LTSs and analysis results."""

import json

import pytest

from repro.core import GenerationOptions, ModelGenerator, generate_lts
from repro.core.export import (
    disclosure_report_to_dict,
    lts_to_dict,
    lts_to_json,
    pseudonymisation_risks_to_dict,
    transition_to_dict,
)
from repro.core.risk import (
    DisclosureRiskAnalyzer,
    PseudonymisationRiskAnalyzer,
)


class TestLtsExport:
    def test_shape(self, medical_lts):
        data = lts_to_dict(medical_lts)
        assert data["initial"] == medical_lts.initial.sid
        assert len(data["states"]) == len(medical_lts)
        assert len(data["transitions"]) == \
            len(medical_lts.transitions)
        assert data["stats"]["states"] == len(medical_lts)

    def test_transitions_reference_valid_states(self, medical_lts):
        data = lts_to_dict(medical_lts)
        sids = {s["sid"] for s in data["states"]}
        for transition in data["transitions"]:
            assert transition["source"] in sids
            assert transition["target"] in sids

    def test_variables_optional(self, medical_lts):
        with_vars = lts_to_dict(medical_lts, include_variables=True)
        without = lts_to_dict(medical_lts, include_variables=False)
        assert "true_variables" in with_vars["states"][1]
        assert "true_variables" not in without["states"][0]

    def test_json_round_trip(self, medical_lts):
        text = lts_to_json(medical_lts)
        data = json.loads(text)
        assert data["stats"]["transitions"] == 12

    def test_flow_key_serialized(self, medical_lts):
        data = lts_to_dict(medical_lts)
        flows = [t["flow"] for t in data["transitions"]]
        assert ["MedicalService", 1] in flows


class TestRiskExport:
    def test_disclosure_report(self, surgery_system, patient):
        report = DisclosureRiskAnalyzer(surgery_system).analyse(patient)
        data = disclosure_report_to_dict(report)
        assert data["max_level"] == "medium"
        assert data["non_allowed_actors"] == ["Administrator",
                                              "Researcher"]
        event = data["events"][0]
        assert event["actor"] == "Administrator"
        assert event["impact"] == pytest.approx(0.9)
        assert any(s["name"] == "accidental access"
                   for s in event["scenarios"])
        json.dumps(data)  # JSON-compatible

    def test_annotated_transition_export(self, surgery_system, patient):
        analyzer = DisclosureRiskAnalyzer(surgery_system)
        non_allowed = patient.non_allowed_actors(surgery_system)
        lts = ModelGenerator(surgery_system).generate(
            GenerationOptions(
                services=("MedicalService",),
                include_potential_reads=True,
                potential_read_actors=frozenset(non_allowed)))
        analyzer.analyse(patient, lts=lts)
        risky = lts.risky_transitions()
        exported = transition_to_dict(risky[0])
        assert "risk" in exported

    def test_pseudonymisation_risks(self, research_system,
                                    weight_policy, table1):
        lts = generate_lts(research_system)
        risks = PseudonymisationRiskAnalyzer(
            research_system, weight_policy,
            dataset=table1).annotate(lts, actors=["Researcher"])
        data = pseudonymisation_risks_to_dict(risks)
        assert sorted(d["violations"] for d in data) == [0, 2, 4]
        assert all(d["sensitive_field"] == "weight" for d in data)
        json.dumps(data)

    def test_unscored_risks_export(self, research_system,
                                   weight_policy):
        lts = generate_lts(research_system)
        risks = PseudonymisationRiskAnalyzer(
            research_system, weight_policy,
            dataset=None).annotate(lts, actors=["Researcher"])
        data = pseudonymisation_risks_to_dict(risks)
        assert all(d["violations"] is None for d in data)
        assert all("max_risk" not in d for d in data)
