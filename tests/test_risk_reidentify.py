"""Unit tests for LTS re-identification annotations (ARX integration)."""

import pytest

from repro.casestudies import (
    synthetic_physical_records,
    table1_records,
)
from repro.core import generate_lts
from repro.core.risk import (
    ReidentificationAnnotator,
    annotate_reidentification,
)
from repro.errors import AnalysisError


@pytest.fixture
def research_lts(research_system):
    return generate_lts(research_system)


class TestAnnotator:
    def test_findings_per_anon_read(self, research_lts, table1):
        findings = annotate_reidentification(research_lts, table1)
        # the research service has two anon-read flows; the dataflow
        # interleaving yields each read from two states
        assert findings
        assert all(f.actor == "Researcher" for f in findings)
        quasi_sets = {f.quasi_identifiers for f in findings}
        assert ("height", "weight") in quasi_sets
        assert ("age", "weight") in quasi_sets

    def test_prosecutor_risk_values(self, research_lts, table1):
        findings = annotate_reidentification(research_lts, table1)
        # weights are nearly unique -> reading (height, weight) or
        # (age, weight) makes most records singleton classes
        for finding in findings:
            assert finding.prosecutor.highest_risk == 1.0
            assert finding.marketer > 0.5

    def test_annotation_attached_to_transition(self, research_lts,
                                               table1):
        findings = annotate_reidentification(research_lts, table1)
        for finding in findings:
            assert finding.transition.risk is not None
            assert "prosecutor" in finding.transition.risk.context

    def test_existing_annotation_extended_not_replaced(
            self, research_system, research_lts, table1, weight_policy):
        from repro.core.risk import PseudonymisationRiskAnalyzer
        PseudonymisationRiskAnalyzer(
            research_system, weight_policy,
            dataset=table1).annotate(research_lts,
                                     actors=["Researcher"])
        findings = annotate_reidentification(research_lts, table1)
        assert findings
        # value-risk annotations on risk transitions survive
        risky = [t for t in research_lts.transitions
                 if t.risk is not None and t.risk.value_risk is not None]
        assert risky

    def test_journalist_model_with_population(self, research_lts):
        sample = table1_records()
        population = [r.mask(["name"])
                      for r in synthetic_physical_records(500, seed=3)]
        findings = annotate_reidentification(
            research_lts, sample, population=population)
        for finding in findings:
            assert finding.journalist is not None
            assert finding.journalist.highest_risk <= \
                finding.prosecutor.highest_risk + 1e-9
            assert "journalist" in finding.describe()

    def test_actor_filter(self, research_lts, table1):
        assert annotate_reidentification(
            research_lts, table1, actors=["DataManager"]) == []

    def test_exceeds_threshold(self, research_lts, table1):
        findings = annotate_reidentification(research_lts, table1)
        assert all(f.exceeds(0.9) for f in findings)
        # but a coarse-only release would not: use a dataset where all
        # quasi values collide
        from repro.datastore import make_records
        flat = make_records([{"age": 1, "height": 1, "weight": 1}] * 10)
        flat_findings = annotate_reidentification(research_lts, flat)
        # every class has size 10 -> prosecutor 0.1
        assert flat_findings[-1].prosecutor.highest_risk == \
            pytest.approx(0.1)

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError, match="non-empty"):
            ReidentificationAnnotator([])

    def test_field_map_missing_entry(self, research_lts, table1):
        annotator = ReidentificationAnnotator(
            table1, record_field_map={"weight_anon": "weight"})
        with pytest.raises(AnalysisError, match="no entry"):
            annotator.annotate(research_lts)
