"""Unit tests for the shared helpers in repro._util."""

import pytest

from repro._util import (
    ascii_table,
    check_mapping_keys,
    fmt_fields,
    fmt_fraction,
    freeze_fields,
    unique_ordered,
)


class TestUniqueOrdered:
    def test_preserves_first_seen_order(self):
        assert unique_ordered([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_empty(self):
        assert unique_ordered([]) == []

    def test_strings(self):
        assert unique_ordered(["b", "a", "b"]) == ["b", "a"]


class TestFreezeFields:
    def test_returns_tuple(self):
        assert freeze_fields(["a", "b", "a"]) == ("a", "b")

    def test_accepts_generator(self):
        assert freeze_fields(c for c in "aba") == ("a", "b")


class TestFormatting:
    def test_fraction(self):
        assert fmt_fraction(2, 4) == "2/4"

    def test_fields(self):
        assert fmt_fields(("a", "b")) == "{a, b}"

    def test_fields_empty(self):
        assert fmt_fields(()) == "{}"


class TestAsciiTable:
    def test_basic_shape(self):
        text = ascii_table(("x", "y"), [(1, 2), (30, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "x" in lines[0] and "y" in lines[0]
        assert "30" in lines[3]

    def test_footer_separated_by_rule(self):
        text = ascii_table(("x",), [(1,)], footer=("total",))
        lines = text.splitlines()
        assert lines[-2].startswith("-")
        assert "total" in lines[-1]

    def test_column_width_accommodates_header(self):
        text = ascii_table(("long_header",), [("x",)])
        assert "long_header" in text.splitlines()[0]


class TestCheckMappingKeys:
    def test_accepts_subset(self):
        check_mapping_keys({"a": 1}, ["a", "b"], "ctx")

    def test_rejects_extra(self):
        with pytest.raises(ValueError, match="ctx"):
            check_mapping_keys({"z": 1}, ["a"], "ctx")
