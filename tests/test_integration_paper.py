"""Integration tests: the paper's evaluation, end to end.

Every check here corresponds to a concrete claim in section IV of the
paper; the benches print the same artefacts, these tests assert them.
"""

import pytest

from repro.anonymize import Pseudonymizer, check_k_anonymity
from repro.casestudies import (
    MEDICAL_SERVICE,
    RESEARCH_SERVICE,
    build_research_system,
    build_surgery_system,
    surgery_patient,
    table1_hierarchies,
    table1_records,
    tighten_administrator_policy,
)
from repro.core import (
    ActionType,
    GenerationOptions,
    TransitionKind,
    generate_lts,
)
from repro.core.reachability import reachable_states, terminal_states
from repro.core.risk import (
    DisclosureRiskAnalyzer,
    PseudonymisationRiskAnalyzer,
    RiskLevel,
    ValueRiskPolicy,
    risk_sweep,
)
from repro.dfd import parse_dsl, to_dsl
from repro.monitor import PrivacyMonitor, ServiceRuntime


class TestFig3MedicalServiceLts:
    """Fig. 3: the Medical Service LTS is a finite DAG of privacy
    actions generated automatically from the DFD."""

    def test_structure(self, medical_lts):
        stats = medical_lts.stats()
        assert stats["states"] == 10
        assert stats["transitions"] == 12
        assert stats["actions"] == {"collect": 6, "create": 3, "read": 3}

    def test_is_dag(self, medical_lts):
        # fired-flow sets grow along every transition -> acyclic
        for transition in medical_lts.transitions:
            source_fired = medical_lts.state(transition.source) \
                .info["fired"]
            target_fired = medical_lts.state(transition.target) \
                .info["fired"]
            assert source_fired < target_fired

    def test_all_states_reachable(self, medical_lts):
        assert len(reachable_states(medical_lts)) == len(medical_lts)

    def test_single_terminal_state(self, medical_lts):
        finals = terminal_states(medical_lts)
        assert len(finals) == 1
        vector = finals[0].vector
        # service outcome: doctor knows everything it recorded,
        # nurse knows name+treatment, admin could read the EHR
        assert vector.has("Doctor", "diagnosis")
        assert vector.has("Nurse", "treatment")
        assert vector.could("Administrator", "diagnosis")
        assert not vector.has("Administrator", "diagnosis")


class TestCaseStudyADisclosure:
    """IV.A: Administrator read on EHR -> MEDIUM; after ACL fix -> LOW."""

    def test_before_and_after(self):
        patient = surgery_patient()
        before = DisclosureRiskAnalyzer(
            build_surgery_system()).analyse(patient)
        assert before.max_level is RiskLevel.MEDIUM
        assert {e.actor for e in before.events} == {"Administrator"}

        fixed = tighten_administrator_policy(build_surgery_system())
        after = DisclosureRiskAnalyzer(fixed).analyse(patient)
        assert after.max_level is RiskLevel.LOW

    def test_no_formal_model_drawn_by_hand(self):
        """"There is no need to explicitly draw a formal state model"
        — the DSL text alone is enough to run the analysis."""
        system = build_surgery_system()
        reparsed = parse_dsl(to_dsl(system))
        report = DisclosureRiskAnalyzer(reparsed).analyse(
            surgery_patient())
        assert report.max_level is RiskLevel.MEDIUM


class TestTableI:
    """IV.B Table I: exact fractions and violation counts."""

    def test_full_pipeline_from_raw_records(self, raw_physical,
                                            weight_policy):
        from repro.datastore import RuntimeDatastore
        from repro.schema import DataSchema, Field
        schema = DataSchema("P", [Field("name"), Field("age"),
                                  Field("height"), Field("weight")])
        store = RuntimeDatastore("HealthRecords", schema)
        store.load(raw_physical)
        run = Pseudonymizer(
            quasi_identifiers=("age", "height"),
            identifiers=("name",),
            hierarchies=table1_hierarchies(),
        ).run(store, k=2)
        # the release is 2-anonymous
        released = [r.renamed({"age_anon": "age",
                               "height_anon": "height",
                               "weight_anon": "weight"})
                    for r in run.released]
        assert check_k_anonymity(released, ["age", "height"]) == 2
        results = risk_sweep(
            released, [["height"], ["age"], ["age", "height"]],
            weight_policy)
        assert [r.violations for r in results] == [0, 2, 4]

    def test_published_records_directly(self, table1, weight_policy):
        results = risk_sweep(
            table1, [["height"], ["age"], ["age", "height"]],
            weight_policy)
        assert [r.violations for r in results] == [0, 2, 4]
        fractions = [[rr.fraction for rr in r.per_record]
                     for r in results]
        assert fractions[0] == ["2/4", "2/4", "2/4", "2/4", "1/2", "1/2"]
        assert fractions[1] == ["2/2", "2/2", "3/4", "3/4", "1/4", "3/4"]
        assert fractions[2] == ["2/2", "2/2", "2/2", "2/2", "1/2", "1/2"]


class TestFig4PseudonymisationLts:
    """IV.B Fig. 4: dotted risk transitions scored 0 / 2 / 4."""

    def test_risk_transitions(self, research_system, weight_policy,
                              table1):
        lts = generate_lts(research_system)
        analyzer = PseudonymisationRiskAnalyzer(
            research_system, weight_policy, dataset=table1)
        risks = analyzer.annotate(lts, actors=["Researcher"])
        assert sorted(r.violations for r in risks) == [0, 2, 4]
        assert all(r.transition.kind is TransitionKind.RISK
                   for r in risks)

    def test_dot_output_has_dotted_lines(self, research_system,
                                         weight_policy, table1):
        from repro.viz import lts_to_dot
        lts = generate_lts(research_system)
        PseudonymisationRiskAnalyzer(
            research_system, weight_policy, dataset=table1
        ).annotate(lts, actors=["Researcher"])
        assert "style=dotted" in lts_to_dot(lts)


class TestRuntimeAgreesWithModel:
    """The runtime execution of a service lands exactly on the states
    the generator predicts (design-time model == runtime behaviour)."""

    def test_medical_session_tracks_to_terminal(self):
        system = build_surgery_system()
        lts = generate_lts(system, GenerationOptions(
            services=(MEDICAL_SERVICE,)))
        monitor = PrivacyMonitor(lts, strict=True)
        runtime = ServiceRuntime(system, monitor=monitor)
        runtime.run_service(MEDICAL_SERVICE, {
            "name": "Ada", "dob": "1980-01-01",
            "medical_issues": "cough"})
        finals = terminal_states(lts)
        assert monitor.current_state.sid == finals[0].sid

    def test_both_services_in_sequence(self):
        system = build_surgery_system()
        lts = generate_lts(system)
        monitor = PrivacyMonitor(lts, strict=True)
        runtime = ServiceRuntime(system, monitor=monitor)
        runtime.run_service(MEDICAL_SERVICE, {
            "name": "Ada", "dob": "1980-01-01",
            "medical_issues": "cough"})
        runtime.run_service(RESEARCH_SERVICE, {})
        vector = monitor.current_state.vector
        assert vector.has("Researcher", "diagnosis_anon")
        assert not vector.has("Researcher", "diagnosis")

    def test_runtime_never_diverges_from_dataflow_lts(self):
        system = build_research_system()
        lts = generate_lts(system)
        monitor = PrivacyMonitor(lts, strict=True)
        runtime = ServiceRuntime(system, monitor=monitor)
        runtime.run_service("HealthCheckService", {
            "name": "e", "age": 30, "height": 180, "weight": 80})
        runtime.run_service("ResearchService", {})
        assert not monitor.alerts
