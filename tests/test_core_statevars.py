"""Unit tests for privacy state variables and bit vectors."""

import pytest

from repro.core import PrivacyVector, VarKind, VariableRegistry
from repro.errors import ModelError


@pytest.fixture
def registry():
    return VariableRegistry(["A", "B"], ["x", "y", "z"])


class TestVariableRegistry:
    def test_size_is_two_per_pair(self, registry):
        assert len(registry) == 2 * 2 * 3

    def test_paper_example_is_sixty(self):
        actors = ["Receptionist", "Doctor", "Nurse", "Administrator",
                  "Researcher"]
        fields = ["name", "dob", "appointment", "medical_issues",
                  "diagnosis", "treatment"]
        assert len(VariableRegistry(actors, fields)) == 60

    def test_bits_are_unique_and_dense(self, registry):
        bits = {
            registry.bit(kind, actor, field)
            for kind in VarKind
            for actor in registry.actors
            for field in registry.fields
        }
        assert bits == set(range(len(registry)))

    def test_variable_at_inverts_bit(self, registry):
        bit = registry.bit(VarKind.COULD, "B", "y")
        variable = registry.variable_at(bit)
        assert (variable.kind, variable.actor, variable.field) == \
            (VarKind.COULD, "B", "y")

    def test_unknown_variable_rejected(self, registry):
        with pytest.raises(ModelError, match="unknown state variable"):
            registry.bit(VarKind.HAS, "Z", "x")

    def test_variable_at_out_of_range(self, registry):
        with pytest.raises(ModelError, match="out of range"):
            registry.variable_at(len(registry))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            VariableRegistry(["A", "A"], ["x"])
        with pytest.raises(ModelError):
            VariableRegistry(["A"], ["x", "x"])

    def test_label_format(self, registry):
        variable = registry.variable_at(
            registry.bit(VarKind.HAS, "A", "x"))
        assert variable.label() == "has(A, x)"


class TestPrivacyVector:
    def test_empty_vector_all_false(self, registry):
        vector = registry.empty_vector()
        assert vector.count_true() == 0
        assert not vector.has("A", "x")
        assert not vector.could("A", "x")

    def test_with_true_sets_only_that_bit(self, registry):
        vector = registry.empty_vector().with_true(VarKind.HAS, "A", "x")
        assert vector.has("A", "x")
        assert not vector.could("A", "x")
        assert not vector.has("B", "x")
        assert vector.count_true() == 1

    def test_with_false_clears(self, registry):
        vector = (registry.empty_vector()
                  .with_true(VarKind.HAS, "A", "x")
                  .with_false(VarKind.HAS, "A", "x"))
        assert vector.count_true() == 0

    def test_vectors_immutable(self, registry):
        vector = registry.empty_vector()
        vector.with_true(VarKind.HAS, "A", "x")
        assert vector.count_true() == 0

    def test_union(self, registry):
        left = registry.empty_vector().with_true(VarKind.HAS, "A", "x")
        right = registry.empty_vector().with_true(VarKind.COULD, "B", "y")
        union = left.union(right)
        assert union.has("A", "x") and union.could("B", "y")

    def test_newly_true_versus(self, registry):
        old = registry.empty_vector().with_true(VarKind.HAS, "A", "x")
        new = old.with_true(VarKind.COULD, "B", "y")
        delta = new.newly_true_versus(old)
        assert [v.label() for v in delta] == ["could(B, y)"]

    def test_true_variables_sorted_by_bit(self, registry):
        vector = (registry.empty_vector()
                  .with_true(VarKind.HAS, "B", "z")
                  .with_true(VarKind.HAS, "A", "x"))
        labels = [v.label() for v in vector.true_variables()]
        assert labels == ["has(A, x)", "has(B, z)"]

    def test_fields_known_by(self, registry):
        vector = (registry.empty_vector()
                  .with_true(VarKind.HAS, "A", "x")
                  .with_true(VarKind.COULD, "A", "y"))
        assert vector.fields_known_by("A") == ("x", "y")
        assert vector.fields_known_by("A", include_could=False) == ("x",)

    def test_table_has_row_per_pair(self, registry):
        rows = registry.empty_vector().table()
        assert len(rows) == 6  # 2 actors x 3 fields

    def test_cross_registry_comparison_rejected(self, registry):
        other = VariableRegistry(["A", "B"], ["x", "y", "z"])
        with pytest.raises(ModelError, match="registries"):
            registry.empty_vector().union(other.empty_vector())

    def test_equality_and_hash(self, registry):
        first = registry.empty_vector().with_true(VarKind.HAS, "A", "x")
        second = registry.empty_vector().with_true(VarKind.HAS, "A", "x")
        assert first == second
        assert hash(first) == hash(second)

    def test_mask_bounds_checked(self, registry):
        with pytest.raises(ModelError):
            PrivacyVector(registry, 1 << len(registry))
        with pytest.raises(ModelError):
            PrivacyVector(registry, -1)
