"""Property-based tests (hypothesis) on core data structures and
invariants: bit-vector algebra, k-anonymity post-conditions, value-risk
bounds, interval generalization, parser round-trips, LTS generation
invariants, and the bitmask-generator equivalence guard (random
systems against a frozenset reference implementation, fixed systems
against golden snapshots captured before the rewrite)."""

import json
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymize import (
    GlobalRecodingAnonymizer,
    HierarchySet,
    MondrianAnonymizer,
    NumericHierarchy,
    check_k_anonymity,
    equivalence_classes,
)
from repro.core import VarKind, VariableRegistry, generate_lts
from repro.core.reachability import reachable_states
from repro.core.risk import ValueRiskPolicy, value_risk
from repro.datastore import Record, make_records
from repro.dfd import SystemBuilder, parse_dsl, system_to_dict, to_dsl

names = st.text(alphabet=string.ascii_lowercase, min_size=1,
                max_size=6)


# -- bit-vector algebra -------------------------------------------------------

@st.composite
def registry_and_vars(draw):
    actors = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    fields = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    registry = VariableRegistry(actors, fields)
    chosen = draw(st.lists(
        st.tuples(
            st.sampled_from([VarKind.HAS, VarKind.COULD]),
            st.sampled_from(actors),
            st.sampled_from(fields),
        ),
        max_size=8,
    ))
    return registry, chosen


@given(registry_and_vars())
def test_vector_set_then_get(data):
    registry, chosen = data
    vector = registry.empty_vector()
    for kind, actor, field in chosen:
        vector = vector.with_true(kind, actor, field)
    for kind, actor, field in chosen:
        assert vector.get(kind, actor, field)
    assert vector.count_true() == len({
        (k, a, f) for k, a, f in chosen})


@given(registry_and_vars())
def test_vector_set_clear_roundtrip(data):
    registry, chosen = data
    vector = registry.empty_vector()
    for kind, actor, field in chosen:
        vector = vector.with_true(kind, actor, field)
    for kind, actor, field in chosen:
        vector = vector.with_false(kind, actor, field)
    assert vector.count_true() == 0


@given(registry_and_vars(), registry_and_vars())
def test_union_is_monotone(left_data, right_data):
    registry, chosen = left_data
    vector = registry.empty_vector()
    other = registry.empty_vector()
    for kind, actor, field in chosen:
        vector = vector.with_true(kind, actor, field)
    union = vector.union(other)
    assert union == vector  # union with empty is identity
    assert vector.union(vector) == vector  # idempotent


# -- k-anonymity post-conditions ----------------------------------------------

ages = st.integers(min_value=0, max_value=99)
heights = st.integers(min_value=140, max_value=210)


@st.composite
def physical_rows(draw):
    count = draw(st.integers(min_value=4, max_value=24))
    return [
        {"age": draw(ages), "height": draw(heights)}
        for _ in range(count)
    ]


@given(physical_rows(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_global_recoding_postcondition(rows, k):
    records = make_records(rows)
    if k > len(records):
        return
    hierarchies = HierarchySet([
        NumericHierarchy("age", widths=[10, 20, 40, 80, 160]),
        NumericHierarchy("height", widths=[10, 20, 40, 80, 160]),
    ])
    result = GlobalRecodingAnonymizer(hierarchies).anonymize(records, k)
    # every equivalence class of the release has size >= k
    if result.records:
        assert check_k_anonymity(
            result.records, ("age", "height")) >= k
    # nothing lost: released + suppressed == input
    assert len(result.records) + len(result.suppressed) == len(records)


@given(physical_rows(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_mondrian_postcondition(rows, k):
    records = make_records(rows)
    if k > len(records):
        return
    result = MondrianAnonymizer(["age", "height"]).anonymize(records, k)
    assert check_k_anonymity(result.records, ("age", "height")) >= k
    assert len(result.records) == len(records)  # Mondrian suppresses none


# -- value-risk bounds ------------------------------------------------------------

@st.composite
def released_rows(draw):
    count = draw(st.integers(min_value=1, max_value=20))
    bins = ["a", "b", "c"]
    return [
        {"qi": draw(st.sampled_from(bins)),
         "weight": draw(st.integers(min_value=50, max_value=150))}
        for _ in range(count)
    ]


@given(released_rows(),
       st.floats(min_value=0, max_value=20),
       st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_value_risk_bounds(rows, closeness, confidence):
    records = make_records(rows)
    policy = ValueRiskPolicy("weight", closeness=closeness,
                             confidence=confidence)
    result = value_risk(records, ["qi"], policy)
    classes = equivalence_classes(records, ["qi"])
    for record_risk in result.per_record:
        # a record always matches itself -> risk >= 1/|class| and > 0
        size = len(classes[record_risk.record.key_on(("qi",))])
        assert record_risk.set_size == size
        assert 1 <= record_risk.frequency <= size
        assert 0 < record_risk.risk <= 1
        assert record_risk.violated == (record_risk.risk >= confidence)
    assert 0 <= result.violations <= len(records)


@given(released_rows())
@settings(max_examples=30, deadline=None)
def test_value_risk_monotone_in_closeness(rows):
    records = make_records(rows)
    tight = value_risk(records, ["qi"],
                       ValueRiskPolicy("weight", closeness=0.0))
    loose = value_risk(records, ["qi"],
                       ValueRiskPolicy("weight", closeness=50.0))
    for narrow, wide in zip(tight.per_record, loose.per_record):
        assert narrow.frequency <= wide.frequency


@given(released_rows())
@settings(max_examples=30, deadline=None)
def test_value_risk_more_fields_never_larger_sets(rows):
    """Reading more quasi-identifiers partitions the data more finely."""
    for row in rows:
        row["qi2"] = row["weight"] % 3
    records = make_records(rows)
    policy = ValueRiskPolicy("weight", closeness=5.0)
    coarse = value_risk(records, ["qi"], policy)
    fine = value_risk(records, ["qi", "qi2"], policy)
    for one, two in zip(coarse.per_record, fine.per_record):
        assert two.set_size <= one.set_size


# -- interval generalization ----------------------------------------------------

@given(st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=1, max_value=50))
def test_numeric_generalization_contains_value(value, width):
    hierarchy = NumericHierarchy("x", widths=[width])
    interval = hierarchy.generalize(value, 1)
    assert interval.contains(value)
    assert interval.width == width


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=30),
       st.integers(min_value=1, max_value=20))
def test_same_bin_means_equal_intervals(values, width):
    hierarchy = NumericHierarchy("x", widths=[width])
    for left in values:
        for right in values:
            same_bin = (left // width) == (right // width)
            equal = hierarchy.generalize(left, 1) == \
                hierarchy.generalize(right, 1)
            assert same_bin == equal


# -- record algebra ---------------------------------------------------------------

@given(st.dictionaries(names, st.integers(), min_size=1, max_size=6))
def test_record_mask_project_partition(values):
    record = Record(values)
    fields = sorted(values)
    half = fields[: len(fields) // 2]
    masked = record.mask(half)
    projected = record.project(half)
    assert set(masked) | set(projected) == set(record)
    assert not set(masked) & set(projected)


# -- DSL round-trip over generated models -------------------------------------------

@st.composite
def small_systems(draw):
    field_names = draw(st.lists(names, min_size=1, max_size=3,
                                unique=True))
    actor_names = draw(st.lists(
        names.map(lambda n: "Actor_" + n), min_size=2, max_size=3,
        unique=True))
    builder = SystemBuilder("gen")
    builder.schema("S", list(field_names))
    for actor in actor_names:
        builder.actor(actor)
    builder.datastore("D", "S")
    builder.service("svc")
    builder.flow(1, "User", actor_names[0], [field_names[0]],
                 purpose=draw(names))
    builder.flow(2, actor_names[0], "D", [field_names[0]])
    builder.flow(3, "D", actor_names[1], [field_names[0]])
    builder.allow(actor_names[0], ["read", "create"], "D")
    builder.allow(actor_names[1], "read", "D", [field_names[0]])
    return builder.build(strict=False)


@given(small_systems())
@settings(max_examples=30, deadline=None)
def test_dsl_round_trip_property(system):
    reparsed = parse_dsl(to_dsl(system), validate=False)
    assert system_to_dict(reparsed) == system_to_dict(system)


# -- t-closeness bounds ---------------------------------------------------------------

@given(released_rows())
@settings(max_examples=40, deadline=None)
def test_t_closeness_bounds(rows):
    from repro.anonymize import check_t_closeness
    records = make_records(rows)
    report = check_t_closeness(records, ["qi"], "weight")
    assert 0.0 <= report.t_value <= 1.0
    for _, distance in report.class_distances:
        assert 0.0 <= distance <= 1.0 + 1e-9


@given(released_rows())
@settings(max_examples=40, deadline=None)
def test_single_class_release_is_zero_close(rows):
    """With no quasi-identifier read, every record is in one class
    whose distribution IS the global distribution."""
    from repro.anonymize import check_t_closeness
    records = make_records(rows)
    report = check_t_closeness(records, [], "weight")
    assert report.t_value == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1), min_size=1,
                max_size=10))
@settings(max_examples=60, deadline=None)
def test_emd_identity(weights):
    from repro.anonymize import ordered_emd, total_variation
    total = sum(weights) or 1.0
    distribution = [w / total for w in weights]
    assert ordered_emd(distribution, distribution) == \
        pytest.approx(0.0)
    assert total_variation(distribution, distribution) == \
        pytest.approx(0.0)


# -- consent monotonicity ------------------------------------------------------------

@given(st.lists(st.sampled_from(
    ["MedicalService", "MedicalResearchService"]),
    min_size=1, max_size=2, unique=True))
@settings(max_examples=10, deadline=None)
def test_more_consent_never_more_non_allowed(agreed):
    from repro.casestudies import build_surgery_system
    system = build_surgery_system()
    fewer = system.non_allowed_actors(agreed)
    everything = system.non_allowed_actors(
        ["MedicalService", "MedicalResearchService"])
    assert everything <= fewer


# -- bitmask generator vs. the frozenset reference ----------------------------
#
# The generation core compiles configurations to packed integers; this
# oracle is a literal port of the historical frozenset implementation
# (PR-5's "before" state). The compiled generator must reproduce its
# states, vectors, transitions *and discovery order* exactly, on
# arbitrary systems and option combinations.

from repro.core import GenerationOptions, VariableRegistry as _Registry
from repro.core.actions import ActionType as _Action
from repro.core.statevars import VarKind as _Kind
from repro.dfd.model import NodeKind as _Node
from repro.schema import anon_name as _anon_name


def _reference_lts(system, options):
    """(states, transitions) of the pre-bitmask generator: states as
    ``(vector_mask, holdings, contents, fired)`` in discovery order,
    transitions as ``(source, target, kind, label...)`` in add order."""
    from collections import deque
    registry = _Registry(system.actor_names(), system.personal_fields())

    def could_mask(contents):
        mask = 0
        for store_name, field_name in contents:
            for actor in system.policy.readers(store_name, field_name):
                if actor in system.actors:
                    mask |= registry.mask_of(_Kind.COULD, actor,
                                             field_name)
        return mask

    def label_row(action, fields, actor, source, target, schema=None,
                  purpose=None, flow_key=None):
        return (action.value, tuple(fields), actor, source, target,
                schema, purpose, flow_key)

    def flow_ready(cfg, flow):
        _, holdings, contents, _ = cfg
        kind = system.node_kind(flow.source)
        if kind is _Node.USER:
            return True
        if kind is _Node.ACTOR:
            originated = set(system.actors[flow.source].originates)
            return all(f in originated or (flow.source, f) in holdings
                       for f in flow.fields)
        return all((flow.source, f) in contents for f in flow.fields)

    def materialize_originated(has_mask, holdings, flow):
        originated = set(system.actors[flow.source].originates)
        fresh = [f for f in flow.fields
                 if f in originated and (flow.source, f) not in holdings]
        if fresh:
            holdings = holdings | {(flow.source, f) for f in fresh}
            for f in fresh:
                has_mask |= registry.mask_of(_Kind.HAS, flow.source, f)
        return has_mask, holdings

    def apply_flow(cfg, flow):
        has_mask, holdings, contents, fired = cfg
        fired = fired | {flow.key}
        source_kind = system.node_kind(flow.source)
        target_kind = system.node_kind(flow.target)
        purpose = flow.purpose or None
        if source_kind is _Node.USER and target_kind is _Node.ACTOR:
            for f in flow.fields:
                has_mask |= registry.mask_of(_Kind.HAS, flow.target, f)
            holdings = holdings | {(flow.target, f)
                                   for f in flow.fields}
            label = label_row(_Action.COLLECT, flow.fields, flow.target,
                              flow.source, flow.target,
                              purpose=purpose, flow_key=flow.key)
        elif source_kind is _Node.ACTOR and target_kind is _Node.ACTOR:
            has_mask, holdings = materialize_originated(
                has_mask, holdings, flow)
            for f in flow.fields:
                has_mask |= registry.mask_of(_Kind.HAS, flow.target, f)
            holdings = holdings | {(flow.target, f)
                                   for f in flow.fields}
            label = label_row(_Action.DISCLOSE, flow.fields,
                              flow.source, flow.source, flow.target,
                              purpose=purpose, flow_key=flow.key)
        elif source_kind is _Node.ACTOR and target_kind is _Node.USER:
            has_mask, holdings = materialize_originated(
                has_mask, holdings, flow)
            label = label_row(_Action.DISCLOSE, flow.fields,
                              flow.source, flow.source, flow.target,
                              purpose=purpose, flow_key=flow.key)
        elif source_kind is _Node.ACTOR and \
                target_kind is _Node.DATASTORE:
            store = system.datastore(flow.target)
            has_mask, holdings = materialize_originated(
                has_mask, holdings, flow)
            stored = [
                _anon_name(f) if store.anonymised and
                _anon_name(f) in store.schema else f
                for f in flow.fields
            ]
            contents = contents | {(store.name, f) for f in stored}
            action = _Action.ANON if store.anonymised \
                else _Action.CREATE
            label = label_row(action, stored, flow.source, flow.source,
                              flow.target, schema=store.schema.name,
                              purpose=purpose, flow_key=flow.key)
        else:  # datastore -> actor
            store = system.datastore(flow.source)
            for f in flow.fields:
                has_mask |= registry.mask_of(_Kind.HAS, flow.target, f)
            holdings = holdings | {(flow.target, f)
                                   for f in flow.fields}
            label = label_row(_Action.READ, flow.fields, flow.target,
                              flow.source, flow.target,
                              schema=store.schema.name,
                              purpose=purpose, flow_key=flow.key)
        return label, "flow", (has_mask, holdings, contents, fired)

    def successors(cfg, flows):
        has_mask, holdings, contents, fired = cfg
        enabled = []
        next_order = {}
        if options.ordering == "sequence":
            for flow in flows:
                if flow.key in fired:
                    continue
                current = next_order.get(flow.service)
                if current is None or flow.order < current:
                    next_order[flow.service] = flow.order
        for flow in flows:
            if flow.key in fired:
                continue
            if options.ordering == "sequence" and \
                    flow.order != next_order[flow.service]:
                continue
            if flow_ready(cfg, flow):
                enabled.append(flow)
        for flow in enabled:
            yield apply_flow(cfg, flow)
        by_store = {}
        for store_name, field_name in contents:
            by_store.setdefault(store_name, []).append(field_name)
        if options.include_potential_reads:
            actors = options.potential_read_actors \
                if options.potential_read_actors is not None \
                else frozenset(system.actors)
            for actor in sorted(actors):
                for store_name in sorted(by_store):
                    readable = sorted(
                        f for f in by_store[store_name]
                        if system.policy.can_read(actor, store_name, f))
                    if not readable:
                        continue
                    new_has = has_mask
                    new_holdings = set(holdings)
                    for f in readable:
                        new_has |= registry.mask_of(_Kind.HAS, actor, f)
                        new_holdings.add((actor, f))
                    successor = (new_has, frozenset(new_holdings),
                                 contents, fired)
                    if successor == cfg:
                        continue
                    store = system.datastore(store_name)
                    yield (label_row(_Action.READ, readable, actor,
                                     store_name, actor,
                                     schema=store.schema.name),
                           "potential", successor)
        if options.include_deletes:
            actors = options.delete_actors \
                if options.delete_actors is not None \
                else frozenset(system.actors)
            for actor in sorted(actors):
                for store_name in sorted(by_store):
                    deletable = sorted(
                        f for f in by_store[store_name]
                        if system.policy.can_delete(actor, store_name,
                                                    f))
                    if not deletable:
                        continue
                    new_contents = frozenset(
                        entry for entry in contents
                        if not (entry[0] == store_name and
                                entry[1] in deletable))
                    successor = (has_mask, holdings, new_contents,
                                 fired)
                    if successor == cfg:
                        continue
                    store = system.datastore(store_name)
                    yield (label_row(_Action.DELETE, deletable, actor,
                                     actor, store_name,
                                     schema=store.schema.name),
                           "potential", successor)

    names = options.services if options.services is not None \
        else tuple(system.services)
    flows = tuple(f for name in names
                  for f in system.service(name).flows)
    contents = []
    for store_name, fields in options.initial_store_contents.items():
        for field_name in fields:
            contents.append((store_name, field_name))
    initial = (0, frozenset(), frozenset(contents), frozenset())
    sids = {initial: 0}
    state_rows = [initial]
    transitions = []
    queue = deque([initial])
    while queue:
        cfg = queue.popleft()
        sid = sids[cfg]
        for label, kind, successor in successors(cfg, flows):
            target = sids.get(successor)
            if target is None:
                target = len(state_rows)
                sids[successor] = target
                state_rows.append(successor)
                queue.append(successor)
            transitions.append((sid, target, kind) + label)
    states = [
        (has_mask | could_mask(contents), holdings, contents, fired)
        for has_mask, holdings, contents, fired in state_rows
    ]
    return states, transitions


def _compiled_rows(lts):
    states = [
        (state.vector.mask, state.key.holdings, state.key.contents,
         state.key.fired)
        for state in lts.states
    ]
    transitions = [
        (t.source, t.target, t.kind.value, t.label.action.value,
         tuple(t.label.fields), t.label.actor, t.label.source,
         t.label.target, t.label.schema, t.label.purpose,
         t.label.flow_key)
        for t in lts.transitions
    ]
    return states, transitions


@st.composite
def generation_systems(draw):
    """Richer systems than ``small_systems``: originated fields,
    delete grants and an extra disclose leg."""
    field_names = draw(st.lists(names, min_size=2, max_size=4,
                                unique=True))
    actor_names = draw(st.lists(
        names.map(lambda n: "Actor_" + n), min_size=2, max_size=3,
        unique=True))
    builder = SystemBuilder("gen")
    builder.schema("S", list(field_names))
    originates = draw(st.booleans())
    for index, actor in enumerate(actor_names):
        if index == 0 and originates:
            builder.actor(actor, originates=[field_names[1]])
        else:
            builder.actor(actor)
    builder.datastore("D", "S")
    builder.service("svc")
    builder.flow(1, "User", actor_names[0], [field_names[0]],
                 purpose=draw(names))
    builder.flow(2, actor_names[0], "D",
                 [field_names[0]] +
                 ([field_names[1]] if originates else []))
    builder.flow(3, "D", actor_names[1], [field_names[0]])
    builder.flow(4, actor_names[0], actor_names[1], [field_names[0]])
    builder.allow(actor_names[0], ["read", "create"], "D")
    builder.allow(actor_names[1], "read", "D", [field_names[0]])
    if draw(st.booleans()):
        builder.allow(actor_names[1], "delete", "D")
    if draw(st.booleans()):
        builder.allow(actor_names[-1], "read", "D")
    return builder.build(strict=False)


_OPTION_VARIANTS = (
    GenerationOptions(),
    GenerationOptions(ordering="sequence"),
    GenerationOptions(include_potential_reads=True),
    GenerationOptions(include_potential_reads=True,
                      include_deletes=True),
)


@given(generation_systems(), st.sampled_from(_OPTION_VARIANTS))
@settings(max_examples=40, deadline=None)
def test_compiled_generator_matches_reference(system, options):
    lts = generate_lts(system, options)
    assert _compiled_rows(lts) == _reference_lts(system, options)


@given(generation_systems())
@settings(max_examples=15, deadline=None)
def test_compiled_generator_restricted_policy_actors(system):
    some_actor = sorted(system.actors)[0]
    options = GenerationOptions(
        include_potential_reads=True,
        potential_read_actors=frozenset([some_actor]),
        include_deletes=True,
        delete_actors=frozenset([some_actor]))
    lts = generate_lts(system, options)
    assert _compiled_rows(lts) == _reference_lts(system, options)


@pytest.mark.parametrize("ordering", ["dataflow", "sequence"])
def test_duplicated_service_selection_matches_reference(ordering):
    """A service selected twice fires its flows once per selection
    entry (the historical flat-flow-list semantics) — in sequence mode
    each selection emits its own next-order transition."""
    builder = SystemBuilder("dup")
    builder.schema("S", ["x", "y"])
    builder.actor("A")
    builder.actor("B")
    builder.service("svc")
    builder.flow(1, "User", "A", ["x"])
    builder.flow(2, "A", "B", ["x"])
    system = builder.build(strict=False)
    options = GenerationOptions(services=("svc", "svc"),
                                ordering=ordering)
    lts = generate_lts(system, options)
    assert _compiled_rows(lts) == _reference_lts(system, options)


# -- golden snapshots of the pre-rewrite generator -----------------------------

def _golden():
    from capture_golden_generation import DATA_PATH
    with open(DATA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_generation_matches_golden_snapshots():
    """Fixed systems x options against digests captured from the
    frozenset generator before the bitmask rewrite: states, vectors,
    transitions and ordering are all pinned."""
    from capture_golden_generation import (
        digest,
        lts_snapshot,
        workloads,
    )
    golden = _golden()["lts"]
    for name, system, options in workloads():
        lts = generate_lts(system, options)
        entry = golden[name]
        assert len(lts) == entry["states"], name
        assert len(lts.transitions) == entry["transitions"], name
        assert digest(lts_snapshot(lts)) == entry["digest"], name


def test_fleet_signatures_match_golden():
    """A mixed-kind engine fleet reproduces the pre-rewrite
    ``JobResult.signature()`` stream byte-for-byte."""
    from capture_golden_generation import fleet_signature_digests
    assert fleet_signature_digests() == \
        _golden()["signatures"]["fleet-seed11-allkinds"]


# -- LTS generation invariants ---------------------------------------------------------

@given(small_systems())
@settings(max_examples=25, deadline=None)
def test_generation_invariants(system):
    lts = generate_lts(system)
    # all states reachable from the initial state
    assert reachable_states(lts) == {s.sid for s in lts.states}
    # has-bits are monotone along every transition; fired sets grow
    for transition in lts.transitions:
        source = lts.state(transition.source)
        target = lts.state(transition.target)
        assert source.key.has_mask & ~target.key.has_mask == 0
        assert source.key.fired < target.key.fired
    # vectors match their configurations: could implies store-backed
    for state in lts.states:
        for actor in lts.registry.actors:
            for field in lts.registry.fields:
                if state.vector.could(actor, field):
                    stored = any(
                        entry[1] == field
                        for entry in state.key.contents)
                    assert stored
