"""Property-based tests (hypothesis) on core data structures and
invariants: bit-vector algebra, k-anonymity post-conditions, value-risk
bounds, interval generalization, parser round-trips and LTS generation
invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymize import (
    GlobalRecodingAnonymizer,
    HierarchySet,
    MondrianAnonymizer,
    NumericHierarchy,
    check_k_anonymity,
    equivalence_classes,
)
from repro.core import VarKind, VariableRegistry, generate_lts
from repro.core.reachability import reachable_states
from repro.core.risk import ValueRiskPolicy, value_risk
from repro.datastore import Record, make_records
from repro.dfd import SystemBuilder, parse_dsl, system_to_dict, to_dsl

names = st.text(alphabet=string.ascii_lowercase, min_size=1,
                max_size=6)


# -- bit-vector algebra -------------------------------------------------------

@st.composite
def registry_and_vars(draw):
    actors = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    fields = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    registry = VariableRegistry(actors, fields)
    chosen = draw(st.lists(
        st.tuples(
            st.sampled_from([VarKind.HAS, VarKind.COULD]),
            st.sampled_from(actors),
            st.sampled_from(fields),
        ),
        max_size=8,
    ))
    return registry, chosen


@given(registry_and_vars())
def test_vector_set_then_get(data):
    registry, chosen = data
    vector = registry.empty_vector()
    for kind, actor, field in chosen:
        vector = vector.with_true(kind, actor, field)
    for kind, actor, field in chosen:
        assert vector.get(kind, actor, field)
    assert vector.count_true() == len({
        (k, a, f) for k, a, f in chosen})


@given(registry_and_vars())
def test_vector_set_clear_roundtrip(data):
    registry, chosen = data
    vector = registry.empty_vector()
    for kind, actor, field in chosen:
        vector = vector.with_true(kind, actor, field)
    for kind, actor, field in chosen:
        vector = vector.with_false(kind, actor, field)
    assert vector.count_true() == 0


@given(registry_and_vars(), registry_and_vars())
def test_union_is_monotone(left_data, right_data):
    registry, chosen = left_data
    vector = registry.empty_vector()
    other = registry.empty_vector()
    for kind, actor, field in chosen:
        vector = vector.with_true(kind, actor, field)
    union = vector.union(other)
    assert union == vector  # union with empty is identity
    assert vector.union(vector) == vector  # idempotent


# -- k-anonymity post-conditions ----------------------------------------------

ages = st.integers(min_value=0, max_value=99)
heights = st.integers(min_value=140, max_value=210)


@st.composite
def physical_rows(draw):
    count = draw(st.integers(min_value=4, max_value=24))
    return [
        {"age": draw(ages), "height": draw(heights)}
        for _ in range(count)
    ]


@given(physical_rows(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_global_recoding_postcondition(rows, k):
    records = make_records(rows)
    if k > len(records):
        return
    hierarchies = HierarchySet([
        NumericHierarchy("age", widths=[10, 20, 40, 80, 160]),
        NumericHierarchy("height", widths=[10, 20, 40, 80, 160]),
    ])
    result = GlobalRecodingAnonymizer(hierarchies).anonymize(records, k)
    # every equivalence class of the release has size >= k
    if result.records:
        assert check_k_anonymity(
            result.records, ("age", "height")) >= k
    # nothing lost: released + suppressed == input
    assert len(result.records) + len(result.suppressed) == len(records)


@given(physical_rows(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_mondrian_postcondition(rows, k):
    records = make_records(rows)
    if k > len(records):
        return
    result = MondrianAnonymizer(["age", "height"]).anonymize(records, k)
    assert check_k_anonymity(result.records, ("age", "height")) >= k
    assert len(result.records) == len(records)  # Mondrian suppresses none


# -- value-risk bounds ------------------------------------------------------------

@st.composite
def released_rows(draw):
    count = draw(st.integers(min_value=1, max_value=20))
    bins = ["a", "b", "c"]
    return [
        {"qi": draw(st.sampled_from(bins)),
         "weight": draw(st.integers(min_value=50, max_value=150))}
        for _ in range(count)
    ]


@given(released_rows(),
       st.floats(min_value=0, max_value=20),
       st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_value_risk_bounds(rows, closeness, confidence):
    records = make_records(rows)
    policy = ValueRiskPolicy("weight", closeness=closeness,
                             confidence=confidence)
    result = value_risk(records, ["qi"], policy)
    classes = equivalence_classes(records, ["qi"])
    for record_risk in result.per_record:
        # a record always matches itself -> risk >= 1/|class| and > 0
        size = len(classes[record_risk.record.key_on(("qi",))])
        assert record_risk.set_size == size
        assert 1 <= record_risk.frequency <= size
        assert 0 < record_risk.risk <= 1
        assert record_risk.violated == (record_risk.risk >= confidence)
    assert 0 <= result.violations <= len(records)


@given(released_rows())
@settings(max_examples=30, deadline=None)
def test_value_risk_monotone_in_closeness(rows):
    records = make_records(rows)
    tight = value_risk(records, ["qi"],
                       ValueRiskPolicy("weight", closeness=0.0))
    loose = value_risk(records, ["qi"],
                       ValueRiskPolicy("weight", closeness=50.0))
    for narrow, wide in zip(tight.per_record, loose.per_record):
        assert narrow.frequency <= wide.frequency


@given(released_rows())
@settings(max_examples=30, deadline=None)
def test_value_risk_more_fields_never_larger_sets(rows):
    """Reading more quasi-identifiers partitions the data more finely."""
    for row in rows:
        row["qi2"] = row["weight"] % 3
    records = make_records(rows)
    policy = ValueRiskPolicy("weight", closeness=5.0)
    coarse = value_risk(records, ["qi"], policy)
    fine = value_risk(records, ["qi", "qi2"], policy)
    for one, two in zip(coarse.per_record, fine.per_record):
        assert two.set_size <= one.set_size


# -- interval generalization ----------------------------------------------------

@given(st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=1, max_value=50))
def test_numeric_generalization_contains_value(value, width):
    hierarchy = NumericHierarchy("x", widths=[width])
    interval = hierarchy.generalize(value, 1)
    assert interval.contains(value)
    assert interval.width == width


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=30),
       st.integers(min_value=1, max_value=20))
def test_same_bin_means_equal_intervals(values, width):
    hierarchy = NumericHierarchy("x", widths=[width])
    for left in values:
        for right in values:
            same_bin = (left // width) == (right // width)
            equal = hierarchy.generalize(left, 1) == \
                hierarchy.generalize(right, 1)
            assert same_bin == equal


# -- record algebra ---------------------------------------------------------------

@given(st.dictionaries(names, st.integers(), min_size=1, max_size=6))
def test_record_mask_project_partition(values):
    record = Record(values)
    fields = sorted(values)
    half = fields[: len(fields) // 2]
    masked = record.mask(half)
    projected = record.project(half)
    assert set(masked) | set(projected) == set(record)
    assert not set(masked) & set(projected)


# -- DSL round-trip over generated models -------------------------------------------

@st.composite
def small_systems(draw):
    field_names = draw(st.lists(names, min_size=1, max_size=3,
                                unique=True))
    actor_names = draw(st.lists(
        names.map(lambda n: "Actor_" + n), min_size=2, max_size=3,
        unique=True))
    builder = SystemBuilder("gen")
    builder.schema("S", list(field_names))
    for actor in actor_names:
        builder.actor(actor)
    builder.datastore("D", "S")
    builder.service("svc")
    builder.flow(1, "User", actor_names[0], [field_names[0]],
                 purpose=draw(names))
    builder.flow(2, actor_names[0], "D", [field_names[0]])
    builder.flow(3, "D", actor_names[1], [field_names[0]])
    builder.allow(actor_names[0], ["read", "create"], "D")
    builder.allow(actor_names[1], "read", "D", [field_names[0]])
    return builder.build(strict=False)


@given(small_systems())
@settings(max_examples=30, deadline=None)
def test_dsl_round_trip_property(system):
    reparsed = parse_dsl(to_dsl(system), validate=False)
    assert system_to_dict(reparsed) == system_to_dict(system)


# -- t-closeness bounds ---------------------------------------------------------------

@given(released_rows())
@settings(max_examples=40, deadline=None)
def test_t_closeness_bounds(rows):
    from repro.anonymize import check_t_closeness
    records = make_records(rows)
    report = check_t_closeness(records, ["qi"], "weight")
    assert 0.0 <= report.t_value <= 1.0
    for _, distance in report.class_distances:
        assert 0.0 <= distance <= 1.0 + 1e-9


@given(released_rows())
@settings(max_examples=40, deadline=None)
def test_single_class_release_is_zero_close(rows):
    """With no quasi-identifier read, every record is in one class
    whose distribution IS the global distribution."""
    from repro.anonymize import check_t_closeness
    records = make_records(rows)
    report = check_t_closeness(records, [], "weight")
    assert report.t_value == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1), min_size=1,
                max_size=10))
@settings(max_examples=60, deadline=None)
def test_emd_identity(weights):
    from repro.anonymize import ordered_emd, total_variation
    total = sum(weights) or 1.0
    distribution = [w / total for w in weights]
    assert ordered_emd(distribution, distribution) == \
        pytest.approx(0.0)
    assert total_variation(distribution, distribution) == \
        pytest.approx(0.0)


# -- consent monotonicity ------------------------------------------------------------

@given(st.lists(st.sampled_from(
    ["MedicalService", "MedicalResearchService"]),
    min_size=1, max_size=2, unique=True))
@settings(max_examples=10, deadline=None)
def test_more_consent_never_more_non_allowed(agreed):
    from repro.casestudies import build_surgery_system
    system = build_surgery_system()
    fewer = system.non_allowed_actors(agreed)
    everything = system.non_allowed_actors(
        ["MedicalService", "MedicalResearchService"])
    assert everything <= fewer


# -- LTS generation invariants ---------------------------------------------------------

@given(small_systems())
@settings(max_examples=25, deadline=None)
def test_generation_invariants(system):
    lts = generate_lts(system)
    # all states reachable from the initial state
    assert reachable_states(lts) == {s.sid for s in lts.states}
    # has-bits are monotone along every transition; fired sets grow
    for transition in lts.transitions:
        source = lts.state(transition.source)
        target = lts.state(transition.target)
        assert source.key.has_mask & ~target.key.has_mask == 0
        assert source.key.fired < target.key.fired
    # vectors match their configurations: could implies store-backed
    for state in lts.states:
        for actor in lts.registry.actors:
            for field in lts.registry.fields:
                if state.vector.could(actor, field):
                    stored = any(
                        entry[1] == field
                        for entry in state.key.contents)
                    assert stored
