"""Unit tests for the temporal property engine."""

import pytest

from repro.core import generate_lts
from repro.core.properties import (
    action_is,
    actor_could,
    actor_has,
    actor_knows_any,
    all_of,
    all_of_t,
    always,
    any_of,
    by_actor,
    can_occur,
    check_all,
    eventually,
    leads_to,
    negated,
    never,
    touches_field,
)
from repro.dfd import SystemBuilder


@pytest.fixture
def lts(tiny_system):
    return generate_lts(tiny_system)


class TestAtoms:
    def test_predicate_combinators(self, lts):
        final_pred = all_of(actor_has("Alice", "secret"),
                            actor_could("Bob", "name"))
        result = eventually(lts, final_pred)
        assert result.holds
        assert eventually(lts, negated(final_pred)).holds
        assert eventually(
            lts, any_of(actor_has("Bob", "secret"),
                        actor_has("Alice", "name"))).holds

    def test_actor_knows_any(self, lts):
        assert eventually(
            lts, actor_knows_any("Bob", ["secret", "name"])).holds
        assert not eventually(
            lts, actor_knows_any("Bob", ["secret"],
                                 include_could=False)).holds


class TestChecks:
    def test_eventually_with_witness(self, lts):
        result = eventually(lts, actor_has("Bob", "name"), "bob learns")
        assert result.holds
        assert result.witness
        assert "read" in result.witness_text()

    def test_never_holds(self, lts):
        result = never(lts, actor_has("Bob", "secret"))
        assert result.holds
        assert result.witness is None

    def test_never_violated_gives_counterexample(self, lts):
        result = never(lts, actor_has("Alice", "secret"))
        assert not result.holds
        assert result.witness is not None

    def test_always(self, lts):
        assert always(lts, lambda s: True).holds
        violated = always(lts, negated(actor_has("Alice", "secret")))
        assert not violated.holds

    def test_can_occur(self, lts):
        result = can_occur(
            lts, all_of_t(action_is("read"), by_actor("Bob"),
                          touches_field("name")))
        assert result.holds
        assert result.witness[-1].label.actor == "Bob"
        assert not can_occur(lts, touches_field("ghost")).holds

    def test_bool_conversion(self, lts):
        assert bool(eventually(lts, actor_has("Alice", "name")))

    def test_check_all(self, lts):
        results = check_all(lts, {
            "collects": ("eventually", actor_has("Alice", "name")),
            "no-leak": ("never", actor_has("Bob", "secret")),
        })
        assert results["collects"].holds
        assert results["no-leak"].holds

    def test_check_all_unknown_kind(self, lts):
        with pytest.raises(ValueError, match="unknown property kind"):
            check_all(lts, {"x": ("someday", lambda s: True)})


class TestLeadsTo:
    def test_leads_to_holds_on_linear_chain(self):
        system = (SystemBuilder("lin")
                  .schema("S", ["x"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "B", ["x"])
                  .build())
        lts = generate_lts(system)
        result = leads_to(lts, actor_has("A", "x"), actor_has("B", "x"))
        assert result.holds

    def test_leads_to_violated_with_branching(self):
        # A collects, then EITHER B or C receives; so "A has x" does
        # not always lead to "B has x".
        system = (SystemBuilder("branch")
                  .schema("S", ["x"])
                  .actor("A").actor("B").actor("C")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])
                  .flow(2, "A", "B", ["x"])
                  .flow(3, "A", "C", ["x"])
                  .build())
        lts = generate_lts(system)
        # every maximal path fires both flows eventually, so it holds;
        # instead check against an impossible conclusion
        violated = leads_to(lts, actor_has("A", "x"),
                            actor_has("C", "ghost-field")
                            if "ghost-field" in lts.registry.fields
                            else (lambda s: False))
        assert not violated.holds
        assert violated.witness is not None

    def test_conclusion_at_premise_state_counts(self, tiny_system):
        lts = generate_lts(tiny_system)
        result = leads_to(lts, actor_has("Alice", "name"),
                          actor_has("Alice", "name"))
        assert result.holds
