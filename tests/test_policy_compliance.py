"""Unit tests for the privacy-policy language and compliance checker."""

import pytest

from repro.core import generate_lts
from repro.policy import (
    ComplianceChecker,
    PrivacyPolicy,
    check_compliance,
    forbid,
    permit,
    require_purpose,
)


@pytest.fixture
def lts(tiny_system):
    return generate_lts(tiny_system)


class TestStatements:
    def test_forbid_matches_actor_action_fields(self, lts):
        statement = forbid(actor="Bob", action="read", fields=["name"])
        read = [t for t in lts.transitions
                if t.label.actor == "Bob"][0]
        assert statement.matches(read)

    def test_field_intersection_semantics(self, lts):
        statement = forbid(fields=["secret", "other"])
        collect = lts.transitions_from(lts.initial.sid)[0]
        assert statement.matches(collect)  # carries name AND secret

    def test_purpose_matcher(self, lts):
        statement = permit(purposes=["signup"])
        collect = lts.transitions_from(lts.initial.sid)[0]
        assert statement.matches(collect)
        assert not permit(purposes=["other"]).matches(collect)

    def test_none_matchers_match_everything(self, lts):
        statement = permit()
        assert all(statement.matches(t) for t in lts.transitions)

    def test_describe(self):
        assert "forbid" in forbid(actor="A").describe()
        assert "any action" in forbid(actor="A").describe()
        assert "require purpose" in require_purpose(["x"]).describe()


class TestPrivacyPolicy:
    def test_add_and_classify(self):
        policy = PrivacyPolicy("p", [
            permit(actor="A"), forbid(actor="B"), require_purpose(["x"]),
        ])
        assert len(policy.permits) == 1
        assert len(policy.forbids) == 1
        assert len(policy.purpose_rules) == 1
        assert len(policy) == 3

    def test_rejects_unknown_statement(self):
        with pytest.raises(TypeError):
            PrivacyPolicy("p", ["not a statement"])

    def test_requires_name(self):
        with pytest.raises(ValueError):
            PrivacyPolicy("")


class TestCompliance:
    def test_compliant_policy(self, lts):
        policy = PrivacyPolicy("ok", [
            forbid(actor="Bob", fields=["secret"]),
        ])
        report = check_compliance(lts, policy)
        assert report.compliant
        assert report.transitions_checked == len(lts.transitions)
        assert "compliant" in report.summary()

    def test_forbidden_behaviour_found(self, lts):
        policy = PrivacyPolicy("strict", [
            forbid(actor="Bob", action="read"),
        ])
        report = check_compliance(lts, policy)
        assert not report.compliant
        violation = report.by_kind("forbidden")[0]
        assert violation.transition.label.actor == "Bob"
        assert "forbidden" in violation.describe()
        # witness path leads to the violation
        assert "read" in violation.witness_text()

    def test_missing_purpose_found(self):
        from repro.dfd import SystemBuilder
        system = (SystemBuilder("s").schema("S", ["x"])
                  .actor("A").actor("B")
                  .service("svc")
                  .flow(1, "User", "A", ["x"])     # no purpose
                  .flow(2, "A", "B", ["x"], purpose="share")
                  .build())
        lts = generate_lts(system)
        policy = PrivacyPolicy("p", [require_purpose(["x"])])
        report = check_compliance(lts, policy)
        missing = report.by_kind("missing-purpose")
        assert len(missing) == 1
        assert missing[0].transition.label.purpose is None

    def test_strict_mode_flags_uncovered(self, lts):
        policy = PrivacyPolicy("partial", [
            permit(actor="Alice"),
        ])
        report = check_compliance(lts, policy, strict=True)
        uncovered = report.by_kind("uncovered")
        assert uncovered
        assert all(v.transition.label.actor != "Alice"
                   for v in uncovered)

    def test_non_strict_ignores_uncovered(self, lts):
        policy = PrivacyPolicy("partial", [permit(actor="Alice")])
        assert check_compliance(lts, policy).compliant

    def test_injected_transitions_skipped_by_default(self, tiny_system):
        from repro.core import GenerationOptions
        lts = generate_lts(tiny_system, GenerationOptions(
            include_potential_reads=True))
        policy = PrivacyPolicy("p", [forbid(action="read")])
        default_report = check_compliance(lts, policy)
        checker = ComplianceChecker(policy, check_injected=True)
        full_report = checker.check(lts)
        assert full_report.transitions_checked > \
            default_report.transitions_checked

    def test_summary_lists_violations(self, lts):
        policy = PrivacyPolicy("strict", [forbid(actor="Bob")])
        summary = check_compliance(lts, policy).summary()
        assert "violation" in summary
        assert "Bob" in summary
