"""Fuzz tests: the DSL parser must fail *cleanly* on arbitrary input.

Whatever text arrives, the parser either returns a SystemModel or
raises ParseError/ModelError — never IndexError, KeyError,
RecursionError or friends. Mutations of a valid model must behave the
same way.
"""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.dfd import parse_dsl, to_dsl
from repro.errors import ReproError

VALID = """
system clinic {
  schema Visit {
    field name: string kind identifier
    field issue: string kind sensitive
  }
  actor Doctor
  actor Auditor
  datastore Records schema Visit
  service Consultation {
    flow 1 User -> Doctor fields [name, issue] purpose "consult"
    flow 2 Doctor -> Records fields [name, issue] purpose "record"
  }
  acl {
    allow Doctor read, create on Records
    allow Auditor read on Records fields [name]
  }
}
"""


def _parse_expecting_clean_outcome(text: str):
    try:
        parse_dsl(text, validate=False)
    except ReproError:
        pass  # ParseError/ModelError are the contract
    except RecursionError:  # pragma: no cover
        raise AssertionError("parser recursed unboundedly")


@given(st.text(max_size=300))
@settings(max_examples=150, deadline=None)
def test_arbitrary_text_never_crashes(text):
    _parse_expecting_clean_outcome(text)


@given(st.text(alphabet=string.printable, max_size=300))
@settings(max_examples=150, deadline=None)
def test_printable_garbage_never_crashes(text):
    _parse_expecting_clean_outcome(text)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=40))
@settings(max_examples=100, deadline=None)
def test_mutated_valid_model_never_crashes(seed, mutations):
    rng = random.Random(seed)
    text = list(VALID)
    alphabet = string.printable
    for _ in range(mutations):
        choice = rng.random()
        position = rng.randrange(len(text))
        if choice < 0.4 and len(text) > 1:
            del text[position]
        elif choice < 0.8:
            text[position] = rng.choice(alphabet)
        else:
            text.insert(position, rng.choice(alphabet))
    _parse_expecting_clean_outcome("".join(text))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_truncated_valid_model_never_crashes(seed):
    rng = random.Random(seed)
    cut = rng.randrange(len(VALID))
    _parse_expecting_clean_outcome(VALID[:cut])


def test_valid_model_still_parses():
    """The fuzz baseline is actually valid."""
    system = parse_dsl(VALID)
    assert system.name == "clinic"
    # and the writer output is parseable too (meta-sanity)
    assert parse_dsl(to_dsl(system)).name == "clinic"


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=20, deadline=None)
def test_deeply_nested_braces_rejected_cleanly(depth):
    text = "system x " + "{" * depth + "}" * depth
    _parse_expecting_clean_outcome(text)
