"""Unit tests for reachability queries and identification reports."""

import pytest

from repro.core import GenerationOptions, generate_lts
from repro.core.reachability import (
    actors_that_can_identify,
    first_state_where_identified,
    identification_report,
    path_description,
    reachable_states,
    shortest_path_to,
    states_where,
    terminal_states,
)
from repro.core.statevars import VarKind
from repro.dfd import SystemBuilder


@pytest.fixture
def lts(tiny_system):
    return generate_lts(tiny_system)


class TestReachability:
    def test_all_generated_states_reachable(self, lts):
        assert reachable_states(lts) == {s.sid for s in lts.states}

    def test_reachable_from_terminal_is_self(self, lts):
        final = terminal_states(lts)[0]
        assert reachable_states(lts, final.sid) == {final.sid}

    def test_terminal_states_have_no_successors(self, lts):
        for state in terminal_states(lts):
            assert not lts.transitions_from(state.sid)

    def test_states_where(self, lts):
        states = states_where(lts,
                              lambda s: s.vector.has("Alice", "secret"))
        assert states
        assert all(s.vector.has("Alice", "secret") for s in states)


class TestPaths:
    def test_shortest_path_to_initial_is_empty(self, lts):
        path = shortest_path_to(lts, lambda s: s.sid == lts.initial.sid)
        assert path == []

    def test_path_reaches_target(self, lts):
        path = shortest_path_to(
            lts, lambda s: s.vector.has("Bob", "name"))
        assert path is not None
        assert path[-1].label.actor == "Bob"
        # path is connected and starts at the initial state
        assert path[0].source == lts.initial.sid
        for first, second in zip(path, path[1:]):
            assert first.target == second.source

    def test_unreachable_predicate_gives_none(self, lts):
        assert shortest_path_to(lts, lambda s: False) is None

    def test_path_description(self, lts):
        path = shortest_path_to(
            lts, lambda s: s.vector.has("Bob", "name"))
        text = path_description(path)
        assert "collect" in text and "read" in text
        assert path_description([]) == "<initial state>"


class TestIdentification:
    def test_identification_report(self, lts):
        report = identification_report(lts)
        assert "secret" in report["Alice"]["has"]
        assert "secret" not in report["Bob"]["has"]
        # Alice could re-read what she stored; Bob could read name only
        assert "name" in report["Bob"]["could"]
        assert "secret" not in report["Bob"]["could"]

    def test_actors_that_can_identify(self, lts):
        assert actors_that_can_identify(lts, "secret") == {"Alice"}
        assert actors_that_can_identify(lts, "name") == {"Alice", "Bob"}

    def test_actors_that_can_identify_has_only(self, lts):
        # before Bob's read flow fires he only *could*; the report is
        # over all states, so has-only still includes Bob (flow 3 fires)
        assert "Bob" in actors_that_can_identify(
            lts, "name", include_could=False)

    def test_first_state_where_identified(self, lts):
        path = first_state_where_identified(lts, "Bob", "name")
        assert path is not None
        assert path[-1].label.action.value == "read"

    def test_first_state_could(self, lts):
        path = first_state_where_identified(
            lts, "Bob", "name", kind=VarKind.COULD)
        assert path is not None
        # could(name) arises at the create, before Bob's read
        assert path[-1].label.action.value == "create"

    def test_never_identified_gives_none(self, lts):
        assert first_state_where_identified(lts, "Bob", "secret") is None
