"""Unit tests for the model DSL tokenizer and parser."""

import pytest

from repro.dfd import parse_dsl, parse_file, tokenize
from repro.errors import ParseError

VALID = """
# a complete little system
system clinic {
  schema Visit {
    field name: string kind identifier
    field issue: string kind sensitive
    field issue_anon: string kind sensitive anonymises issue
  }

  role staff
  role senior parents [staff]

  actor Doctor role senior originates [issue]
  actor Auditor

  assign Auditor roles [staff]

  datastore Records schema Visit
  anonymised datastore AnonRecords schema Visit

  service Consult {
    flow 1 User -> Doctor fields [name] purpose "identify"
    flow 2 Doctor -> Records fields [name, issue] purpose "persist"
  }

  acl {
    allow Doctor read, create on Records
    allow staff read on Records fields [name]
  }
}
"""


class TestTokenizer:
    def test_token_stream_shape(self):
        tokens = tokenize('system x { flow 1 A -> B fields [a] }')
        types = [t.type for t in tokens]
        assert types[0] == "ident"
        assert "arrow" in types
        assert "number" in types
        assert types[-1] == "eof"

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("# comment\n  ident")
        assert [t.value for t in tokens[:-1]] == ["ident"]

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        b_token = tokens[1]
        assert (b_token.line, b_token.column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="line 1"):
            tokenize("system @")

    def test_strings_with_escapes(self):
        tokens = tokenize('"a \\"quoted\\" thing"')
        assert tokens[0].type == "string"


class TestParserAcceptance:
    def test_full_system(self):
        system = parse_dsl(VALID, strict=False)
        assert system.name == "clinic"
        assert set(system.actors) == {"Doctor", "Auditor"}
        assert system.actors["Doctor"].originates == ("issue",)
        assert system.datastores["AnonRecords"].anonymised
        assert len(system.service("Consult")) == 2
        assert system.policy.rbac.has_role("Doctor", "staff")  # inherited
        assert system.policy.can_read("Auditor", "Records", "name")
        assert not system.policy.can_read("Auditor", "Records", "issue")

    def test_schema_fields_parsed(self):
        system = parse_dsl(VALID, strict=False)
        schema = system.schemas["Visit"]
        assert schema.field("issue_anon").anonymised_of == "issue"

    def test_purpose_optional(self):
        text = """system s { schema S { field a: string }
        actor A
        service v { flow 1 User -> A fields [a] } }"""
        system = parse_dsl(text, validate=False)
        assert system.service("v").flows[0].purpose == ""

    def test_parse_file(self, tmp_path):
        path = tmp_path / "model.dsl"
        path.write_text(VALID)
        system = parse_file(path, strict=False)
        assert system.name == "clinic"


class TestParserErrors:
    def _expect(self, text, pattern):
        with pytest.raises(ParseError, match=pattern):
            parse_dsl(text, validate=False)

    def test_missing_system_keyword(self):
        self._expect("model x {}", "expected 'system'")

    def test_unknown_declaration(self):
        self._expect("system x { gadget y }", "unknown declaration")

    def test_missing_arrow(self):
        self._expect(
            "system x { schema S { field a: string } actor A "
            "service v { flow 1 User A fields [a] } }",
            "expected '->'")

    def test_bad_field_type(self):
        self._expect("system x { schema S { field a: blob } }",
                     "unknown field type")

    def test_bad_permission(self):
        self._expect(
            "system x { schema S { field a: string } actor A "
            "datastore D schema S acl { allow A fly on D } }",
            "unknown permission")

    def test_undefined_schema_for_store(self):
        self._expect("system x { datastore D schema Ghost }",
                     "undefined schema")

    def test_duplicate_field_in_schema(self):
        self._expect(
            "system x { schema S { field a: string field a: int } }",
            "duplicate field")

    def test_empty_flow_fields(self):
        self._expect(
            "system x { schema S { field a: string } actor A "
            "service v { flow 1 User -> A fields [] } }",
            "at least one field")

    def test_trailing_garbage(self):
        self._expect("system x { } extra", "after closing brace")

    def test_error_carries_position(self):
        try:
            parse_dsl("system x {\n  gadget y }", validate=False)
        except ParseError as exc:
            assert exc.line == 2
            assert exc.column is not None
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_validation_runs_after_parse(self):
        from repro.errors import ValidationError
        text = """system s { schema S { field a: string }
        actor A
        service v { flow 1 User -> Ghost fields [a] } }"""
        with pytest.raises(ValidationError):
            parse_dsl(text)
