"""Tests for config-driven risk matrices and timeline rendering."""

import pytest

from repro.core.risk import RiskLevel, RiskMatrix
from repro.errors import AnalysisError
from repro.monitor import PrivacyMonitor, ServiceRuntime
from repro.viz import exposure_report, timeline_report


class TestRiskMatrixConfig:
    def test_round_trip(self):
        matrix = RiskMatrix.example()
        rebuilt = RiskMatrix.from_dict(matrix.to_dict())
        for impact in (RiskLevel.LOW, RiskLevel.MEDIUM, RiskLevel.HIGH):
            for likelihood in (RiskLevel.LOW, RiskLevel.MEDIUM,
                               RiskLevel.HIGH):
                assert rebuilt.level(impact, likelihood) is \
                    matrix.level(impact, likelihood)
        assert rebuilt.impact_banding.low_upper == \
            matrix.impact_banding.low_upper

    def test_from_dict_minimal(self):
        matrix = RiskMatrix.from_dict({
            "table": {"high/low": "high"},
        })
        assert matrix.level(RiskLevel.HIGH, RiskLevel.LOW) is \
            RiskLevel.HIGH

    def test_custom_bandings(self):
        matrix = RiskMatrix.from_dict({
            "table": {"low/low": "low"},
            "impact_banding": [0.5, 0.9],
            "likelihood_banding": [0.2, 0.8],
        })
        assert matrix.impact_banding.categorize(0.45) is RiskLevel.LOW
        assert matrix.likelihood_banding.categorize(0.25) is \
            RiskLevel.MEDIUM

    def test_missing_table_rejected(self):
        with pytest.raises(AnalysisError, match="table"):
            RiskMatrix.from_dict({})

    def test_bad_key_rejected(self):
        with pytest.raises(AnalysisError, match="impact"):
            RiskMatrix.from_dict({"table": {"high": "low"}})

    def test_service_specific_matrix_changes_verdict(self,
                                                     surgery_system,
                                                     patient):
        """A stricter, healthcare-grade table turns the IV.A event
        HIGH — 'specified according to the type of service'."""
        from repro.core.risk import DisclosureRiskAnalyzer
        strict = RiskMatrix.from_dict({
            "table": {
                "low/low": "low", "low/medium": "medium",
                "low/high": "medium",
                "medium/low": "medium", "medium/medium": "medium",
                "medium/high": "high",
                "high/low": "high", "high/medium": "high",
                "high/high": "high",
            },
        })
        report = DisclosureRiskAnalyzer(
            surgery_system, matrix=strict).analyse(patient)
        assert report.max_level is RiskLevel.HIGH


class TestTimeline:
    def _run_monitor(self, surgery_system, medical_lts):
        monitor = PrivacyMonitor(medical_lts)
        runtime = ServiceRuntime(surgery_system, monitor=monitor)
        runtime.run_service("MedicalService", {
            "name": "Ada", "dob": "1980-01-01",
            "medical_issues": "cough"})
        return monitor

    def test_timeline_rows_per_event(self, surgery_system, medical_lts):
        monitor = self._run_monitor(surgery_system, medical_lts)
        report = timeline_report(monitor)
        lines = report.splitlines()
        assert "collect" in report and "create" in report
        assert "final state" in lines[-1]
        # 6 flow rows + header + rule + blank + final line
        assert sum("collect" in line or "create" in line or
                   "read" in line for line in lines) == 6

    def test_timeline_tracks_actor_of_interest(self, surgery_system,
                                               medical_lts):
        monitor = self._run_monitor(surgery_system, medical_lts)
        report = timeline_report(monitor, actor_of_interest="Nurse")
        assert "Nurse knows" in report
        assert "treatment" in report

    def test_empty_timeline(self, medical_lts):
        monitor = PrivacyMonitor(medical_lts)
        report = timeline_report(monitor)
        assert "final state: s0" in report

    def test_timeline_includes_alerts(self, surgery_system,
                                      medical_lts):
        from repro.monitor import read_event
        monitor = self._run_monitor(surgery_system, medical_lts)
        monitor.observe(read_event("Nurse", "EHR", ["name"]))  # rogue
        report = timeline_report(monitor)
        assert "alerts:" in report
        assert "unmodelled" in report

    def test_exposure_report(self, surgery_system, medical_lts):
        monitor = self._run_monitor(surgery_system, medical_lts)
        report = exposure_report(monitor)
        nurse_row = [line for line in report.splitlines()
                     if line.startswith("Nurse")][0]
        assert "treatment" in nurse_row
        admin_row = [line for line in report.splitlines()
                     if line.startswith("Administrator")][0]
        assert "diagnosis" in admin_row  # could, not has
