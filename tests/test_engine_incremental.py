"""Diff-driven incremental re-analysis: stage classification,
LTS re-seeding, and the cold-vs-incremental acceptance contract."""

import pytest

from repro.casestudies import (
    build_loyalty_system,
    build_surgery_system,
    loyalty_member,
    surgery_patient,
    tighten_administrator_policy,
)
from repro.core import GenerationOptions
from repro.engine import (
    INVALIDATES_ANALYZERS,
    INVALIDATES_EVERYTHING,
    INVALIDATES_NOTHING,
    AnalysisJob,
    BatchEngine,
    certificate_survives,
    classify_invalidation,
    reanalyze,
    resolve_options,
    taint_stage_key,
)
from repro.taint import TaintCertificate, build_certificate


def _create_grant_edit():
    """An ACL-only edit outside the generator's policy view: a create
    grant (generation never consults can_create)."""
    after = build_surgery_system()
    after.policy.allow("Nurse", "create", "AnonEHR")
    return after


class TestClassification:
    def test_identical_models_invalidate_nothing(self):
        plan = classify_invalidation(build_surgery_system(),
                                     build_surgery_system())
        assert plan.level == INVALIDATES_NOTHING
        assert plan.before_fp == plan.after_fp

    def test_description_only_change_invalidates_nothing(self):
        from repro.dfd import system_from_dict, system_to_dict
        data = system_to_dict(build_surgery_system())
        data["actors"][0]["description"] = "now with a biography"
        after = system_from_dict(data)
        plan = classify_invalidation(build_surgery_system(), after)
        assert plan.level == INVALIDATES_NOTHING

    def test_create_grant_edit_reuses_the_lts(self):
        plan = classify_invalidation(build_surgery_system(),
                                     _create_grant_edit())
        assert plan.level == INVALIDATES_ANALYZERS
        assert plan.reuses_lts
        assert plan.delete_safe
        assert plan.diff.acl_only

    def test_read_grant_edit_invalidates_the_lts(self):
        """The generator derives could() and potential reads from read
        grants — the IV.A remediation must regenerate."""
        plan = classify_invalidation(
            build_surgery_system(),
            tighten_administrator_policy(build_surgery_system()))
        assert plan.level == INVALIDATES_EVERYTHING
        assert "read grants" in plan.reason

    def test_structural_change_invalidates_everything(self):
        after = build_surgery_system()
        after.policy.allow("Nurse", "create", "Appointments")
        before = build_surgery_system()
        before_plus_actor = build_surgery_system()
        from repro.dfd.model import Actor
        before_plus_actor.actors["Contractor"] = Actor("Contractor")
        plan = classify_invalidation(build_surgery_system(),
                                     before_plus_actor)
        assert plan.level == INVALIDATES_EVERYTHING

    def test_schema_change_is_conservatively_full(self):
        """Schema edits are invisible to the structural diff; the
        classifier must not claim the LTS survives them."""
        from repro.dfd import system_to_dict, system_from_dict
        data = system_to_dict(build_surgery_system())
        for schema in data["schemas"]:
            for field in schema["fields"]:
                if field["name"] == "dob":
                    field["kind"] = "sensitive"
        after = system_from_dict(data)
        plan = classify_invalidation(build_surgery_system(), after)
        assert plan.diff.is_empty
        assert plan.level == INVALIDATES_EVERYTHING
        assert "outside the diff's view" in plan.reason

    def test_delete_grant_edit_bites_only_delete_generations(self):
        after = build_surgery_system()
        after.policy.allow("Receptionist", "delete", "Appointments")
        plan = classify_invalidation(build_surgery_system(), after)
        assert plan.level == INVALIDATES_ANALYZERS
        assert not plan.delete_safe
        plain = GenerationOptions()
        deleting = GenerationOptions(include_deletes=True)
        assert plan.level_for(plain) == INVALIDATES_ANALYZERS
        assert plan.level_for(deleting) == INVALIDATES_EVERYTHING

    def test_describe_names_level_and_diff(self):
        plan = classify_invalidation(build_surgery_system(),
                                     _create_grant_edit())
        text = plan.describe()
        assert "analyzers" in text
        assert "+ grant:" in text


class TestReanalyze:
    def _fleet(self, before):
        loyalty = build_loyalty_system()
        jobs = [AnalysisJob(system=before,
                            user=surgery_patient(f"p{i}"),
                            scenario=f"surgery#{i}", family="surgery")
                for i in range(3)]
        jobs.append(AnalysisJob(system=loyalty, user=loyalty_member(),
                                scenario="loyalty#0",
                                family="loyalty"))
        return jobs

    def test_acceptance_one_acl_edit_rerun(self):
        """The PR's acceptance bar: a one-ACL-edit re-analysis re-runs
        strictly fewer jobs than a cold run and produces byte-identical
        result signatures."""
        before = build_surgery_system()
        after = _create_grant_edit()
        engine = BatchEngine()
        jobs = self._fleet(before)
        engine.run(jobs)

        outcome = reanalyze(engine, before, after, jobs)
        cold = BatchEngine().run(self._fleet(after))

        assert cold.stats.executed == len(jobs)
        assert outcome.batch.stats.executed < cold.stats.executed
        incremental_sigs = [repr(r.signature()).encode()
                            for r in outcome.batch.results]
        cold_sigs = [repr(r.signature()).encode()
                     for r in cold.results]
        assert incremental_sigs == cold_sigs

    def test_lts_reuse_on_analyzer_level_edit(self):
        before = build_surgery_system()
        engine = BatchEngine()
        jobs = self._fleet(before)
        engine.run(jobs)
        outcome = reanalyze(engine, before, _create_grant_edit(), jobs)
        assert outcome.plan.reuses_lts
        assert outcome.lts_seeded >= 1
        assert outcome.batch.stats.lts_generations == 0
        # The unchanged loyalty job served straight from the cache.
        assert outcome.batch.stats.result_hits == 1
        assert outcome.retargeted == 3

    def test_read_edit_still_skips_unchanged_models(self):
        before = build_surgery_system()
        after = tighten_administrator_policy(build_surgery_system())
        engine = BatchEngine()
        jobs = self._fleet(before)
        engine.run(jobs)
        outcome = reanalyze(engine, before, after, jobs)
        assert not outcome.plan.reuses_lts
        assert outcome.lts_seeded == 0
        assert outcome.batch.stats.result_hits == 1
        assert outcome.batch.stats.lts_generations >= 1
        assert outcome.batch.stats.executed < len(jobs)

    def test_noop_edit_serves_everything_from_cache(self):
        before = build_surgery_system()
        after = build_surgery_system()
        after.services["MedicalService"].description = "reworded"
        engine = BatchEngine()
        jobs = self._fleet(before)
        engine.run(jobs)
        outcome = reanalyze(engine, before, after, jobs)
        assert outcome.batch.stats.executed == 0
        assert outcome.batch.stats.result_hits == len(jobs)

    def test_matches_by_content_not_object_identity(self):
        """Jobs referencing a *different object* with the same content
        as `before` still retarget."""
        engine = BatchEngine()
        jobs = self._fleet(build_surgery_system())
        engine.run(jobs)
        outcome = reanalyze(engine, build_surgery_system(),
                            _create_grant_edit(), jobs)
        assert outcome.retargeted == 3

    def test_cold_engine_degrades_to_plain_run(self):
        before = build_surgery_system()
        jobs = self._fleet(before)
        engine = BatchEngine()         # nothing cached
        outcome = reanalyze(engine, before, _create_grant_edit(), jobs)
        assert outcome.lts_seeded == 0
        assert outcome.batch.stats.executed == len(jobs)
        assert len(outcome.batch.results) == len(jobs)

    def test_reanalyze_through_disk_cache(self, tmp_path):
        """A fresh engine over the same cache_dir (a new process,
        operationally) still reuses the prior run's stages."""
        cache_dir = str(tmp_path / "cache")
        before = build_surgery_system()
        jobs = self._fleet(before)
        BatchEngine(cache_dir=cache_dir).run(jobs)
        engine = BatchEngine(cache_dir=cache_dir)
        outcome = reanalyze(engine, before, _create_grant_edit(), jobs)
        assert outcome.batch.stats.lts_generations == 0
        assert outcome.batch.stats.result_hits == 1

    def test_mixed_kind_fleet_reanalyzes(self):
        before = build_surgery_system()
        jobs = [
            AnalysisJob(system=before, user=surgery_patient(),
                        kind=kind)
            for kind in ("disclosure", "pseudonym", "consent_change")
        ]
        engine = BatchEngine()
        engine.run(jobs)
        outcome = reanalyze(engine, before, _create_grant_edit(), jobs)
        assert outcome.retargeted == 3
        # Both LTS-consuming kinds re-seeded (distinct options =>
        # distinct stage-2 keys); consent_change never touches the memo.
        assert outcome.lts_seeded == 2
        assert outcome.batch.stats.lts_generations == 0
        assert [r.kind for r in outcome.batch.results] == \
            ["disclosure", "pseudonym", "consent_change"]

    def test_describe_summarises_the_run(self):
        before = build_surgery_system()
        engine = BatchEngine()
        jobs = self._fleet(before)
        engine.run(jobs)
        outcome = reanalyze(engine, before, _create_grant_edit(), jobs)
        text = outcome.describe()
        assert "retargeted" in text
        assert "re-seeded" in text


def _untracked_read_grant_edit():
    """A read grant on atoms the patient's taint closure never
    tracks: AnonEHR only fills through the research service, which
    the surgery patient never agreed to."""
    after = build_surgery_system()
    after.policy.allow("Nurse", "read", "AnonEHR", ["dob_anon"])
    return after


class TestCertificateSurvival:
    """The taint stage invalidates on reachability, not on the LTS's
    policy view — strictly more precise for ACL edits."""

    def _certificate(self, system=None):
        system = system or build_surgery_system()
        user = surgery_patient()
        from repro.core.risk import DisclosureRiskAnalyzer
        return build_certificate(
            system,
            DisclosureRiskAnalyzer.default_options(system, user))

    def test_nothing_level_always_survives(self):
        plan = classify_invalidation(build_surgery_system(),
                                     build_surgery_system())
        assert certificate_survives(plan, self._certificate())

    def test_untracked_read_grant_survives_the_full_invalidation(self):
        """The precision fix: the plan says `everything` (read grants
        moved), yet the certificate provably survives because the
        grant lands on atoms taint never reaches."""
        plan = classify_invalidation(build_surgery_system(),
                                     _untracked_read_grant_edit())
        assert plan.level == INVALIDATES_EVERYTHING
        assert plan.acl_only
        assert certificate_survives(plan, self._certificate())

    def test_tracked_read_grant_invalidates(self):
        after = build_surgery_system()
        after.policy.allow("Nurse", "read", "EHR", ["diagnosis"])
        plan = classify_invalidation(build_surgery_system(), after)
        assert plan.acl_only
        assert not certificate_survives(plan, self._certificate())

    def test_wildcard_grant_on_tracked_store_invalidates(self):
        after = build_surgery_system()
        after.policy.allow("Nurse", "read", "EHR")
        plan = classify_invalidation(build_surgery_system(), after)
        assert not certificate_survives(plan, self._certificate())

    def test_create_grant_edit_survives(self):
        plan = classify_invalidation(build_surgery_system(),
                                     _create_grant_edit())
        assert plan.level == INVALIDATES_ANALYZERS
        assert certificate_survives(plan, self._certificate())

    def test_grant_removal_survives(self):
        plan = classify_invalidation(
            build_surgery_system(),
            tighten_administrator_policy(build_surgery_system()))
        assert plan.level == INVALIDATES_EVERYTHING
        assert plan.acl_only
        assert certificate_survives(plan, self._certificate())

    def test_structural_change_never_survives(self):
        after = build_surgery_system()
        from repro.dfd.model import Actor
        after.actors["Contractor"] = Actor("Contractor")
        plan = classify_invalidation(build_surgery_system(), after)
        assert not plan.acl_only
        assert not certificate_survives(plan, self._certificate())


class TestReanalyzeTaintSeeding:
    def _jobs(self, before):
        return [AnalysisJob(system=before,
                            user=surgery_patient(f"p{i}"),
                            scenario=f"surgery#{i}", family="surgery")
                for i in range(3)]

    def test_surviving_certificate_reseeds_under_the_new_key(self):
        before = build_surgery_system()
        after = _untracked_read_grant_edit()
        engine = BatchEngine(backend="serial")
        jobs = self._jobs(before)
        engine.run(jobs, screen=True)
        outcome = reanalyze(engine, before, after, jobs, screen=True)
        assert outcome.taint_seeded == 1  # one (model, options) pair
        reseeded = engine.taint_cache.get(
            taint_stage_key(outcome.plan.after_fp,
                            resolve_options(jobs[0])))
        assert isinstance(reseeded, TaintCertificate)
        assert reseeded.model_fp == outcome.plan.after_fp
        assert "taint certificates" in outcome.describe()

    def test_invalidated_certificate_is_not_reseeded(self):
        before = build_surgery_system()
        after = build_surgery_system()
        after.policy.allow("Nurse", "read", "EHR", ["diagnosis"])
        engine = BatchEngine(backend="serial")
        jobs = self._jobs(before)
        engine.run(jobs, screen=True)
        outcome = reanalyze(engine, before, after, jobs, screen=True)
        assert outcome.taint_seeded == 0
        assert "taint certificates" not in outcome.describe()
        # The screened re-run recomputed a *fresh* certificate for the
        # edited model rather than reusing the stale one.
        fresh = engine.taint_cache.get(
            taint_stage_key(outcome.plan.after_fp,
                            resolve_options(jobs[0])))
        assert isinstance(fresh, TaintCertificate)
        assert fresh.model_fp == outcome.plan.after_fp

    def test_cold_taint_cache_degrades_gracefully(self):
        before = build_surgery_system()
        jobs = self._jobs(before)
        engine = BatchEngine(backend="serial")
        engine.run(jobs)  # unscreened: taint cache stays cold
        outcome = reanalyze(engine, before,
                            _untracked_read_grant_edit(), jobs)
        assert outcome.taint_seeded == 0
        assert len(outcome.batch.results) == len(jobs)
