"""The analysis-kind registry: per-kind semantics, cache keys,
mixed-kind execution and fleet aggregation."""

import pytest

from repro.casestudies import (
    RESEARCH_SERVICE,
    TABLE1_CLOSENESS_KG,
    build_research_system,
    build_scaled_system,
    build_surgery_system,
    surgery_patient,
    table1_records,
)
from repro.consent import UserProfile
from repro.core.risk import (
    DisclosureRiskAnalyzer,
    LikelihoodModel,
    RiskMatrix,
    ValueRiskPolicy,
    analyse_consent_change,
)
from repro.core.risk.pseudonym import default_policy_for
from repro.engine import (
    KINDS,
    AnalysisJob,
    AnalyzerConfig,
    BatchEngine,
    FleetReport,
    get_kind,
    kind_names,
    register_kind,
    resolve_options,
)
from repro.engine.kinds import AnalysisKind, dataset_key

TABLE1_FIELD_MAP = {"age_anon": "age", "height_anon": "height",
                    "weight_anon": "weight"}


def _researcher_policy():
    return ValueRiskPolicy("weight", closeness=TABLE1_CLOSENESS_KG,
                           confidence=0.9)


class TestRegistry:
    def test_six_first_class_kinds(self):
        assert KINDS == ("disclosure", "pseudonym", "consent_change",
                         "reidentify", "population", "taint")
        assert set(kind_names()) == set(KINDS)

    def test_get_kind_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown analysis kind"):
            get_kind("dataflow")

    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_kind(AnalysisKind())

    def test_analyzer_keys_are_kind_scoped(self):
        """Each key leads with the kind name, so two kinds can never
        collide in the result cache even for equal configs."""
        config = AnalyzerConfig.build()
        keys = {name: get_kind(name).analyzer_key(config)
                for name in KINDS}
        assert len({key[0] for key in keys.values()}) == len(KINDS)

    def test_disclosure_config_does_not_rekey_pseudonym(self):
        """The analyzer-stage key slices the config per kind: a
        likelihood tweak must not invalidate pseudonym results."""
        base = AnalyzerConfig.build()
        tweaked = AnalyzerConfig.build(
            likelihood=LikelihoodModel([]))
        assert get_kind("disclosure").analyzer_key(base) != \
            get_kind("disclosure").analyzer_key(tweaked)
        assert get_kind("pseudonym").analyzer_key(base) == \
            get_kind("pseudonym").analyzer_key(tweaked)

    def test_dataset_enters_scoring_kind_keys(self):
        with_data = AnalyzerConfig.build(dataset=table1_records())
        without = AnalyzerConfig.build()
        assert get_kind("reidentify").analyzer_key(with_data) != \
            get_kind("reidentify").analyzer_key(without)
        assert get_kind("pseudonym").analyzer_key(with_data) != \
            get_kind("pseudonym").analyzer_key(without)

    def test_dataset_key_is_order_insensitive(self):
        records = table1_records()
        assert dataset_key(records) == \
            dataset_key(tuple(reversed(records)))
        assert dataset_key(None) is None


class TestPseudonymKind:
    def test_matches_direct_analyzer_on_table1(self):
        system = build_research_system()
        engine = BatchEngine(
            value_policy=_researcher_policy(),
            dataset=table1_records(),
            record_field_map=TABLE1_FIELD_MAP)
        job = AnalysisJob(system=system, user=surgery_patient(),
                          kind="pseudonym")
        result = engine.run([job]).results[0]
        assert result.kind == "pseudonym"
        assert result.detail("applicable") is True
        assert result.detail("sensitive_field") == "weight"
        assert result.detail("risks") > 0
        assert result.detail("scored") == result.detail("risks")
        # Table I: reading more quasi-identifiers raises violations;
        # the LTS reaches {height}, {age} and {age, height}, so some
        # scored path must violate.
        assert result.detail("violations") > 0
        assert result.max_level in ("medium", "high")

    def test_unscored_without_dataset(self):
        job = AnalysisJob(system=build_research_system(),
                          user=surgery_patient(), kind="pseudonym")
        result = BatchEngine().run([job]).results[0]
        assert result.detail("applicable") is True
        assert result.detail("scored") == 0
        assert result.max_level == "low"

    def test_inapplicable_on_plain_model(self):
        """A model that pseudonymises nothing rolls up as a no-op,
        not an error — mixed fleets must survive it."""
        system = build_scaled_system(actors=3, fields=4, stores=1,
                                     pseudonymise=False)
        job = AnalysisJob(
            system=system,
            user=UserProfile("u", agreed_services=["Intake"]),
            kind="pseudonym")
        result = BatchEngine().run([job]).results[0]
        assert result.detail("applicable") is False
        assert result.max_level == "none"

    def test_default_policy_prefers_sensitive_field(self):
        policy = default_policy_for(build_research_system())
        assert policy.sensitive_field == "weight"
        assert default_policy_for(build_scaled_system(
            pseudonymise=False)) is None


class TestPseudonymScreen:
    """ROADMAP item-4 rung: the per-kind clean predicate — pseudonym
    jobs that are statically inapplicable skip LTS generation under
    ``run(screen=True)`` and roll up in ``screened_by_kind``."""

    def _inapplicable_job(self):
        system = build_scaled_system(actors=3, fields=4, stores=1,
                                     pseudonymise=False)
        return AnalysisJob(
            system=system,
            user=UserProfile("u", agreed_services=["Intake"]),
            kind="pseudonym")

    def test_screen_outcome_decides_inapplicable_without_lts(self):
        engine = BatchEngine()
        outcome = get_kind("pseudonym").screen_outcome(
            self._inapplicable_job(), engine.config)
        assert outcome is not None
        assert outcome.max_level == "none"
        assert dict(outcome.details)["applicable"] is False

    def test_screen_outcome_defers_when_applicable(self):
        engine = BatchEngine()
        job = AnalysisJob(system=build_research_system(),
                          user=surgery_patient(), kind="pseudonym")
        assert get_kind("pseudonym").screen_outcome(
            job, engine.config) is None

    def test_base_kind_never_screens_statically(self):
        engine = BatchEngine()
        assert AnalysisKind.screen_outcome(
            get_kind("disclosure"), self._inapplicable_job(),
            engine.config) is None

    def test_screened_run_skips_lts_and_counts_by_kind(self):
        engine = BatchEngine(backend="serial")
        batch = engine.run([self._inapplicable_job()], screen=True)
        assert batch.stats.screened == 1
        assert batch.stats.screened_by_kind == {"pseudonym": 1}
        assert batch.stats.lts_generations == 0
        assert batch.stats.executed == 0
        result = batch.results[0]
        assert result.detail("screened") is True
        assert result.detail("applicable") is False

    def test_screened_result_matches_exact_run(self):
        screened = BatchEngine(backend="serial").run(
            [self._inapplicable_job()], screen=True).results[0]
        exact = BatchEngine(backend="serial").run(
            [self._inapplicable_job()]).results[0]
        assert screened.max_level == exact.max_level == "none"
        assert screened.detail("applicable") == \
            exact.detail("applicable") is False

    def test_static_screens_never_poison_the_result_cache(self):
        engine = BatchEngine(backend="serial")
        engine.run([self._inapplicable_job()], screen=True)
        exact = engine.run([self._inapplicable_job()])
        assert exact.stats.result_hits == 0
        assert not exact.results[0].detail("screened")

    def test_applicable_jobs_still_run_exactly(self):
        job = AnalysisJob(system=build_research_system(),
                          user=surgery_patient(), kind="pseudonym")
        batch = BatchEngine(backend="serial").run([job], screen=True)
        assert batch.stats.screened_by_kind.get("pseudonym", 0) == 0
        assert batch.results[0].detail("applicable") is True

    def test_stats_describe_and_wire_round_trip(self):
        from repro.service.messages import (
            stats_from_dict,
            stats_to_dict,
        )
        engine = BatchEngine(backend="serial")
        stats = engine.run([self._inapplicable_job()],
                           screen=True).stats
        clone = stats_from_dict(stats_to_dict(stats))
        assert clone.screened_by_kind == {"pseudonym": 1}
        assert clone.linted == stats.linted
        assert clone.lint_reuses == stats.lint_reuses


class TestConsentChangeKind:
    def test_default_whatif_withdraws_first_agreed_service(self):
        system = build_surgery_system()
        user = surgery_patient()
        job = AnalysisJob(system=system, user=user,
                          kind="consent_change")
        result = BatchEngine().run([job]).results[0]
        assert result.detail("withdraw") == ("MedicalService",)
        report = analyse_consent_change(system, user,
                                        withdraw=["MedicalService"])
        assert result.detail("before_level") == \
            report.before_level.value
        assert result.max_level == report.after_level.value

    def test_explicit_params_drive_the_change(self):
        system = build_surgery_system()
        job = AnalysisJob(system=system, user=surgery_patient(),
                          kind="consent_change",
                          params={"agree": [RESEARCH_SERVICE]})
        result = BatchEngine().run([job]).results[0]
        assert result.detail("agree") == (RESEARCH_SERVICE,)
        assert result.detail("withdraw") == ()
        report = analyse_consent_change(system, surgery_patient(),
                                        agree=[RESEARCH_SERVICE])
        assert result.max_level == report.after_level.value
        assert result.detail("risk_increases") == \
            report.risk_increases

    def test_params_enter_cache_identity(self):
        engine = BatchEngine()
        base = AnalysisJob(system=build_surgery_system(),
                           user=surgery_patient(),
                           kind="consent_change")
        other = AnalysisJob(system=base.system, user=base.user,
                            kind="consent_change",
                            params={"agree": [RESEARCH_SERVICE]})
        assert engine.fingerprint(base) != engine.fingerprint(other)

    def test_params_order_does_not_fork_cache(self):
        engine = BatchEngine()
        system = build_surgery_system()
        first = AnalysisJob(
            system=system, user=surgery_patient(),
            kind="consent_change",
            params={"agree": [RESEARCH_SERVICE],
                    "withdraw": ["MedicalService"]})
        second = AnalysisJob(
            system=system, user=surgery_patient(),
            kind="consent_change",
            params={"withdraw": ["MedicalService"],
                    "agree": [RESEARCH_SERVICE]})
        assert engine.fingerprint(first) == engine.fingerprint(second)

    def test_runs_without_an_lts(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(),
                          kind="consent_change")
        batch = BatchEngine().run([job])
        assert batch.stats.lts_generations == 0
        assert batch.results[0].states == 0


class TestReidentifyKind:
    def test_scores_table1_release(self):
        engine = BatchEngine(dataset=table1_records(),
                             record_field_map=TABLE1_FIELD_MAP)
        job = AnalysisJob(system=build_research_system(),
                          user=surgery_patient(), kind="reidentify")
        result = engine.run([job]).results[0]
        assert result.detail("scored") is True
        assert result.detail("findings") > 0
        # The release flows expose the sensitive value alongside the
        # quasi-identifiers, so the worst equivalence class is unique.
        assert result.detail("worst_risk") == pytest.approx(1.0)
        assert result.max_level == "high"

    def test_degrades_without_dataset(self):
        job = AnalysisJob(system=build_research_system(),
                          user=surgery_patient(), kind="reidentify")
        result = BatchEngine().run([job]).results[0]
        assert result.detail("scored") is False
        assert result.max_level == "none"


class TestPopulationKind:
    def test_population_outcome_shape(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(), kind="population",
                          params={"count": 8, "seed": 3})
        result = BatchEngine().run([job]).results[0]
        # The requesting patient joins the 8 simulated users; some
        # simulated personas may consent to nothing and be skipped.
        assert result.detail("analysed") + result.detail("skipped") == 9
        assert 0.0 <= result.detail("unacceptable_fraction") <= 1.0
        histogram = dict(result.detail("histogram"))
        assert sum(histogram.values()) == result.detail("analysed")
        assert result.max_level in ("none", "low", "medium", "high")

    def test_population_is_seed_deterministic(self):
        def run_once():
            job = AnalysisJob(system=build_surgery_system(),
                              user=surgery_patient(),
                              kind="population",
                              params={"count": 6, "seed": 7})
            return BatchEngine().run([job]).results[0].signature()
        assert run_once() == run_once()

    def test_population_params_enter_cache_identity(self):
        engine = BatchEngine()
        system = build_surgery_system()
        user = surgery_patient()
        fingerprints = {
            engine.fingerprint(AnalysisJob(
                system=system, user=user, kind="population",
                params=params))
            for params in ({"count": 4, "seed": 0},
                           {"count": 4, "seed": 1},
                           {"count": 5, "seed": 0})
        }
        assert len(fingerprints) == 3

    def test_hot_spots_name_actor_field_grants(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(), kind="population",
                          params={"count": 10, "seed": 1})
        result = BatchEngine().run([job]).results[0]
        spots = result.detail("hot_spots")
        assert spots, "surgery population should expose hot spots"
        for actor, field, count in spots:
            assert isinstance(actor, str) and isinstance(field, str)
            assert count >= 1
        counts = [count for _, _, count in spots]
        assert counts == sorted(counts, reverse=True)

    def test_bad_params_are_analysis_errors(self):
        from repro.errors import AnalysisError
        kind = get_kind("population")
        with pytest.raises(AnalysisError, match="population count"):
            kind.population_of(AnalysisJob(
                system=build_surgery_system(),
                user=surgery_patient(), kind="population",
                params={"count": -1}))
        with pytest.raises(AnalysisError, match="population count"):
            # Params are wire-reachable: one request must not buy an
            # unbounded simulation.
            kind.population_of(AnalysisJob(
                system=build_surgery_system(),
                user=surgery_patient(), kind="population",
                params={"count": kind.MAX_COUNT + 1}))
        with pytest.raises(AnalysisError, match="population seed"):
            kind.population_of(AnalysisJob(
                system=build_surgery_system(),
                user=surgery_patient(), kind="population",
                params={"seed": "xyz"}))

    def test_results_carry_score_breakdowns(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(), kind="population",
                          params={"count": 6, "seed": 2})
        result = BatchEngine().run([job]).results[0]
        assert 0.0 <= result.detail("privacy_score") <= 1.0
        assert dict(result.detail("score_weights")) == {
            "semantic": 0.5, "uniqueness": 0.3, "linkability": 0.2}
        fields = result.detail("field_scores")
        assert [name for name, *_ in fields] == \
            sorted(build_surgery_system().personal_fields())
        for _, semantic, uniqueness, linkability, composite in fields:
            for sub in (semantic, uniqueness, linkability, composite):
                assert 0.0 <= sub <= 1.0

    def test_weight_params_change_score_not_outcomes(self):
        def run(params):
            job = AnalysisJob(system=build_surgery_system(),
                              user=surgery_patient(),
                              kind="population", params=params)
            return BatchEngine().run([job]).results[0]
        base = run({"count": 6, "seed": 2})
        tilted = run({"count": 6, "seed": 2,
                      "weights": {"linkability": 1.0,
                                  "semantic": 0.0,
                                  "uniqueness": 0.0}})
        assert tilted.detail("histogram") == base.detail("histogram")
        assert tilted.detail("privacy_score") != \
            base.detail("privacy_score")
        assert tilted.fingerprint != base.fingerprint

    def test_bad_weight_params_are_analysis_errors(self):
        from repro.errors import AnalysisError
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(), kind="population",
                          params={"count": 2,
                                  "weights": {"semantic": -1}})
        with pytest.raises(AnalysisError, match="non-negative"):
            get_kind("population").analyse(
                job, None, AnalyzerConfig.build())

    def test_fleet_rollup_surfaces_skipped_and_mean_score(self):
        jobs = [AnalysisJob(system=build_surgery_system(),
                            user=surgery_patient(), kind="population",
                            params={"count": 12, "seed": seed},
                            scenario=f"s{seed}")
                for seed in (0, 1)]
        batch = BatchEngine().run(jobs)
        rollup = FleetReport(batch.results,
                             batch.stats).kind_rollups()["population"]
        assert rollup["skipped"] == sum(
            r.detail("skipped") for r in batch.results)
        assert rollup["users"] + rollup["skipped"] == 2 * (12 + 1)
        assert rollup["mean_privacy_score"] == pytest.approx(sum(
            r.detail("privacy_score")
            for r in batch.results) / 2, abs=1e-6)


class TestMixedFleets:
    def _jobs(self):
        system = build_surgery_system()
        user = surgery_patient()
        return [AnalysisJob(system=system, user=user, kind=kind,
                            scenario=f"s-{kind}", family="surgery")
                for kind in KINDS]

    def test_mixed_batch_executes_every_kind(self):
        batch = BatchEngine().run(self._jobs())
        assert [r.kind for r in batch.results] == list(KINDS)
        assert batch.stats.by_kind == {kind: 1 for kind in KINDS}

    def test_kinds_share_the_lts_memo_when_options_agree(self):
        """pseudonym and reidentify both generate over all services:
        one generation, one stage-2 reuse."""
        system = build_research_system()
        user = surgery_patient()
        jobs = [AnalysisJob(system=system, user=user, kind=kind)
                for kind in ("pseudonym", "reidentify")]
        batch = BatchEngine().run(jobs)
        assert batch.stats.lts_generations == 1
        assert batch.stats.lts_reuses == 1

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 4),
        ("process", 2),
    ])
    def test_parallel_mixed_batch_matches_serial(self, backend,
                                                 workers):
        serial = BatchEngine(backend="serial").run(self._jobs())
        parallel = BatchEngine(backend=backend,
                               workers=workers).run(self._jobs())
        assert [r.signature() for r in serial.results] == \
            [r.signature() for r in parallel.results]

    def test_mixed_results_are_cacheable(self):
        engine = BatchEngine()
        engine.run(self._jobs())
        warm = engine.run(self._jobs())
        assert warm.stats.result_hits == len(KINDS)
        assert warm.stats.executed == 0

    def test_fleet_report_rolls_up_by_kind(self):
        batch = BatchEngine().run(self._jobs())
        report = FleetReport(batch.results, batch.stats)
        assert report.kind_histogram() == {kind: 1 for kind in KINDS}
        rollups = report.kind_rollups()
        assert set(rollups) == set(KINDS)
        assert rollups["disclosure"]["events"] > 0
        assert "risk_increases" in rollups["consent_change"]
        assert "violations" in rollups["pseudonym"]
        assert "findings" in rollups["reidentify"]
        assert rollups["population"]["users"] > 0
        data = report.to_dict()
        assert data["kind_histogram"] == report.kind_histogram()
        assert "analysis kinds:" in report.describe()


class TestResolveOptions:
    def test_disclosure_default_mirrors_direct_analysis(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient())
        options = resolve_options(job)
        assert options == DisclosureRiskAnalyzer.default_options(
            job.system, job.user)

    def test_lts_kinds_default_to_full_generation(self):
        for kind in ("pseudonym", "reidentify"):
            job = AnalysisJob(system=build_research_system(),
                              user=surgery_patient(), kind=kind)
            options = resolve_options(job)
            assert options.services is None
            assert not options.include_potential_reads

    def test_consent_change_needs_no_generation(self):
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(),
                          kind="consent_change")
        assert resolve_options(job) is None


class TestLabelLeakGuard:
    """scenario/family/variant/job_id must never influence cache
    identity — asserted inside BatchEngine.fingerprint()."""

    def test_labels_do_not_move_fingerprints_across_kinds(self):
        engine = BatchEngine()
        system = build_surgery_system()
        user = surgery_patient()
        for kind in KINDS:
            plain = AnalysisJob(system=system, user=user, kind=kind)
            labelled = AnalysisJob(
                system=system, user=user, kind=kind,
                scenario="prod-run", family="surgery",
                variant="baseline", job_id="job-9999")
            assert engine.fingerprint(plain) == \
                engine.fingerprint(labelled)

    def test_guard_trips_on_a_leaking_recipe(self, monkeypatch):
        """If the key recipe ever starts reading labels, the engine
        refuses to run rather than silently forking the cache."""
        engine = BatchEngine()
        original = BatchEngine._fingerprint

        def leaking(self, job, model_fp, options):
            return original(self, job, model_fp, options) + job.scenario

        monkeypatch.setattr(BatchEngine, "_fingerprint", leaking)
        job = AnalysisJob(system=build_surgery_system(),
                          user=surgery_patient(), scenario="leaky")
        with pytest.raises(AssertionError, match="labels leaked"):
            engine.fingerprint(job)
