"""Scenario generation determinism and fleet aggregation."""

import json

import pytest

from repro.engine import (
    BatchEngine,
    FleetReport,
    ScenarioGenerator,
    model_fingerprint,
    scenario_jobs,
    user_fingerprint,
)


class TestScenarioGenerator:
    def test_deterministic_under_fixed_seed(self):
        first = ScenarioGenerator(seed=42).generate(12)
        second = ScenarioGenerator(seed=42).generate(12)
        assert [s.name for s in first] == [s.name for s in second]
        assert [model_fingerprint(s.system) for s in first] == \
            [model_fingerprint(s.system) for s in second]
        assert [
            tuple(user_fingerprint(u) for u in s.users) for s in first
        ] == [
            tuple(user_fingerprint(u) for u in s.users) for s in second
        ]

    def test_different_seeds_vary_the_fleet(self):
        first = ScenarioGenerator(seed=1).generate(12)
        second = ScenarioGenerator(seed=2).generate(12)
        fps = lambda stream: [model_fingerprint(s.system)  # noqa: E731
                              for s in stream]
        assert fps(first) != fps(second) or [
            tuple(user_fingerprint(u) for u in s.users) for s in first
        ] != [
            tuple(user_fingerprint(u) for u in s.users) for s in second
        ]

    def test_covers_every_family_and_both_anon_settings(self):
        scenarios = ScenarioGenerator(seed=0).generate(20)
        families = {s.family for s in scenarios}
        assert families == {"surgery", "loyalty", "scaled"}
        scaled_variants = {s.variant for s in scenarios
                           if s.family == "scaled"}
        assert any("anon" in v for v in scaled_variants)
        assert any("anon" not in v for v in scaled_variants)
        assert {"baseline", "tightened"} <= {
            s.variant for s in scenarios if s.family == "surgery"}

    def test_every_user_has_a_consent(self):
        scenarios = ScenarioGenerator(seed=3,
                                      personas_per_scenario=3).generate(8)
        for scenario in scenarios:
            for user in scenario.users:
                assert user.agreed_services

    def test_jobs_flattening(self):
        scenarios = ScenarioGenerator(seed=0,
                                      personas_per_scenario=2).generate(5)
        jobs = scenario_jobs(scenarios)
        assert len(jobs) == 10
        assert jobs[0].scenario == scenarios[0].name
        assert jobs[1].system is jobs[0].system

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ScenarioGenerator(personas_per_scenario=0)
        with pytest.raises(ValueError):
            ScenarioGenerator().generate(-1)


class TestFleetReport:
    @pytest.fixture(scope="class")
    def batch(self):
        jobs = scenario_jobs(ScenarioGenerator(seed=0).generate(12))
        return BatchEngine(backend="serial").run(jobs)

    def test_histogram_accounts_for_every_job(self, batch):
        report = FleetReport(batch.results, batch.stats)
        histogram = report.level_histogram()
        assert sum(histogram.values()) == len(batch.results)
        assert set(histogram) == {"none", "low", "medium", "high"}

    def test_matrix_histogram_counts_events(self, batch):
        report = FleetReport(batch.results)
        total_events = sum(len(r.events) for r in batch.results)
        assert sum(report.matrix_histogram().values()) == total_events

    def test_worst_is_ranked(self, batch):
        report = FleetReport(batch.results)
        worst = report.worst(4)
        ranks = [r.level.rank for r in worst]
        assert ranks == sorted(ranks, reverse=True)
        assert worst[0].level == report.max_level()

    def test_worst_events_are_unique_paths(self, batch):
        report = FleetReport(batch.results)
        events = report.worst_events(10)
        assert len(set(events)) == len(events)

    def test_scenario_deltas_use_family_baselines(self, batch):
        report = FleetReport(batch.results)
        deltas = report.scenario_deltas()
        assert set(deltas) == {"surgery", "loyalty", "scaled"}
        surgery = deltas["surgery"]["variants"]
        assert {"baseline", "tightened"} <= set(surgery)
        assert surgery["baseline"]["delta"] == 0
        # The IV.A remediation can only remove risk, never add it.
        assert surgery["tightened"]["delta"] <= 0

    def test_summary_table_and_describe(self, batch):
        report = FleetReport(batch.results, batch.stats)
        table = report.summary_table()
        assert "TOTAL" in table
        for family in ("surgery", "loyalty", "scaled"):
            assert family in table
        text = report.describe()
        assert "risk levels:" in text
        assert "backend" in text          # engine stats included

    def test_to_dict_is_json_compatible(self, batch):
        report = FleetReport(batch.results, batch.stats)
        payload = json.dumps(report.to_dict())
        assert json.loads(payload)["jobs"] == len(batch.results)

    def test_empty_fleet(self):
        report = FleetReport([])
        assert report.max_level().value == "none"
        assert sum(report.level_histogram().values()) == 0
        assert report.worst() == ()
