"""Capture golden LTS-generation snapshots into
``tests/data/golden_generation.json``.

The equivalence guard in ``test_property_based.py`` (and the
generation benchmark) compare the live generator against these
snapshots: state/transition/vector digests over a spread of systems
and option combinations, plus engine ``JobResult.signature()`` digests
over a mixed-kind fleet. The file in the repository was captured from
the pre-bitmask pure-Python generator; regenerating it against a
changed generator is only legitimate when the observable LTS contract
is *intended* to move (it then needs a fresh review of every digest).

Run from the repository root::

    PYTHONPATH=src python tests/capture_golden_generation.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

from repro.casestudies import (
    build_interleaving_system,
    build_loyalty_system,
    build_pipeline_system,
    build_scaled_system,
    build_surgery_system,
)
from repro.core import GenerationOptions, TransitionKind, generate_lts
from repro.engine import BatchEngine, ScenarioGenerator, scenario_jobs

DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                         "golden_generation.json")

#: The golden fleet: scenario seed/size of the signature digests. The
#: capture, the equivalence test and the generation bench must all
#: compute the digest stream the same way — hence one function here.
#: The kind mix is pinned to the registry as of capture time: the
#: golden is a frozen workload, and later-registered kinds (taint)
#: must not silently reshuffle which jobs it contains.
FLEET_SEED = 11
FLEET_COUNT = 8
FLEET_KINDS = ("consent_change", "disclosure", "population",
               "pseudonym", "reidentify")


def fleet_signature_digests():
    """sha256 digests of ``JobResult.signature()`` over the mixed-kind
    golden fleet, in result order."""
    jobs = scenario_jobs(
        ScenarioGenerator(seed=FLEET_SEED).generate(FLEET_COUNT),
        kinds=FLEET_KINDS)
    batch = BatchEngine(backend="serial").run(jobs)
    return [
        hashlib.sha256(repr(result.signature()).encode()).hexdigest()
        for result in batch.results
    ]


def lts_snapshot(lts) -> dict:
    """The full observable content of a generated LTS, as plain JSON.

    Includes state ids and transition order, so the digest also pins
    the BFS discovery order the generator has always produced.
    """
    states = []
    for state in lts.states:
        key = state.key
        states.append([
            state.sid,
            state.vector.mask,
            sorted(list(pair) for pair in key.holdings),
            sorted(list(pair) for pair in key.contents),
            sorted(list(pair) for pair in key.fired),
        ])
    transitions = []
    for t in lts.transitions:
        label = t.label
        transitions.append([
            t.tid, t.source, t.target, t.kind.value,
            label.action.value, list(label.fields), label.actor,
            label.source, label.target, label.schema, label.purpose,
            list(label.flow_key) if label.flow_key else None,
        ])
    return {
        "initial": lts.initial.sid,
        "states": states,
        "transitions": transitions,
    }


def digest(payload) -> str:
    encoded = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def workloads():
    surgery = build_surgery_system()
    first_store = sorted(surgery.datastores)[0]
    seeded_fields = surgery.datastores[first_store].field_names()[:2]
    return [
        ("surgery/default", surgery, None),
        ("surgery/sequence", surgery,
         GenerationOptions(ordering="sequence")),
        ("surgery/medical-only", surgery,
         GenerationOptions(services=("MedicalService",))),
        ("surgery/potential-reads", surgery,
         GenerationOptions(include_potential_reads=True)),
        ("surgery/potential-reads-restricted", surgery,
         GenerationOptions(
             include_potential_reads=True,
             potential_read_actors=frozenset(["Administrator"]))),
        ("surgery/deletes", surgery,
         GenerationOptions(include_deletes=True,
                           include_potential_reads=True)),
        ("surgery/seeded-stores", surgery,
         GenerationOptions(
             include_potential_reads=True,
             initial_store_contents={first_store: seeded_fields})),
        ("loyalty/default", build_loyalty_system(), None),
        ("loyalty/potential-reads", build_loyalty_system(),
         GenerationOptions(include_potential_reads=True)),
        ("scaled/pseudonymised",
         build_scaled_system(actors=4, fields=5, stores=2,
                             pseudonymise=True), None),
        ("interleaving/width8", build_interleaving_system(8), None),
        ("interleaving/width8-sequence", build_interleaving_system(8),
         GenerationOptions(ordering="sequence")),
        ("pipeline/depth16", build_pipeline_system(16), None),
    ]


def capture() -> dict:
    record = {"lts": {}, "signatures": {}}
    for name, system, options in workloads():
        lts = generate_lts(system, options)
        record["lts"][name] = {
            "states": len(lts),
            "transitions": len(lts.transitions),
            "flow_transitions": len(
                lts.transitions_of_kind(TransitionKind.FLOW)),
            "digest": digest(lts_snapshot(lts)),
        }
    record["signatures"]["fleet-seed11-allkinds"] = \
        fleet_signature_digests()
    return record


def main() -> int:
    record = capture()
    os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
    with open(DATA_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {DATA_PATH}")
    for name, entry in record["lts"].items():
        print(f"  {name}: {entry['states']} states, "
              f"{entry['transitions']} transitions")
    print(f"  {len(record['signatures']['fleet-seed11-allkinds'])} "
          "fleet signatures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
