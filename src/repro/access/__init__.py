"""Access control substrate: ACLs, RBAC and the combined policy (paper II.A)."""

from .acl import ALL_FIELDS, AccessControlList, AclEntry, Permission
from .policy import AccessPolicy
from .rbac import RbacPolicy, Role

__all__ = [
    "ALL_FIELDS",
    "AccessControlList",
    "AclEntry",
    "Permission",
    "AccessPolicy",
    "RbacPolicy",
    "Role",
]
