"""Combined access policy: ACL entries resolved through RBAC roles.

This is the object the LTS generator and the risk analyzers consult.
It answers the two questions the paper's method needs:

- *enforcement*: may actor ``a`` perform ``p`` on ``store.field``?
- *analysis*: which actors **could** read ``store.field``? (This drives
  the ``could identify`` state variables of section II.B and the
  "non-allowed actors with potential access" step of section III.A.)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..errors import ModelError
from .acl import ALL_FIELDS, AccessControlList, AclEntry, Permission
from .rbac import RbacPolicy


class AccessPolicy:
    """ACL + RBAC with a known universe of actors.

    ``actors`` is the set of actor names in the system model; it lets
    :meth:`actors_allowed` answer in terms of concrete actors even when
    grants are expressed against roles.
    """

    def __init__(self, acl: Optional[AccessControlList] = None,
                 rbac: Optional[RbacPolicy] = None,
                 actors: Iterable[str] = ()):
        self.acl = acl if acl is not None else AccessControlList()
        self.rbac = rbac if rbac is not None else RbacPolicy()
        self._actors: Set[str] = set(actors)

    # -- construction ------------------------------------------------------

    def register_actor(self, name: str) -> "AccessPolicy":
        self._actors.add(name)
        return self

    def allow(self, subject: str, permissions, store: str,
              fields: Iterable[str] = (ALL_FIELDS,)) -> "AccessPolicy":
        """Fluent ACL allow; ``subject`` may be an actor or role name."""
        self.acl.allow(subject, permissions, store, fields)
        return self

    def revoke(self, subject: str, permission: Permission, store: str,
               fields: Optional[Iterable[str]] = None,
               store_fields: Optional[Iterable[str]] = None) -> int:
        """Revoke a grant; expands wildcard entries when field-scoped.

        ``store_fields`` (the store schema's field names) is required to
        narrow a wildcard entry to "everything except the revoked
        fields".
        """
        if fields is not None:
            self._expand_wildcards(subject, store, store_fields)
        return self.acl.revoke(subject, permission, store, fields)

    def _expand_wildcards(self, subject: str, store: str,
                          store_fields: Optional[Iterable[str]]) -> None:
        entries = list(self.acl)
        needs_expansion = [
            e for e in entries
            if e.subject == subject and e.store == store
            and e.grants_all_fields
        ]
        if not needs_expansion:
            return
        if store_fields is None:
            raise ModelError(
                f"field-scoped revoke on {store!r} requires store_fields "
                "to expand wildcard grants"
            )
        concrete = tuple(store_fields)
        replacement = []
        for entry in entries:
            if entry in needs_expansion:
                replacement.append(AclEntry(
                    entry.subject, entry.store, entry.permissions, concrete))
            else:
                replacement.append(entry)
        self.acl._entries = replacement  # same-package rewrite

    # -- subject resolution ---------------------------------------------------

    def _subjects_for(self, actor: str) -> Set[str]:
        """The actor name plus every role the actor holds."""
        return {actor} | self.rbac.roles_of(actor)

    # -- enforcement ----------------------------------------------------------

    def is_allowed(self, actor: str, permission: Permission, store: str,
                   field_name: Optional[str] = None) -> bool:
        """Whether ``actor`` (directly or via role) holds the permission."""
        return any(
            self.acl.is_allowed(subject, permission, store, field_name)
            for subject in self._subjects_for(actor)
        )

    def can_read(self, actor: str, store: str,
                 field_name: Optional[str] = None) -> bool:
        return self.is_allowed(actor, Permission.READ, store, field_name)

    def can_create(self, actor: str, store: str,
                   field_name: Optional[str] = None) -> bool:
        return self.is_allowed(actor, Permission.CREATE, store, field_name)

    def can_delete(self, actor: str, store: str,
                   field_name: Optional[str] = None) -> bool:
        return self.is_allowed(actor, Permission.DELETE, store, field_name)

    # -- analysis ----------------------------------------------------------------

    def actors_allowed(self, permission: Permission, store: str,
                       field_name: Optional[str] = None) -> Set[str]:
        """Concrete actors holding the permission on ``store.field``.

        Role-subject grants are resolved to the actors holding the role;
        actor-subject grants must name a registered actor to count.
        """
        allowed: Set[str] = set()
        for actor in self._actors:
            if self.is_allowed(actor, permission, store, field_name):
                allowed.add(actor)
        return allowed

    def readers(self, store: str,
                field_name: Optional[str] = None) -> Set[str]:
        """Actors that *could* read ``store.field`` — the paper's
        'could identify' population for data stored there."""
        return self.actors_allowed(Permission.READ, store, field_name)

    def readable_fields(self, actor: str, store: str,
                        store_fields: Iterable[str]) -> Set[str]:
        """Subset of ``store_fields`` the actor may read."""
        return {
            name for name in store_fields
            if self.can_read(actor, store, name)
        }

    # -- misc -------------------------------------------------------------------

    @property
    def actors(self) -> Set[str]:
        return set(self._actors)

    def validate(self) -> None:
        """Check RBAC consistency and that ACL subjects resolve.

        An ACL subject must be a registered actor or a defined role;
        otherwise the grant is dead and almost certainly a typo.
        """
        self.rbac.validate()
        for entry in self.acl:
            if entry.subject in self._actors:
                continue
            if self.rbac.is_role(entry.subject):
                continue
            raise ModelError(
                f"ACL entry subject {entry.subject!r} is neither a "
                "registered actor nor a defined role"
            )

    def copy(self) -> "AccessPolicy":
        return AccessPolicy(self.acl.copy(), self.rbac.copy(), self._actors)

    def summary(self) -> Dict[str, list]:
        """Store -> human-readable grant lines, for reports."""
        stores: Dict[str, list] = {}
        for entry in self.acl:
            perms = ",".join(p.value for p in entry.permissions)
            fields = ",".join(entry.fields)
            stores.setdefault(entry.store, []).append(
                f"{entry.subject}: {perms} on [{fields}]"
            )
        return stores

    def __repr__(self) -> str:
        return (
            f"AccessPolicy(entries={len(self.acl)}, "
            f"actors={sorted(self._actors)})"
        )
