"""Access control lists over (subject, datastore, field, permission).

The paper assumes "traditional access control lists and role-based
access control" (section II.A). An :class:`AccessControlList` is a set
of allow entries; anything not explicitly allowed is denied. Subjects
may be actor names or role names — resolution of roles to actors is the
job of :class:`repro.access.rbac.RbacPolicy` and the combined
:class:`repro.access.policy.AccessPolicy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .._util import freeze_fields

ALL_FIELDS = "*"


class Permission(enum.Enum):
    """Datastore operations an entry can grant."""

    READ = "read"
    CREATE = "create"
    DELETE = "delete"

    @classmethod
    def from_name(cls, name: str) -> "Permission":
        aliases = {
            "read": cls.READ,
            "query": cls.READ,
            "create": cls.CREATE,
            "write": cls.CREATE,
            "insert": cls.CREATE,
            "delete": cls.DELETE,
        }
        normalised = name.lower()
        if normalised not in aliases:
            valid = ", ".join(sorted(aliases))
            raise ValueError(
                f"unknown permission {name!r}; expected one of: {valid}"
            )
        return aliases[normalised]


@dataclass(frozen=True)
class AclEntry:
    """One allow rule: ``subject`` may ``permissions`` on ``store.fields``.

    ``fields`` may be the wildcard :data:`ALL_FIELDS` tuple ``("*",)``
    meaning every field of the store's schema.
    """

    subject: str
    store: str
    permissions: Tuple[Permission, ...]
    fields: Tuple[str, ...] = dc_field(default=(ALL_FIELDS,))

    def __post_init__(self):
        if not self.subject:
            raise ValueError("ACL entry subject must be non-empty")
        if not self.store:
            raise ValueError("ACL entry store must be non-empty")
        if not self.permissions:
            raise ValueError("ACL entry must grant at least one permission")
        if not self.fields:
            raise ValueError(
                "ACL entry must name at least one field (or '*')"
            )
        object.__setattr__(self, "permissions",
                           tuple(sorted(set(self.permissions),
                                        key=lambda p: p.value)))
        object.__setattr__(self, "fields", freeze_fields(self.fields))

    @property
    def grants_all_fields(self) -> bool:
        return ALL_FIELDS in self.fields

    def covers(self, subject: str, permission: Permission, store: str,
               field_name: Optional[str] = None) -> bool:
        """Whether this entry allows the requested operation."""
        if self.subject != subject or self.store != store:
            return False
        if permission not in self.permissions:
            return False
        if field_name is None or self.grants_all_fields:
            return True
        return field_name in self.fields


class AccessControlList:
    """An ordered collection of :class:`AclEntry` allow rules."""

    def __init__(self, entries: Iterable[AclEntry] = ()):
        self._entries: List[AclEntry] = list(entries)

    def allow(self, subject: str, permissions, store: str,
              fields: Iterable[str] = (ALL_FIELDS,)) -> "AccessControlList":
        """Append an allow rule (fluent; returns self).

        ``permissions`` accepts a single :class:`Permission`, a
        permission name string, or an iterable of either.
        """
        if isinstance(permissions, (Permission, str)):
            permissions = [permissions]
        resolved = tuple(
            p if isinstance(p, Permission) else Permission.from_name(p)
            for p in permissions
        )
        self._entries.append(
            AclEntry(subject, store, resolved, tuple(fields))
        )
        return self

    def revoke(self, subject: str, permission: Permission, store: str,
               fields: Optional[Iterable[str]] = None) -> int:
        """Remove grants matching the arguments; returns entries rewritten.

        With ``fields=None`` the permission is removed for all fields of
        matching entries; otherwise only the named fields are removed
        and entries are narrowed, so revoking READ on one field leaves
        the rest of the grant intact. This is how section IV.A's "the
        access policies were changed accordingly" is done
        programmatically.

        Field-scoped revocation of a wildcard (``'*'``) entry needs the
        store schema to enumerate the remaining fields; use
        :meth:`repro.access.policy.AccessPolicy.revoke` for that, or
        revoke without ``fields``.
        """
        revoke_fields = None if fields is None else set(fields)
        rewritten = 0
        new_entries: List[AclEntry] = []
        for entry in self._entries:
            if entry.subject != subject or entry.store != store or \
                    permission not in entry.permissions:
                new_entries.append(entry)
                continue
            if revoke_fields is not None and entry.grants_all_fields:
                raise ValueError(
                    f"cannot revoke specific fields from wildcard grant "
                    f"{entry!r}; expand the wildcard against the store "
                    f"schema first (AccessPolicy.revoke does this)"
                )
            rewritten += 1
            other_permissions = tuple(
                p for p in entry.permissions if p is not permission
            )
            if other_permissions:
                new_entries.append(AclEntry(
                    entry.subject, entry.store, other_permissions,
                    entry.fields))
            if revoke_fields is not None:
                kept_fields = tuple(
                    f for f in entry.fields if f not in revoke_fields
                )
                if kept_fields:
                    new_entries.append(AclEntry(
                        entry.subject, entry.store, (permission,),
                        kept_fields))
        self._entries = new_entries
        return rewritten

    def is_allowed(self, subject: str, permission: Permission, store: str,
                   field_name: Optional[str] = None) -> bool:
        """Whether any entry allows the operation (default-deny)."""
        return any(
            entry.covers(subject, permission, store, field_name)
            for entry in self._entries
        )

    def subjects_allowed(self, permission: Permission, store: str,
                         field_name: Optional[str] = None) -> Set[str]:
        """All subjects with the permission on ``store`` (and field)."""
        return {
            entry.subject for entry in self._entries
            if entry.covers(entry.subject, permission, store, field_name)
        }

    def entries_for(self, store: str) -> Tuple[AclEntry, ...]:
        return tuple(e for e in self._entries if e.store == store)

    def __iter__(self) -> Iterator[AclEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"AccessControlList({self._entries!r})"

    def copy(self) -> "AccessControlList":
        return AccessControlList(self._entries)
