"""Role-based access control: roles, hierarchies and actor assignments.

RBAC complements the plain ACL (section II.A): ACL entries may name a
*role* as their subject, and this module resolves which actors hold a
role. Role hierarchies are supported — a senior role inherits every
junior role's grants (e.g. ``clinician`` covering ``doctor`` and
``nurse``), which keeps healthcare-style policies short.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, Set, Tuple

from ..errors import ModelError


@dataclass(frozen=True)
class Role:
    """A named role, optionally inheriting from parent roles.

    An actor holding this role also holds (for permission purposes)
    every role reachable through ``parents``.
    """

    name: str
    parents: Tuple[str, ...] = dc_field(default=())

    def __post_init__(self):
        if not self.name:
            raise ValueError("role name must be non-empty")
        object.__setattr__(self, "parents", tuple(self.parents))


class RbacPolicy:
    """Role definitions plus actor-to-role assignments."""

    def __init__(self):
        self._roles: Dict[str, Role] = {}
        self._assignments: Dict[str, Set[str]] = {}

    # -- construction -----------------------------------------------------

    def define_role(self, name: str,
                    parents: Iterable[str] = ()) -> "RbacPolicy":
        """Register a role (fluent). Parents may be declared later."""
        if name in self._roles:
            raise ModelError(f"role {name!r} is already defined")
        self._roles[name] = Role(name, tuple(parents))
        return self

    def assign(self, actor: str, *roles: str) -> "RbacPolicy":
        """Grant ``actor`` the given roles (fluent)."""
        if not roles:
            raise ValueError("assign() needs at least one role")
        granted = self._assignments.setdefault(actor, set())
        granted.update(roles)
        return self

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check that parents and assignments reference defined roles
        and that the hierarchy is acyclic."""
        for role in self._roles.values():
            for parent in role.parents:
                if parent not in self._roles:
                    raise ModelError(
                        f"role {role.name!r} inherits from undefined "
                        f"role {parent!r}"
                    )
        for actor, roles in self._assignments.items():
            for role in roles:
                if role not in self._roles:
                    raise ModelError(
                        f"actor {actor!r} is assigned undefined role {role!r}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Raise :class:`ModelError` if the parent graph has a cycle
        (Kahn's algorithm: a cycle leaves roles with unprocessed edges)."""
        out_degree = {
            name: len([p for p in role.parents if p in self._roles])
            for name, role in self._roles.items()
        }
        dependants: Dict[str, list] = {name: [] for name in self._roles}
        for name, role in self._roles.items():
            for parent in role.parents:
                if parent in self._roles:
                    dependants[parent].append(name)
        ready = [name for name, degree in out_degree.items() if degree == 0]
        processed = 0
        while ready:
            current = ready.pop()
            processed += 1
            for child in dependants[current]:
                out_degree[child] -= 1
                if out_degree[child] == 0:
                    ready.append(child)
        if processed != len(self._roles):
            cyclic = sorted(
                name for name, degree in out_degree.items() if degree > 0
            )
            raise ModelError(
                "role hierarchy contains a cycle involving: "
                + ", ".join(cyclic)
            )

    # -- queries -------------------------------------------------------------

    def _closure(self, role_name: str) -> Set[str]:
        """All roles implied by holding ``role_name`` (inclusive).

        Plain BFS reachability; safe even on cyclic graphs (validation
        reports cycles separately).
        """
        result: Set[str] = set()
        stack = [role_name]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            role = self._roles.get(current)
            if role is not None:
                stack.extend(
                    parent for parent in role.parents
                    if parent not in result
                )
        return result

    def roles_of(self, actor: str) -> Set[str]:
        """Every role the actor holds, including inherited ones."""
        held: Set[str] = set()
        for direct in self._assignments.get(actor, ()):
            held |= self._closure(direct)
        return held

    def has_role(self, actor: str, role: str) -> bool:
        return role in self.roles_of(actor)

    def actors_with_role(self, role: str) -> Set[str]:
        """Every actor holding ``role`` directly or via inheritance."""
        return {
            actor for actor in self._assignments
            if role in self.roles_of(actor)
        }

    def defined_roles(self) -> Tuple[str, ...]:
        return tuple(self._roles)

    def assignments(self) -> Dict[str, Tuple[str, ...]]:
        """Direct (non-inherited) assignments, for serialization."""
        return {
            actor: tuple(sorted(roles))
            for actor, roles in self._assignments.items()
        }

    def is_role(self, name: str) -> bool:
        return name in self._roles

    def copy(self) -> "RbacPolicy":
        duplicate = RbacPolicy()
        duplicate._roles = dict(self._roles)
        duplicate._assignments = {
            actor: set(roles) for actor, roles in self._assignments.items()
        }
        return duplicate

    def __repr__(self) -> str:
        return (
            f"RbacPolicy(roles={list(self._roles)}, "
            f"assignments={self.assignments()})"
        )
