"""Programmatic generation of diverse analysis workloads.

The engine needs fleets of varied (model, users) pairs; this module
manufactures them deterministically from a seed. Four template
families:

- ``surgery`` — the paper's Fig. 1 healthcare model, in its shipped
  (``baseline``) and remediated (``tightened``, the IV.A fix) variants;
- ``loyalty`` — the retail loyalty programme case study;
- ``scaled`` — :func:`~repro.casestudies.build_scaled_system` at
  seed-drawn actor/field/store sizes, pseudonymisation on and off.

Every scenario carries a persona-sampled user population (Westin
fundamentalist / pragmatist / unconcerned), so risk outcomes vary
realistically across the fleet. The whole stream is a pure function of
``(seed, personas_per_scenario)``: the same seed reproduces identical
models, identical users and therefore identical job fingerprints —
which is what makes fleet runs cacheable end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..casestudies import (
    ANALYTICS_SERVICE,
    CHECKOUT_SERVICE,
    INTAKE_SERVICE,
    MEDICAL_SERVICE,
    OFFERS_SERVICE,
    PROCESSING_SERVICE,
    RESEARCH_SERVICE,
    build_loyalty_system,
    build_scaled_system,
    build_surgery_system,
    tighten_administrator_policy,
)
from ..consent import UserProfile
from ..consent.personas import (
    FUNDAMENTALIST,
    PRAGMATIST,
    UNCONCERNED,
    Persona,
    profile_from_persona,
)
from ..core import GenerationOptions
from ..dfd import SystemModel
from .jobs import AnalysisJob

_PERSONA_CYCLE: Tuple[Persona, ...] = (PRAGMATIST, FUNDAMENTALIST,
                                       UNCONCERNED)


@dataclass(frozen=True)
class ModelScenario:
    """One generated workload: a model and the users to assess it for."""

    name: str
    family: str
    variant: str
    system: SystemModel
    users: Tuple[UserProfile, ...]
    options: Optional[GenerationOptions] = None

    def jobs(self, kind: str = "disclosure") -> List[AnalysisJob]:
        """One ``kind`` analysis job per user of the scenario."""
        return [
            AnalysisJob(
                system=self.system,
                user=user,
                options=self.options,
                kind=kind,
                scenario=self.name,
                family=self.family,
                variant=self.variant,
            )
            for user in self.users
        ]


def scenario_jobs(scenarios: Sequence[ModelScenario],
                  kinds: Sequence[str] = ("disclosure",)
                  ) -> List[AnalysisJob]:
    """Flatten scenarios into the engine's job list.

    With several ``kinds``, scenarios cycle through them — the fleet
    mixes analysis lenses across its models rather than multiplying
    every scenario by every kind (pass the same scenario list once per
    kind for the cross product).
    """
    kinds = tuple(kinds) or ("disclosure",)
    jobs: List[AnalysisJob] = []
    for index, scenario in enumerate(scenarios):
        jobs.extend(scenario.jobs(kind=kinds[index % len(kinds)]))
    return jobs


class ScenarioGenerator:
    """Deterministic scenario stream over the template families.

    ``generate(count)`` cycles the families (surgery baseline, surgery
    tightened, loyalty, scaled) and draws per-scenario parameters and
    user populations from a PRNG seeded once — the same ``seed`` always
    yields the same fleet.
    """

    def __init__(self, seed: int = 0, personas_per_scenario: int = 2):
        if personas_per_scenario < 1:
            raise ValueError(
                "personas_per_scenario must be >= 1, got "
                f"{personas_per_scenario}")
        self.seed = seed
        self.personas_per_scenario = personas_per_scenario

    # -- users -------------------------------------------------------------

    def _users(self, index: int, system: SystemModel,
               services: Sequence[str], schema_name: str,
               rng: random.Random) -> Tuple[UserProfile, ...]:
        fields = system.schemas[schema_name]
        users = []
        for offset in range(self.personas_per_scenario):
            persona = _PERSONA_CYCLE[(index + offset) % len(_PERSONA_CYCLE)]
            profile = profile_from_persona(
                f"s{index:03d}-u{offset}[{persona.name}]", persona,
                fields, services, rng)
            if not profile.agreed_services:
                # Disclosure analysis needs at least one consent; force
                # the persona onto a deterministic-but-varied service.
                profile.agree_to(services[(index + offset) % len(services)])
            users.append(profile)
        return tuple(users)

    # -- templates ------------------------------------------------------------

    def _surgery(self, index: int, rng: random.Random,
                 tightened: bool) -> ModelScenario:
        system = build_surgery_system()
        variant = "baseline"
        if tightened:
            tighten_administrator_policy(system)
            variant = "tightened"
        users = self._users(index, system,
                            (MEDICAL_SERVICE, RESEARCH_SERVICE),
                            "EHRSchema", rng)
        return ModelScenario(
            name=f"surgery-{variant}#{index:03d}",
            family="surgery", variant=variant,
            system=system, users=users)

    def _loyalty(self, index: int, rng: random.Random) -> ModelScenario:
        system = build_loyalty_system()
        users = self._users(
            index, system,
            (CHECKOUT_SERVICE, OFFERS_SERVICE, ANALYTICS_SERVICE),
            "PurchaseSchema", rng)
        return ModelScenario(
            name=f"loyalty-baseline#{index:03d}",
            family="loyalty", variant="baseline",
            system=system, users=users)

    def _scaled(self, index: int, rng: random.Random) -> ModelScenario:
        actors = rng.randint(2, 6)
        fields = rng.randint(3, 8)
        stores = rng.randint(1, 3)
        pseudonymise = rng.random() < 0.5
        system = build_scaled_system(actors=actors, fields=fields,
                                     stores=stores,
                                     pseudonymise=pseudonymise)
        variant = (f"a{actors}-f{fields}-s{stores}"
                   f"{'-anon' if pseudonymise else ''}")
        users = self._users(index, system,
                            (INTAKE_SERVICE, PROCESSING_SERVICE),
                            "RecordSchema", rng)
        return ModelScenario(
            name=f"scaled-{variant}#{index:03d}",
            family="scaled", variant=variant,
            system=system, users=users)

    # -- the stream ----------------------------------------------------------------

    def generate(self, count: int) -> List[ModelScenario]:
        """The first ``count`` scenarios of this seed's stream."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = random.Random(self.seed)
        scenarios: List[ModelScenario] = []
        for index in range(count):
            kind = index % 4
            if kind == 0:
                scenarios.append(self._surgery(index, rng,
                                               tightened=False))
            elif kind == 1:
                scenarios.append(self._surgery(index, rng,
                                               tightened=True))
            elif kind == 2:
                scenarios.append(self._loyalty(index, rng))
            else:
                scenarios.append(self._scaled(index, rng))
        return scenarios
