"""The analysis-kind registry: the engine's typed job taxonomy.

The paper's method is more than disclosure detection — it prescribes
pseudonymisation checks (III.B), consent-change what-ifs and
re-identification exposure (V). Each of those is an
:class:`AnalysisKind` here: a stateless strategy object declaring

- its **analyzer-stage cache key** (which parts of the engine
  configuration its outcome depends on),
- its **default generation options** (what LTS it wants, if any),
- how to **analyse** one job into a flat, picklable outcome, and
- how to **aggregate** its results at fleet level.

Kinds are module-level singletons registered by name, so they pickle
by reference and cross the process-backend boundary for free. The
shared engine configuration travels as one :class:`AnalyzerConfig`
value object; each kind pulls only the slice it declared in its
``analyzer_key`` — which is precisely why a likelihood-model tweak
re-keys disclosure jobs but leaves cached pseudonymisation results
valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, ClassVar, Dict, Mapping, NamedTuple,
                    Optional, Sequence, Tuple)

from ..consent.personas import simulate_users
from ..core import GenerationOptions
from ..core.lts import LTS
from ..core.risk import (
    DisclosureRiskAnalyzer,
    LikelihoodModel,
    PseudonymisationRiskAnalyzer,
    ReidentificationAnnotator,
    RiskLevel,
    RiskMatrix,
    analyse_consent_change,
)
from ..core.risk.population import (PopulationAnalyzer,
                                    VectorizedPopulationAnalyzer)
from ..core.risk.pseudonym import default_policy_for
from ..core.risk.scores import ScoreWeights
from ..core.risk.valuerisk import ValueRiskPolicy
from ..datastore import Record
from ..errors import AnalysisError
from ..schema import anon_name
from .jobs import AnalysisJob, RiskEventSummary, summarize_events


def dataset_key(records: Optional[Sequence[Record]]
                ) -> Optional[Tuple[tuple, ...]]:
    """A stable, JSON-encodable identity for a released dataset.

    Record values may be rich objects (e.g. generalisation intervals),
    so values key by ``repr``; records sort by their canonical form so
    load order is irrelevant.
    """
    if records is None:
        return None
    return tuple(sorted(
        tuple(sorted((name, repr(record[name])) for name in record))
        for record in records
    ))


@dataclass(frozen=True)
class AnalyzerConfig:
    """The engine-level analyzer configuration shared by every job.

    One picklable value object covering all kinds; each kind's
    ``analyzer_key`` names the slice it actually reads, so unrelated
    settings never invalidate a kind's cached results.

    ``likelihood``/``matrix`` drive disclosure and consent-change
    assessment; ``value_policy`` the pseudonymisation inference check
    (derived per-model when None); ``dataset``/``population``/
    ``record_field_map``/``reid_threshold`` the data-backed scoring of
    the pseudonym and reidentify kinds (both stay useful without data:
    unscored risk transitions, empty findings).
    """

    likelihood: LikelihoodModel
    matrix: RiskMatrix
    value_policy: Optional[ValueRiskPolicy] = None
    dataset: Optional[Tuple[Record, ...]] = None
    population: Optional[Tuple[Record, ...]] = None
    record_field_map: Optional[Tuple[Tuple[str, str], ...]] = None
    reid_threshold: float = 0.5

    @classmethod
    def build(cls, likelihood: Optional[LikelihoodModel] = None,
              matrix: Optional[RiskMatrix] = None,
              value_policy: Optional[ValueRiskPolicy] = None,
              dataset: Optional[Sequence[Record]] = None,
              population: Optional[Sequence[Record]] = None,
              record_field_map: Optional[Mapping[str, str]] = None,
              reid_threshold: float = 0.5) -> "AnalyzerConfig":
        """Normalise user-facing inputs (example defaults, tuples)."""
        return cls(
            likelihood=likelihood if likelihood is not None
            else LikelihoodModel.example(),
            matrix=matrix if matrix is not None else RiskMatrix.example(),
            value_policy=value_policy,
            dataset=tuple(dataset) if dataset is not None else None,
            population=tuple(population)
            if population is not None else None,
            record_field_map=tuple(sorted(record_field_map.items()))
            if record_field_map is not None else None,
            reid_threshold=reid_threshold,
        )

    def field_map(self) -> Optional[Dict[str, str]]:
        return dict(self.record_field_map) \
            if self.record_field_map is not None else None


class KindOutcome(NamedTuple):
    """What one kind's ``analyse`` produces for one job."""

    max_level: str
    events: Tuple[RiskEventSummary, ...]
    non_allowed_actors: Tuple[str, ...]
    details: Tuple[Tuple[str, Any], ...]


class AnalysisKind:
    """One entry of the analysis-kind registry.

    Subclasses are stateless: all configuration arrives through the
    :class:`AnalyzerConfig` and the job's ``params``.
    """

    #: Registry name; the value of :attr:`AnalysisJob.kind`.
    name: ClassVar[str] = ""
    #: Whether ``analyse`` consumes a generated LTS (and therefore
    #: participates in the LTS-stage cache). Kinds that orchestrate
    #: their own generations (consent what-ifs) opt out.
    uses_lts: ClassVar[bool] = True
    #: Whether a clean taint certificate proves this kind's outcome is
    #: zero-event, letting ``BatchEngine.run(screen=True)`` skip exact
    #: generation. Only sound for kinds whose events are exactly the
    #: READ-by-non-allowed-actor transitions the closure bounds.
    screenable: ClassVar[bool] = False

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        """The slice of ``config`` this kind's outcome depends on —
        the kind's contribution to the analyzer-stage fingerprint."""
        raise NotImplementedError

    def default_options(self, job: AnalysisJob
                        ) -> Optional[GenerationOptions]:
        """The generation this kind wants when the job names none
        (None for kinds that generate internally)."""
        raise NotImplementedError

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        """Run the analysis; ``lts`` is a private instance (kinds may
        mutate it) and None when :attr:`uses_lts` is False."""
        raise NotImplementedError

    def screen_outcome(self, job: AnalysisJob,
                       config: AnalyzerConfig) -> Optional[KindOutcome]:
        """A statically-provable outcome for ``job``, or None.

        The per-kind clean predicate behind ``BatchEngine.run(
        screen=True)`` for kinds that are not certificate-screenable:
        return the exact :class:`KindOutcome` that ``analyse`` would
        produce when that is decidable *without generating the LTS*
        (e.g. the pseudonym kind's applicability test), else None to
        run exact analysis. Must only return outcomes that are provably
        identical to the exact analyser's — the engine serves them as
        real results (never cached, mirroring certificate screens).
        """
        return None

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        """Fleet-level rollup of this kind's results (hook for
        :class:`~repro.engine.aggregate.FleetReport`)."""
        worst = max((r.level for r in results), default=RiskLevel.NONE)
        return {"jobs": len(results), "max_level": worst.value}


class DisclosureKind(AnalysisKind):
    """Unwanted-disclosure analysis (paper III.A) — the original job."""

    name = "disclosure"
    screenable = True

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        return ("disclosure",
                DisclosureRiskAnalyzer.configuration_key(
                    config.likelihood, config.matrix))

    def default_options(self, job: AnalysisJob) -> GenerationOptions:
        return DisclosureRiskAnalyzer.default_options(job.system,
                                                      job.user)

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        analyzer = DisclosureRiskAnalyzer(
            job.system, config.likelihood, config.matrix)
        report = analyzer.analyse(job.user, lts=lts)
        return KindOutcome(
            max_level=report.max_level.value,
            events=summarize_events(report),
            non_allowed_actors=report.non_allowed_actors,
            details=(),
        )

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        rollup = super().aggregate(results)
        rollup["events"] = sum(len(r.events) for r in results)
        screened = sum(1 for r in results if r.detail("screened"))
        if screened:
            rollup["screened"] = screened
        return rollup


class TaintKind(AnalysisKind):
    """Static taint pre-screen (ROADMAP item 4) — triage before
    state-space search.

    A sound over-approximation on the DFD graph: no LTS, no state
    explosion, an instant answer to "can field F ever reach actor A".
    ``max_level`` is a triage verdict, not an exact assessment:
    ``none`` when the closure *proves* the disclosure analyzer would
    report zero events for this user, ``low`` when the model is
    flagged for exact analysis. Shares its default generation options
    with the disclosure kind so the certificate it caches is exactly
    the one ``BatchEngine.run(screen=True)`` consults.
    """

    name = "taint"
    uses_lts = False

    #: How many flagged pairs / witness steps the job details carry.
    DETAIL_LIMIT = 8

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        from ..taint import CERT_FORMAT
        return ("taint", CERT_FORMAT)

    def default_options(self, job: AnalysisJob) -> GenerationOptions:
        return DisclosureRiskAnalyzer.default_options(job.system,
                                                      job.user)

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        from ..taint import certificate_from_report, compute_taint
        from .fingerprint import model_fingerprint
        options = job.options if job.options is not None \
            else self.default_options(job)
        report = compute_taint(job.system, options)
        certificate = certificate_from_report(
            report, job.system, model_fingerprint(job.system))
        non_allowed = tuple(sorted(
            job.user.non_allowed_actors(job.system)))
        clean = certificate.clean_for(non_allowed)
        flagged = tuple(
            (actor,
             tuple(sorted(report.potential_read_fields.get(
                 actor, frozenset()) |
                 report.flow_read_fields.get(actor, frozenset()))))
            for actor in report.flagged_actors()
            if actor in non_allowed)[:self.DETAIL_LIMIT]
        witnesses = tuple(
            (field_name, actor,
             report.witness_path(field_name, actor))
            for actor, fields in flagged for field_name in fields[:1]
        )[:self.DETAIL_LIMIT]
        level = RiskLevel.NONE if clean else RiskLevel.LOW
        return KindOutcome(
            max_level=level.value, events=(),
            non_allowed_actors=non_allowed,
            details=(
                ("clean", clean),
                ("tracked_atoms", len(certificate.tracked_atoms)),
                ("blockers", certificate.blockers),
                ("flagged", flagged),
                ("witnesses", witnesses),
                ("certificate", certificate.fingerprint()),
            ))

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        rollup = super().aggregate(results)
        rollup["clean"] = sum(
            1 for r in results if r.detail("clean"))
        rollup["flagged"] = sum(
            1 for r in results if not r.detail("clean"))
        return rollup


class PseudonymKind(AnalysisKind):
    """Pseudonymisation value-inference risk (paper III.B, Fig. 4).

    Injects the dotted risk transitions into the job's LTS and scores
    them against the configured dataset (unscored without one). On
    models that pseudonymise nothing the outcome is a no-op marked
    ``applicable=False`` rather than an error, so mixed fleets roll up
    cleanly.

    Triage mapping (engine-level, not paper semantics): ``high`` when
    any scored risk violates for at least half its records, ``medium``
    on any violation, ``low`` when risk transitions exist, ``none``
    otherwise.
    """

    name = "pseudonym"

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        return ("pseudonym",
                config.value_policy.cache_key()
                if config.value_policy is not None else None,
                dataset_key(config.dataset),
                config.record_field_map)

    def default_options(self, job: AnalysisJob) -> GenerationOptions:
        # All services: the release flows that move pseudonymised data
        # are usually outside the user's agreed set.
        return GenerationOptions()

    def _policy(self, job: AnalysisJob,
                config: AnalyzerConfig) -> Optional[ValueRiskPolicy]:
        if config.value_policy is not None:
            return config.value_policy
        return default_policy_for(job.system)

    def screen_outcome(self, job: AnalysisJob,
                       config: AnalyzerConfig) -> Optional[KindOutcome]:
        """The exact not-applicable outcome, decided without an LTS.

        ``analyse`` tests applicability against ``lts.registry.fields``,
        and the generator seeds that registry verbatim from
        ``system.personal_fields()`` — so the test is a pure function
        of the model and this screen is sound: when the pseudonymised
        sensitive field is not in the field universe, exact analysis
        provably returns the same no-op outcome built here.
        """
        policy = self._policy(job, config)
        if policy is None or \
                anon_name(policy.sensitive_field) not in \
                job.system.personal_fields():
            return KindOutcome(
                max_level=RiskLevel.NONE.value, events=(),
                non_allowed_actors=(),
                details=(("applicable", False),))
        return None

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        policy = self._policy(job, config)
        applicable = (
            policy is not None
            and anon_name(policy.sensitive_field) in lts.registry.fields
        )
        if not applicable:
            return KindOutcome(
                max_level=RiskLevel.NONE.value, events=(),
                non_allowed_actors=(),
                details=(("applicable", False),))
        analyzer = PseudonymisationRiskAnalyzer(
            job.system, policy, dataset=config.dataset,
            record_field_map=config.field_map())
        risks = analyzer.annotate(lts)
        scored = [r for r in risks if r.result is not None]
        violations = sum(r.result.violations for r in scored)
        worst_fraction = max(
            (r.result.violation_fraction for r in scored), default=0.0)
        if not risks:
            level = RiskLevel.NONE
        elif worst_fraction >= 0.5:
            level = RiskLevel.HIGH
        elif violations:
            level = RiskLevel.MEDIUM
        else:
            level = RiskLevel.LOW
        return KindOutcome(
            max_level=level.value, events=(), non_allowed_actors=(),
            details=(
                ("applicable", True),
                ("sensitive_field", policy.sensitive_field),
                ("risks", len(risks)),
                ("scored", len(scored)),
                ("violations", violations),
                ("worst_fraction", round(worst_fraction, 6)),
                ("paths", tuple(r.summary_tuple() for r in risks)),
            ))

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        rollup = super().aggregate(results)
        rollup["applicable"] = sum(
            1 for r in results if r.detail("applicable"))
        rollup["risks"] = sum(r.detail("risks", 0) for r in results)
        rollup["violations"] = sum(
            r.detail("violations", 0) for r in results)
        screened = sum(1 for r in results if r.detail("screened"))
        if screened:
            rollup["screened"] = screened
        return rollup


class ConsentChangeKind(AnalysisKind):
    """Consent-change what-if (the lifetime-monitoring motivation).

    ``params`` carry ``agree``/``withdraw`` service lists; absent
    both, the default what-if withdraws the user's first agreed
    service — the most common real change. The outcome's ``max_level``
    is the *post-change* risk (the answer the what-if asks for);
    before/after levels travel in the details.
    """

    name = "consent_change"
    uses_lts = False

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        return ("consent_change",
                DisclosureRiskAnalyzer.configuration_key(
                    config.likelihood, config.matrix))

    def default_options(self, job: AnalysisJob) -> None:
        return None

    @staticmethod
    def change_of(job: AnalysisJob) -> Tuple[Tuple[str, ...],
                                             Tuple[str, ...]]:
        """The (agree, withdraw) service lists of a job."""
        params = job.params or {}
        agree = tuple(params.get("agree", ()))
        withdraw = tuple(params.get("withdraw", ()))
        if not agree and not withdraw:
            if not job.user.agreed_services:
                raise AnalysisError(
                    f"user {job.user.name!r} has no agreed services "
                    "and the job names no consent change to analyse")
            withdraw = (job.user.agreed_services[0],)
        return agree, withdraw

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        agree, withdraw = self.change_of(job)
        report = analyse_consent_change(
            job.system, job.user, agree=agree, withdraw=withdraw,
            likelihood=config.likelihood, matrix=config.matrix)
        after_events = summarize_events(report.after) \
            if report.after is not None else ()
        return KindOutcome(
            max_level=report.after_level.value,
            events=after_events,
            non_allowed_actors=report.after.non_allowed_actors
            if report.after is not None else (),
            details=(
                ("agree", agree),
                ("withdraw", withdraw),
                ("before_level", report.before_level.value),
                ("after_level", report.after_level.value),
                ("risk_increases", report.risk_increases),
                ("newly_allowed", report.newly_allowed_actors),
                ("newly_non_allowed",
                 report.newly_non_allowed_actors),
            ))

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        rollup = super().aggregate(results)
        rollup["risk_increases"] = sum(
            1 for r in results if r.detail("risk_increases"))
        return rollup


class ReidentifyKind(AnalysisKind):
    """Re-identification exposure of pseudonymised reads (paper V).

    Scores every anon-field read in the LTS under the prosecutor /
    journalist / marketer attacker models against the configured
    released dataset. Without a dataset the kind degrades to an empty,
    explicitly-unscored outcome. Triage mapping: worst attacker risk
    at or above the configured threshold is ``high``, at or above half
    of it ``medium``, any finding ``low``.
    """

    name = "reidentify"

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        return ("reidentify",
                dataset_key(config.dataset),
                dataset_key(config.population),
                config.record_field_map,
                config.reid_threshold)

    def default_options(self, job: AnalysisJob) -> GenerationOptions:
        return GenerationOptions()

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        if config.dataset is None:
            return KindOutcome(
                max_level=RiskLevel.NONE.value, events=(),
                non_allowed_actors=(),
                details=(("scored", False), ("findings", 0)))
        annotator = ReidentificationAnnotator(
            config.dataset, population=config.population,
            record_field_map=config.field_map(),
            threshold=config.reid_threshold)
        findings = annotator.annotate(lts)
        worst = max((f.worst_risk for f in findings), default=0.0)
        if not findings:
            level = RiskLevel.NONE
        elif worst >= config.reid_threshold:
            level = RiskLevel.HIGH
        elif worst >= config.reid_threshold / 2:
            level = RiskLevel.MEDIUM
        else:
            level = RiskLevel.LOW
        return KindOutcome(
            max_level=level.value, events=(), non_allowed_actors=(),
            details=(
                ("scored", True),
                ("findings", len(findings)),
                ("worst_risk", round(worst, 6)),
                ("paths", tuple(f.summary_tuple() for f in findings)),
            ))

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        rollup = super().aggregate(results)
        rollup["findings"] = sum(
            r.detail("findings", 0) for r in results)
        rollup["worst_risk"] = max(
            (r.detail("worst_risk", 0.0) for r in results),
            default=0.0)
        return rollup


class PopulationKind(AnalysisKind):
    """Population-level disclosure outcomes (paper III).

    The paper's analysis "can be executed with running users of the
    system, or with simulated users in the development phase"; this
    kind evaluates a seed-deterministic Westin-persona population
    drawn against the model's own schemas and services through
    :class:`~repro.core.risk.population.VectorizedPopulationAnalyzer`
    — the batch mask pass whose outcomes are byte-identical to the
    per-user :class:`~repro.core.risk.population.PopulationAnalyzer`
    loop (the retained reference oracle; flip :attr:`implementation`
    to ``"looped"`` to run it). ``params`` take ``count`` (population
    size, default 24), ``seed`` (persona stream, default 0) and
    ``weights`` (composite privacy-score weight mapping with keys
    among ``semantic``/``uniqueness``/``linkability``); the job's user
    joins the population when it has agreed to at least one service,
    so one request answers both "how exposed am I" and "how exposed is
    everyone like me".

    The kind orchestrates its own per-consent-set generations (the
    population analyzers memoise them internally), so it opts out of
    the engine's LTS memo. Outcome ``max_level`` is the worst user's
    maximum risk; the details carry the histogram, the unacceptable
    fraction, the hot-spot grants whose removal would help the most
    users, and the decomposable privacy-score breakdown (per-field
    semantic/uniqueness/linkability sub-scores and their weighted
    composite — see :mod:`repro.core.risk.scores`).
    """

    name = "population"
    uses_lts = False

    #: Which evaluator runs the population: ``"vectorized"`` (the
    #: batch mask pass) or ``"looped"`` (the per-user reference
    #: oracle). A class attribute, deliberately *not* a job param:
    #: both paths are pinned byte-identical, so the choice must not
    #: fork cache identities or signatures.
    implementation: ClassVar[str] = "vectorized"

    #: Default simulated population size per job.
    DEFAULT_COUNT = 24
    #: Upper bound on one job's population — params are wire-reachable
    #: through the service, and a single request must not be able to
    #: wedge a server with an arbitrarily large simulation.
    MAX_COUNT = 100_000
    #: Hot-spot grants reported per job.
    HOT_SPOT_LIMIT = 5

    def analyzer_key(self, config: AnalyzerConfig) -> tuple:
        # The trailing 2 versions this kind's result payload: score
        # details were added to population outcomes, so pre-score disk
        # cache entries must not satisfy post-score lookups. The
        # record population feeds the uniqueness sub-score.
        return ("population", 2,
                DisclosureRiskAnalyzer.configuration_key(
                    config.likelihood, config.matrix),
                dataset_key(config.population))

    def default_options(self, job: AnalysisJob) -> None:
        return None

    @classmethod
    def population_of(cls, job: AnalysisJob) -> list:
        """The job's user population: params-drawn simulated users,
        led by the requesting profile when it holds any consent."""
        params = job.params or {}
        count = params.get("count", cls.DEFAULT_COUNT)
        seed = params.get("seed", 0)
        if not isinstance(count, int) or isinstance(count, bool) \
                or count < 0 or count > cls.MAX_COUNT:
            raise AnalysisError(
                f"population count must be an integer in "
                f"[0, {cls.MAX_COUNT}], got {count!r}")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise AnalysisError(
                f"population seed must be an integer, got {seed!r}")
        fields = [field
                  for _, schema in sorted(job.system.schemas.items())
                  for field in schema]
        services = sorted(job.system.services)
        users = simulate_users(count, fields, services, seed=seed)
        if job.user.agreed_services:
            users.insert(0, job.user)
        return users

    @staticmethod
    def weights_of(job: AnalysisJob) -> ScoreWeights:
        """The job's composite-score weight policy (validated; the
        default policy when the params name none)."""
        params = job.params or {}
        return ScoreWeights.from_params(params.get("weights"))

    def analyse(self, job: AnalysisJob, lts: Optional[LTS],
                config: AnalyzerConfig) -> KindOutcome:
        weights = self.weights_of(job)
        if self.implementation == "vectorized":
            analyzer_cls = VectorizedPopulationAnalyzer
        elif self.implementation == "looped":
            analyzer_cls = PopulationAnalyzer
        else:
            raise AnalysisError(
                f"unknown population implementation "
                f"{self.implementation!r}")
        analyzer = analyzer_cls(
            job.system, config.likelihood, config.matrix,
            weights=weights, records=config.population)
        report = analyzer.analyse(self.population_of(job))
        worst = max((o.max_level for o in report.outcomes),
                    default=RiskLevel.NONE)
        histogram = tuple(
            (level.value, count)
            for level, count in report.level_histogram().items())
        hot_spots = tuple(sorted(
            report.hot_spots().items(),
            key=lambda item: (-item[1], item[0]),
        ))[:self.HOT_SPOT_LIMIT]
        return KindOutcome(
            max_level=worst.value, events=(), non_allowed_actors=(),
            details=(
                ("analysed", report.analysed_count),
                ("skipped", len(report.skipped)),
                ("unacceptable_fraction",
                 round(report.unacceptable_fraction, 6)),
                ("histogram", histogram),
                ("hot_spots", tuple(
                    (actor, field, count)
                    for (actor, field), count in hot_spots)),
                ("privacy_score", round(report.composite_score, 6)),
                ("score_weights", weights.items()),
                ("field_scores", tuple(
                    score.summary_tuple()
                    for score in report.field_scores)),
            ))

    def aggregate(self, results: Sequence) -> Dict[str, Any]:
        rollup = super().aggregate(results)
        rollup["users"] = sum(
            r.detail("analysed", 0) for r in results)
        rollup["skipped"] = sum(
            r.detail("skipped", 0) for r in results)
        rollup["worst_unacceptable_fraction"] = max(
            (r.detail("unacceptable_fraction", 0.0) for r in results),
            default=0.0)
        scores = [r.detail("privacy_score") for r in results
                  if r.detail("privacy_score") is not None]
        rollup["mean_privacy_score"] = round(
            sum(scores) / len(scores), 6) if scores else 0.0
        return rollup


# -- the registry -------------------------------------------------------------

_REGISTRY: Dict[str, AnalysisKind] = {}


def register_kind(kind: AnalysisKind) -> AnalysisKind:
    """Add a kind to the registry (last registration wins)."""
    if not kind.name:
        raise ValueError("analysis kinds must declare a name")
    _REGISTRY[kind.name] = kind
    return kind


def get_kind(name: str) -> AnalysisKind:
    """The registered kind called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown analysis kind {name!r}; registered kinds: "
            f"{sorted(_REGISTRY)}") from None


def kind_names() -> Tuple[str, ...]:
    """The registered kind names, sorted."""
    return tuple(sorted(_REGISTRY))


DISCLOSURE = register_kind(DisclosureKind())
PSEUDONYM = register_kind(PseudonymKind())
CONSENT_CHANGE = register_kind(ConsentChangeKind())
REIDENTIFY = register_kind(ReidentifyKind())
POPULATION = register_kind(PopulationKind())
TAINT = register_kind(TaintKind())

#: The shipped first-class kinds, in registration order.
KINDS: Tuple[str, ...] = (DISCLOSURE.name, PSEUDONYM.name,
                          CONSENT_CHANGE.name, REIDENTIFY.name,
                          POPULATION.name, TAINT.name)
