"""Fleet-level aggregation of batch results.

A single :class:`~repro.engine.jobs.JobResult` answers "how risky is
this model for this user"; a :class:`FleetReport` answers the
service-operator questions over a whole sweep: where are the worst
exposures, how does risk distribute over the impact x likelihood
matrix, and what did a design variant (pseudonymisation on, policy
tightened) buy relative to its family baseline.

Fleets may mix analysis kinds; the shared rollups (level histogram,
worst cases, variant deltas) treat every kind's ``max_level``
uniformly, while each kind contributes its own aggregation (total
pseudonymisation violations, consent changes that raised risk, ...)
through its registry hook — see ``kind_rollups``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .._util import ascii_table
from ..core.risk import RiskLevel
from .jobs import JobResult, RiskEventSummary
from .kinds import get_kind
from .runner import EngineStats

_LEVELS = (RiskLevel.NONE, RiskLevel.LOW, RiskLevel.MEDIUM,
           RiskLevel.HIGH)


class FleetReport:
    """Aggregated view over the results of one (or more) batch runs."""

    def __init__(self, results: Sequence[JobResult],
                 stats: Optional[EngineStats] = None):
        self.results: Tuple[JobResult, ...] = tuple(results)
        self.stats = stats

    # -- distributions ----------------------------------------------------

    def level_histogram(self) -> Dict[str, int]:
        """Job count per maximum risk level, every level present."""
        histogram = {level.value: 0 for level in _LEVELS}
        for result in self.results:
            histogram[result.max_level] += 1
        return histogram

    def matrix_histogram(self) -> Dict[str, int]:
        """Risk-event count per impact/likelihood matrix cell."""
        histogram: Dict[str, int] = {}
        for result in self.results:
            for event in result.events:
                cell = (f"{event.impact_category}/"
                        f"{event.likelihood_category}")
                histogram[cell] = histogram.get(cell, 0) + 1
        return dict(sorted(histogram.items()))

    # -- worst cases ---------------------------------------------------------

    def worst(self, count: int = 5) -> Tuple[JobResult, ...]:
        """The riskiest jobs: level first, then event count."""
        ranked = sorted(
            self.results,
            key=lambda r: (-r.level.rank, -len(r.events), r.job_id))
        return tuple(ranked[:count])

    def worst_events(self, count: int = 5
                     ) -> Tuple[Tuple[str, RiskEventSummary], ...]:
        """The riskiest individual disclosure paths across the fleet,
        as (scenario, event) pairs ranked by level then impact."""
        # The same read can occur in many LTS states; one mention of a
        # (scenario, event) path is enough at fleet level.
        paths: List[Tuple[str, RiskEventSummary]] = list({
            (result.scenario, event)
            for result in self.results
            for event in result.events
        })
        # Full tie-break: sets iterate in arbitrary order, and equal
        # (level, impact, likelihood) ties must still render stably.
        paths.sort(key=lambda pair: (
            -RiskLevel.from_name(pair[1].level).rank,
            -pair[1].impact, -pair[1].likelihood, pair[0],
            pair[1].actor, pair[1].fields, pair[1].store or ""))
        return tuple(paths[:count])

    # -- grouping / deltas ----------------------------------------------------

    def by_kind(self) -> Dict[str, Tuple[JobResult, ...]]:
        """Results grouped by analysis kind, sorted by kind name."""
        grouped: Dict[str, List[JobResult]] = {}
        for result in self.results:
            grouped.setdefault(result.kind, []).append(result)
        return {kind: tuple(results)
                for kind, results in sorted(grouped.items())}

    def kind_histogram(self) -> Dict[str, int]:
        """Job count per analysis kind."""
        return {kind: len(results)
                for kind, results in self.by_kind().items()}

    def kind_rollups(self) -> Dict[str, Dict[str, object]]:
        """Each kind's own fleet aggregation (registry hook)."""
        return {
            kind: get_kind(kind).aggregate(results)
            for kind, results in self.by_kind().items()
        }

    def by_family(self) -> Dict[str, Tuple[JobResult, ...]]:
        grouped: Dict[str, List[JobResult]] = {}
        for result in self.results:
            grouped.setdefault(result.family or "<none>",
                               []).append(result)
        return {family: tuple(results)
                for family, results in sorted(grouped.items())}

    def scenario_deltas(self) -> Dict[str, Dict[str, object]]:
        """Per-family risk deltas across design variants.

        For each family, the maximum risk level per variant and each
        variant's rank delta against the family's ``baseline`` variant
        (or, absent one, the variant with the lowest risk). Positive
        delta: riskier than baseline; negative: the variant removed
        risk.
        """
        deltas: Dict[str, Dict[str, object]] = {}
        for family, results in self.by_family().items():
            per_variant: Dict[str, RiskLevel] = {}
            for result in results:
                variant = result.variant or "<none>"
                level = result.level
                if variant not in per_variant or \
                        level > per_variant[variant]:
                    per_variant[variant] = level
            if "baseline" in per_variant:
                reference = per_variant["baseline"]
            else:
                reference = min(per_variant.values())
            deltas[family] = {
                "baseline_level": reference.value,
                "variants": {
                    variant: {
                        "max_level": level.value,
                        "delta": level.rank - reference.rank,
                    }
                    for variant, level in sorted(per_variant.items())
                },
            }
        return deltas

    # -- rendering --------------------------------------------------------------

    def summary_table(self) -> str:
        """Fleet overview: one row per family, plus a totals footer."""
        rows = []
        total_events = 0
        for family, results in self.by_family().items():
            events = sum(len(r.events) for r in results)
            total_events += events
            worst = max((r.level for r in results),
                        default=RiskLevel.NONE)
            rows.append((
                family,
                len(results),
                len({r.scenario for r in results}),
                events,
                worst.value.upper(),
            ))
        footer = ("TOTAL", len(self.results),
                  len({r.scenario for r in self.results}),
                  total_events, self.max_level().value.upper())
        return ascii_table(
            ("family", "jobs", "scenarios", "events", "worst"),
            rows, footer=footer)

    def max_level(self) -> RiskLevel:
        if not self.results:
            return RiskLevel.NONE
        return max(result.level for result in self.results)

    def describe(self) -> str:
        """The operator's one-screen fleet summary."""
        lines = [self.summary_table(), ""]
        kinds = self.kind_histogram()
        if len(kinds) > 1 or (kinds and "disclosure" not in kinds):
            lines.append("analysis kinds: " + ", ".join(
                f"{kind}={count}" for kind, count in kinds.items()))
        histogram = self.level_histogram()
        lines.append("risk levels: " + ", ".join(
            f"{name}={histogram[name]}"
            for name in (level.value for level in _LEVELS)))
        matrix = self.matrix_histogram()
        if matrix:
            lines.append("matrix cells (impact/likelihood): " + ", ".join(
                f"{cell}={count}" for cell, count in matrix.items()))
        worst_events = self.worst_events(3)
        if worst_events:
            lines.append("worst disclosure paths:")
            for scenario, event in worst_events:
                store = f" from {event.store}" if event.store else ""
                lines.append(
                    f"  [{event.level.upper()}] {scenario}: "
                    f"{event.actor} reads "
                    f"{{{', '.join(event.fields)}}}{store} "
                    f"(impact={event.impact:.2f}, "
                    f"likelihood={event.likelihood:.2f})")
        if self.stats is not None:
            lines.append(self.stats.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible aggregate (for export / dashboards)."""
        return {
            "jobs": len(self.results),
            "max_level": self.max_level().value,
            "level_histogram": self.level_histogram(),
            "kind_histogram": self.kind_histogram(),
            "kinds": self.kind_rollups(),
            "matrix_histogram": self.matrix_histogram(),
            "scenario_deltas": self.scenario_deltas(),
            "worst": [
                {
                    "job_id": result.job_id,
                    "scenario": result.scenario,
                    "kind": result.kind,
                    "user": result.user,
                    "max_level": result.max_level,
                    "events": len(result.events),
                }
                for result in self.worst()
            ],
        }
