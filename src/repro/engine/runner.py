"""The batch engine: cache-aware parallel execution of analysis jobs.

Execution pipeline, per :meth:`BatchEngine.run` call:

1. **Fingerprint** every job through the staged key recipe
   (model stage -> LTS stage -> analyzer stage; see
   :mod:`repro.engine.fingerprint`).
2. **Result cache** — hits are returned without any work; duplicate
   fingerprints inside one batch are computed once and fanned out.
3. **Dispatch** the misses to the selected backend: ``serial`` (in
   line), ``thread`` (:class:`~concurrent.futures.ThreadPoolExecutor`)
   or ``process`` (:class:`~concurrent.futures.ProcessPoolExecutor`).
4. Inside each worker, the job's :class:`~repro.engine.kinds
   .AnalysisKind` runs. LTS-consuming kinds go through the **LTS
   memo**: the generated LTS of a (model, options) pair is cached —
   in-memory LRU in front of the shared on-disk store, so thread
   workers share blobs and process workers share the disk tier.
   Mixed-kind batches share LTSs whenever their stage-2 keys agree.
5. Results return **in submission order**, regardless of backend or
   completion order, and are written back to the result cache.

A warm result cache therefore re-runs *zero* LTS generations: every
job short-circuits at step 2.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field, replace
from concurrent import futures
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core import GenerationOptions, ModelGenerator
from ..core.risk import LikelihoodModel, RiskLevel, RiskMatrix
from ..dfd.validation import Severity
from ..errors import LintError
from ..lint import Diagnostic, run_lint
from ..taint import TaintCertificate, build_certificate
from .cache import build_cache
from .fingerprint import (job_fingerprint, lint_stage_key,
                          lts_cache_key, model_fingerprint,
                          taint_stage_key)
from .jobs import AnalysisJob, JobResult
from .kinds import AnalyzerConfig, KindOutcome, get_kind

#: One fingerprinted cache miss awaiting execution:
#: ``(fingerprint, job, options, model_fp)``.
PreparedJob = Tuple[str, AnalysisJob, Optional[GenerationOptions], str]


@dataclass
class EngineStats:
    """Execution accounting for one :meth:`BatchEngine.run` call."""

    backend: str = "serial"
    jobs: int = 0
    result_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    lts_generations: int = 0
    lts_reuses: int = 0
    wall_time: float = 0.0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Jobs answered by a clean taint certificate or a per-kind static
    #: screen (exact generation skipped) / jobs the screen flagged for
    #: exact analysis. Both stay zero unless ``run(screen=True)``.
    screened: int = 0
    screen_flagged: int = 0
    #: Screened jobs broken down by analysis kind.
    screened_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Distinct models freshly linted by the pre-flight / answered
    #: from the lint-stage cache. Both stay zero unless ``run(lint=)``.
    linted: int = 0
    lint_reuses: int = 0

    def describe(self) -> str:
        text = (
            f"{self.jobs} jobs on {self.backend} backend in "
            f"{self.wall_time:.2f}s: {self.result_hits} result-cache "
            f"hits, {self.deduplicated} deduplicated, "
            f"{self.executed} executed ({self.lts_generations} LTS "
            f"generations, {self.lts_reuses} memo reuses)"
        )
        if self.screened or self.screen_flagged:
            text += (f"; taint screen: {self.screened} skipped, "
                     f"{self.screen_flagged} flagged")
        if self.linted or self.lint_reuses:
            text += (f"; lint: {self.linted} models linted, "
                     f"{self.lint_reuses} cache reuses")
        if len(self.by_kind) > 1:
            text += " [" + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.by_kind.items())) + "]"
        return text


class BatchResult:
    """Ordered results of one batch plus its execution stats."""

    def __init__(self, results: Sequence[JobResult], stats: EngineStats):
        self.results: Tuple[JobResult, ...] = tuple(results)
        self.stats = stats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]


def resolve_options(job: AnalysisJob) -> Optional[GenerationOptions]:
    """The effective generation options of a job.

    Explicit options win; otherwise the job's kind decides (for
    disclosure: the user's agreed services with potential reads for
    every non-allowed actor, mirroring
    :meth:`~repro.core.risk.disclosure.DisclosureRiskAnalyzer.analyse`).
    Kinds that run their own generations resolve to None.
    """
    if job.options is not None:
        return job.options
    return get_kind(job.kind).default_options(job)


def _run_analysis(job: AnalysisJob, fingerprint: str,
                  options: Optional[GenerationOptions],
                  config: AnalyzerConfig,
                  lts_cache, model_fp: str) -> JobResult:
    """Recall (or generate) the LTS, run the job's kind, flatten."""
    start = time.perf_counter()
    kind = get_kind(job.kind)
    lts = None
    generated = False
    if kind.uses_lts:
        key = lts_cache_key(job.system, options, model_fp=model_fp)
        # The memo stores pickled blobs, not live objects: analysis
        # writes risk annotations (and pseudonym jobs inject
        # transitions) onto the LTS it is handed, so every job must get
        # a private instance (and thread workers must never share one).
        blob = lts_cache.get(key) if lts_cache is not None else None
        if blob is not None and not isinstance(blob, bytes):
            blob = None          # foreign/legacy entry: treat as miss
        lts = None
        if blob is not None:
            try:
                lts = pickle.loads(blob)
            except Exception:    # noqa: BLE001 — cache boundary
                # A blob written by an incompatible Configuration
                # layout (pre-bitmask pickles share our stage-2 keys);
                # regenerate and overwrite rather than fail the job.
                lts = None
        generated = lts is None
        if generated:
            lts = ModelGenerator(job.system).generate(options)
            if lts_cache is not None:
                lts_cache.put(key, pickle.dumps(
                    lts, protocol=pickle.HIGHEST_PROTOCOL))
    outcome = kind.analyse(job, lts, config)
    return JobResult(
        job_id=job.job_id,
        scenario=job.scenario,
        family=job.family,
        variant=job.variant,
        fingerprint=fingerprint,
        user=job.user.name,
        states=len(lts) if lts is not None else 0,
        transitions=len(lts.transitions) if lts is not None else 0,
        max_level=outcome.max_level,
        events=outcome.events,
        non_allowed_actors=outcome.non_allowed_actors,
        kind=job.kind,
        details=outcome.details,
        lts_generated=generated,
        duration=time.perf_counter() - start,
    )


# -- execution backends ------------------------------------------------------
#
# A backend is *how* prepared cache misses turn into results: in line,
# on a pool, or (see repro.fleet) on remote worker nodes. The protocol
# is transport-agnostic — ``execute`` receives the engine itself for
# its configuration and caches and yields ``(fingerprint, JobResult)``
# pairs in submission order, which is all ``BatchEngine.run`` relies
# on. Implementations register under a name; ``BACKENDS`` derives from
# the registry, so a new backend (in-tree or external) plugs in with
# one ``register_backend`` call.


class Backend:
    """Protocol of an execution backend (structural; subclassing is
    optional). ``name`` labels :attr:`EngineStats.backend`.

    ``inline_single`` lets the engine run a zero/one-miss batch on the
    calling thread instead of spinning the backend up; backends whose
    placement matters (remote dispatch) set it False."""

    name = "backend"
    inline_single = True

    def execute(self, prepared: Sequence[PreparedJob],
                engine: "BatchEngine"
                ) -> Iterator[Tuple[str, JobResult]]:
        """Yield ``(fingerprint, result)`` per prepared job, in
        submission order."""
        raise NotImplementedError


_BACKEND_REGISTRY: Dict[str, Callable[[], "Backend"]] = {}


def register_backend(name: str,
                     factory: Callable[[], "Backend"]) -> None:
    """Register (or replace) the backend constructed for ``name``."""
    _BACKEND_REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKEND_REGISTRY)


def get_backend(name: str) -> "Backend":
    """Construct the backend registered under ``name``."""
    factory = _BACKEND_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"backend must be one of {backend_names()}, got {name!r}")
    return factory()


def __getattr__(name: str):
    # BACKENDS predates the registry; keep it importable (and live).
    if name == "BACKENDS":
        return backend_names()
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


class SerialBackend(Backend):
    """In-line execution on the calling thread."""

    name = "serial"

    def execute(self, prepared, engine):
        for fingerprint, job, options, model_fp in prepared:
            yield fingerprint, _run_analysis(
                job, fingerprint, options, engine.config,
                engine.lts_cache, model_fp)


class ThreadBackend(Backend):
    """A :class:`~concurrent.futures.ThreadPoolExecutor` pool sharing
    the engine's live caches."""

    name = "thread"

    def execute(self, prepared, engine):
        with futures.ThreadPoolExecutor(engine.workers) as pool:
            tasks = [
                pool.submit(_run_analysis, job, fingerprint, options,
                            engine.config, engine.lts_cache, model_fp)
                for fingerprint, job, options, model_fp in prepared
            ]
            for (fingerprint, *_), task in zip(prepared, tasks):
                yield fingerprint, task.result()


# -- process backend plumbing ------------------------------------------------
#
# Workers rebuild their own LTS cache (per-process LRU over the shared
# disk tier) from plain configuration, because live cache objects carry
# locks and cannot cross the pickle boundary.

_WORKER_LTS_CACHE = None


def _process_initializer(lts_dir: Optional[str],
                         memory_entries: int) -> None:
    global _WORKER_LTS_CACHE
    _WORKER_LTS_CACHE = build_cache(memory_entries, lts_dir)


def _process_worker(payload) -> JobResult:
    job, fingerprint, options, config, model_fp = payload
    return _run_analysis(job, fingerprint, options, config,
                         _WORKER_LTS_CACHE, model_fp)


class ProcessBackend(Backend):
    """A :class:`~concurrent.futures.ProcessPoolExecutor` pool; worker
    processes share only the disk cache tier."""

    name = "process"

    def execute(self, prepared, engine):
        with futures.ProcessPoolExecutor(
                engine.workers,
                initializer=_process_initializer,
                initargs=(engine._lts_dir, engine._memory_entries),
        ) as pool:
            tasks = [
                pool.submit(_process_worker,
                            (job, fingerprint, options,
                             engine.config, model_fp))
                for fingerprint, job, options, model_fp in prepared
            ]
            for (fingerprint, *_), task in zip(prepared, tasks):
                yield fingerprint, task.result()


register_backend("serial", SerialBackend)
register_backend("thread", ThreadBackend)
register_backend("process", ProcessBackend)


class BatchEngine:
    """Runs fleets of analysis jobs with caching and a worker pool.

    Parameters
    ----------
    backend:
        A registered backend name (``'serial'``, ``'thread'``,
        ``'process'``, plus anything added via
        :func:`register_backend`) or a live :class:`Backend` instance.
    workers:
        Pool width for the parallel backends (default: CPU count,
        capped at 8).
    cache_dir:
        Root of the on-disk store. When given, both the result cache
        and the LTS memo gain a disk tier (``results/`` and ``lts/``
        subdirectories), so later runs — and sibling processes — reuse
        everything already computed.
    memory_entries:
        Capacity of each in-memory LRU tier.
    likelihood / matrix:
        Analyzer configuration for the disclosure-shaped kinds
        (defaults: the paper's example models).
    value_policy / dataset / population / record_field_map /
    reid_threshold:
        Configuration for the pseudonym and reidentify kinds; see
        :class:`~repro.engine.kinds.AnalyzerConfig`. Every setting
        enters only the analyzer-stage keys of the kinds that read it.
    result_cache / lts_cache:
        Override the shipped cache stack with any object exposing
        ``get``/``put``/``stats`` (pass a custom store, or ``None``
        to use the defaults).
    """

    def __init__(self, backend: Union[str, Backend] = "serial",
                 workers: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 memory_entries: int = 512,
                 likelihood: Optional[LikelihoodModel] = None,
                 matrix: Optional[RiskMatrix] = None,
                 value_policy=None, dataset=None, population=None,
                 record_field_map=None, reid_threshold: float = 0.5,
                 result_cache=None, lts_cache=None):
        if isinstance(backend, str):
            self._backend_impl = get_backend(backend)
            self.backend = backend
        else:
            # A live Backend instance (e.g. a remote-queue backend
            # carrying its own transport) plugs in directly.
            self._backend_impl = backend
            self.backend = backend.name
        self.workers = workers if workers is not None \
            else min(8, os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.cache_dir = cache_dir
        self._memory_entries = memory_entries
        self._lts_dir = os.path.join(cache_dir, "lts") \
            if cache_dir is not None else None
        self.result_cache = result_cache if result_cache is not None \
            else build_cache(
                memory_entries,
                os.path.join(cache_dir, "results")
                if cache_dir is not None else None)
        self.lts_cache = lts_cache if lts_cache is not None \
            else build_cache(memory_entries, self._lts_dir)
        self.taint_cache = build_cache(
            memory_entries,
            os.path.join(cache_dir, "taint")
            if cache_dir is not None else None)
        self.lint_cache = build_cache(
            memory_entries,
            os.path.join(cache_dir, "lint")
            if cache_dir is not None else None)
        self.config = AnalyzerConfig.build(
            likelihood=likelihood, matrix=matrix,
            value_policy=value_policy, dataset=dataset,
            population=population, record_field_map=record_field_map,
            reid_threshold=reid_threshold)
        self.likelihood = self.config.likelihood
        self.matrix = self.config.matrix
        self._kind_keys: Dict[str, tuple] = {}

    # -- identity ----------------------------------------------------------

    def analyzer_key(self, kind: str) -> tuple:
        """The analyzer-stage configuration key of ``kind`` under this
        engine's configuration (computed once per kind)."""
        key = self._kind_keys.get(kind)
        if key is None:
            key = get_kind(kind).analyzer_key(self.config)
            self._kind_keys[kind] = key
        return key

    def fingerprint(self, job: AnalysisJob,
                    model_fp: Optional[str] = None,
                    options: Optional[GenerationOptions] = None) -> str:
        """The result-cache key of ``job`` under this engine's
        analyzer configuration."""
        if options is None:
            options = resolve_options(job)
        fingerprint = self._fingerprint(job, model_fp, options)
        if __debug__:
            # The labels contract: scenario/family/variant/job_id are
            # display-only and must never influence cache identity —
            # otherwise renaming a scenario would silently fork the
            # cache and relabelled cache hits would be wrong.
            scrubbed = replace(job, scenario="", family="",
                               variant="", job_id="")
            assert self._fingerprint(scrubbed, model_fp, options) == \
                fingerprint, (
                    "job labels leaked into the cache identity of "
                    f"kind {job.kind!r}")
        return fingerprint

    def _fingerprint(self, job: AnalysisJob,
                     model_fp: Optional[str],
                     options: Optional[GenerationOptions]) -> str:
        return job_fingerprint(
            job.system, options, job.user, self.analyzer_key(job.kind),
            model_fp=model_fp, kind=job.kind, params=job.params)

    # -- the taint screen --------------------------------------------------------

    def screen_certificate(self, job: AnalysisJob,
                           model_fp: Optional[str] = None,
                           options: Optional[GenerationOptions] = None
                           ) -> TaintCertificate:
        """The taint certificate of ``job``'s (model, options) pair,
        cached in the engine's taint-stage store."""
        if model_fp is None:
            model_fp = model_fingerprint(job.system)
        if options is None:
            options = resolve_options(job)
        key = taint_stage_key(model_fp, options)
        certificate = self.taint_cache.get(key)
        if not isinstance(certificate, TaintCertificate):
            certificate = build_certificate(job.system, options,
                                            model_fp=model_fp)
            self.taint_cache.put(key, certificate)
        return certificate

    def _screened_result(self, job: AnalysisJob, fingerprint: str,
                         certificate: TaintCertificate,
                         non_allowed: Tuple[str, ...]) -> JobResult:
        """A zero-event result asserted by a clean certificate.

        ``signature()``-identical to what exact analysis would produce
        except for ``states``/``transitions`` (no state space was
        built) and the ``screened`` detail marking the provenance.
        Never written to the result cache: an unscreened run must not
        be served a screened stand-in.
        """
        return JobResult(
            job_id=job.job_id,
            scenario=job.scenario,
            family=job.family,
            variant=job.variant,
            fingerprint=fingerprint,
            user=job.user.name,
            states=0,
            transitions=0,
            max_level=RiskLevel.NONE.value,
            events=(),
            non_allowed_actors=non_allowed,
            kind=job.kind,
            details=(("screened", True),
                     ("certificate", certificate.fingerprint())),
            lts_generated=False,
            duration=0.0,
        )

    # -- the lint pre-flight -----------------------------------------------------

    def lint_diagnostics(self, system,
                         model_fp: Optional[str] = None,
                         stats: Optional[EngineStats] = None
                         ) -> Tuple[Diagnostic, ...]:
        """The lint diagnostics of ``system``, via the lint-stage
        cache — repeated sweeps never re-lint an unchanged model."""
        if model_fp is None:
            model_fp = model_fingerprint(system)
        key = lint_stage_key(model_fp)
        cached = self.lint_cache.get(key)
        if cached is not None:
            try:
                diagnostics = tuple(
                    Diagnostic.from_dict(d) for d in cached)
            except Exception:   # noqa: BLE001 — cache boundary
                diagnostics = None  # foreign/corrupt entry: re-lint
            if diagnostics is not None:
                if stats is not None:
                    stats.lint_reuses += 1
                return diagnostics
        diagnostics = run_lint(system).diagnostics
        self.lint_cache.put(
            key, tuple(d.to_dict() for d in diagnostics))
        if stats is not None:
            stats.linted += 1
        return diagnostics

    def _lint_preflight(self, jobs: Sequence[AnalysisJob],
                        stats: EngineStats,
                        strict: bool,
                        model_fps: Optional[Dict[int, str]] = None
                        ) -> Dict[int, str]:
        """Lint every distinct model in ``jobs`` before any
        fingerprinting or cache write; raise :class:`LintError` on
        ERROR-level diagnostics when ``strict``. Returns the computed
        model fingerprints so the main loop reuses them (seeded
        entries in ``model_fps`` are trusted, but still linted)."""
        model_fps = model_fps if model_fps is not None else {}
        linted: set = set()
        for job in jobs:
            if id(job.system) in linted:
                continue
            linted.add(id(job.system))
            model_fp = model_fps.get(id(job.system))
            if model_fp is None:
                model_fp = model_fingerprint(job.system)
                model_fps[id(job.system)] = model_fp
            diagnostics = self.lint_diagnostics(
                job.system, model_fp=model_fp, stats=stats)
            errors = [d for d in diagnostics
                      if d.severity is Severity.ERROR]
            if strict and errors:
                summary = "; ".join(
                    d.describe() for d in errors[:5])
                more = f" (+{len(errors) - 5} more)" \
                    if len(errors) > 5 else ""
                raise LintError(
                    f"model {job.system.name!r} refused by strict "
                    f"lint: {summary}{more}", diagnostics=diagnostics)
        return model_fps

    def _static_result(self, job: AnalysisJob, fingerprint: str,
                       outcome: KindOutcome) -> JobResult:
        """A result asserted by a kind's static screen predicate.

        Provably identical to exact analysis except for
        ``states``/``transitions`` (no state space was built) and the
        ``screened`` provenance detail. Never written to the result
        cache: an unscreened run must not be served a screened
        stand-in.
        """
        return JobResult(
            job_id=job.job_id,
            scenario=job.scenario,
            family=job.family,
            variant=job.variant,
            fingerprint=fingerprint,
            user=job.user.name,
            states=0,
            transitions=0,
            max_level=outcome.max_level,
            events=outcome.events,
            non_allowed_actors=outcome.non_allowed_actors,
            kind=job.kind,
            details=outcome.details + (("screened", True),),
            lts_generated=False,
            duration=0.0,
        )

    # -- execution -------------------------------------------------------------

    def run(self, jobs: Sequence[AnalysisJob],
            screen: bool = False,
            lint: Union[bool, str] = False,
            model_fps: Optional[Mapping[int, str]] = None
            ) -> BatchResult:
        """Execute ``jobs``; results come back in submission order.

        With ``screen=True``, screenable kinds (disclosure) first
        consult the model's taint certificate: a clean one *proves*
        the exact analyzer reports zero events, so the job is answered
        without generating its LTS (``stats.screened``); flagged
        models run exactly as usual (``stats.screen_flagged``). Warm
        result-cache hits still win over the screen — they are exact.
        The only observable divergence of a screened answer is
        resource limits: a clean model never hits ``max_states``.
        Other kinds consult their
        :meth:`~repro.engine.kinds.AnalysisKind.screen_outcome`
        predicate — the pseudonym kind statically answers
        not-applicable jobs without generating their LTS.

        ``lint`` runs the lint pre-flight over every distinct model
        before fingerprinting, through the fingerprinted lint-stage
        cache: ``True`` or ``"strict"`` raises :class:`LintError` on
        any ERROR-level diagnostic *before any cache write*;
        ``"warn"`` lints and counts without refusing.

        ``model_fps`` optionally seeds the per-model fingerprint table
        with already-known hashes, keyed by ``id(system)``. Callers
        that hold models in a content-addressed store (the service
        facade: its model hash *is* the stage-1 fingerprint) skip the
        canonical re-serialization entirely — the dominant cost of a
        warm single-job request. Seeded entries must describe systems
        that have not been mutated since hashing; unknown ids are
        simply hashed as usual.
        """
        jobs = list(jobs)
        started = time.perf_counter()
        stats = EngineStats(backend=self.backend, jobs=len(jobs))
        results: List[Optional[JobResult]] = [None] * len(jobs)

        # Fingerprint each job, hashing every distinct model once.
        model_fps = dict(model_fps) if model_fps else {}
        if lint:
            if lint not in (True, "strict", "warn"):
                raise ValueError(
                    f"lint must be False, True, 'strict' or 'warn', "
                    f"got {lint!r}")
            model_fps = self._lint_preflight(
                jobs, stats, strict=lint in (True, "strict"),
                model_fps=model_fps)
        pending: Dict[str, List[int]] = {}
        prepared: List[Tuple[str, AnalysisJob,
                             Optional[GenerationOptions], str]] = []
        for index, job in enumerate(jobs):
            if not job.job_id:
                job.job_id = f"job-{index:04d}"
            stats.by_kind[job.kind] = stats.by_kind.get(job.kind, 0) + 1
            model_fp = model_fps.get(id(job.system))
            if model_fp is None:
                model_fp = model_fingerprint(job.system)
                model_fps[id(job.system)] = model_fp
            options = resolve_options(job)
            fingerprint = self.fingerprint(job, model_fp=model_fp,
                                           options=options)
            cached = self.result_cache.get(fingerprint)
            if cached is not None:
                results[index] = cached.relabel(job)
                stats.result_hits += 1
                continue
            if screen and get_kind(job.kind).screenable:
                if not job.user.agreed_services:
                    # Exact analysis raises for such users; the screen
                    # must preserve that, so never skip them.
                    stats.screen_flagged += 1
                else:
                    certificate = self.screen_certificate(
                        job, model_fp=model_fp, options=options)
                    non_allowed = tuple(sorted(
                        job.user.non_allowed_actors(job.system)))
                    if certificate.clean_for(non_allowed):
                        results[index] = self._screened_result(
                            job, fingerprint, certificate, non_allowed)
                        stats.screened += 1
                        stats.screened_by_kind[job.kind] = \
                            stats.screened_by_kind.get(job.kind, 0) + 1
                        continue
                    stats.screen_flagged += 1
            elif screen:
                outcome = get_kind(job.kind).screen_outcome(
                    job, self.config)
                if outcome is not None:
                    results[index] = self._static_result(
                        job, fingerprint, outcome)
                    stats.screened += 1
                    stats.screened_by_kind[job.kind] = \
                        stats.screened_by_kind.get(job.kind, 0) + 1
                    continue
            if fingerprint in pending:
                # Same content already queued in this batch: compute
                # once, fan out below.
                pending[fingerprint].append(index)
                stats.deduplicated += 1
                continue
            pending[fingerprint] = [index]
            prepared.append((fingerprint, job, options, model_fp))

        for fingerprint, result in self._execute(prepared):
            self.result_cache.put(fingerprint, result)
            stats.executed += 1
            if result.lts_generated:
                stats.lts_generations += 1
            elif get_kind(result.kind).uses_lts:
                stats.lts_reuses += 1
            first, *rest = pending[fingerprint]
            results[first] = result
            for index in rest:
                results[index] = result.relabel(jobs[index])

        stats.wall_time = time.perf_counter() - started
        return BatchResult([r for r in results if r is not None], stats)

    def _execute(self, prepared):
        """Yield (fingerprint, JobResult) for each prepared miss."""
        if len(prepared) <= 1 and self._backend_impl.inline_single \
                and not isinstance(self._backend_impl, SerialBackend):
            # Zero or one miss: pool setup would cost more than it
            # buys — run in line.
            yield from SerialBackend().execute(prepared, self)
        else:
            yield from self._backend_impl.execute(prepared, self)
