"""Pluggable result caches: in-memory LRU, on-disk store, tiering.

Anything with ``get(key) -> value | None``, ``put(key, value)`` and a
``stats`` attribute is a cache to the engine; the three shipped
implementations cover the deployment spectrum:

- :class:`LRUCache` — bounded in-process memory, thread-safe;
- :class:`DiskCache` — pickle files under a directory, surviving
  process restarts and shared between worker processes;
- :class:`TieredCache` — layers caches (memory over disk), promoting
  lower-tier hits upward.

Keys are hex fingerprints (see :mod:`repro.engine.fingerprint`), which
double as safe file names.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass
class CacheStats:
    """Hit/miss/put accounting for one cache."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (f"{self.hits} hits / {self.lookups} lookups "
                f"({self.hit_rate:.0%}), {self.puts} puts, "
                f"{self.evictions} evictions")


class LRUCache:
    """A bounded, thread-safe, least-recently-used in-memory cache."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskCache:
    """Pickle-per-entry persistence under a directory.

    Writes go through a temp file + ``os.replace`` so concurrent
    writers (the process backend's workers) never expose a partially
    written entry; unreadable or corrupt entries read as misses.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, key: str) -> Optional[Any]:
        try:
            with open(self._path(key), "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".pkl"))

    def clear(self) -> None:
        for name in os.listdir(self.directory):
            if name.endswith(".pkl"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass


class TieredCache:
    """Layered caches, fastest first; lower-tier hits promote upward.

    ``stats`` aggregates at the tier level: a hit in *any* layer is one
    tier hit. Per-layer accounting stays on each layer's own ``stats``.
    """

    def __init__(self, *layers):
        if not layers:
            raise ValueError("TieredCache needs at least one layer")
        self.layers: List[Any] = list(layers)
        self.stats = CacheStats()

    def get(self, key: str) -> Optional[Any]:
        for index, layer in enumerate(self.layers):
            value = layer.get(key)
            if value is not None:
                for upper in self.layers[:index]:
                    upper.put(key, value)
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        for layer in self.layers:
            layer.put(key, value)
        self.stats.puts += 1

    def clear(self) -> None:
        for layer in self.layers:
            layer.clear()


def build_cache(memory_entries: int = 256,
                directory: Optional[str] = None):
    """The engine's default cache shape: LRU, tiered over disk when a
    directory is given."""
    memory = LRUCache(memory_entries)
    if directory is None:
        return memory
    return TieredCache(memory, DiskCache(directory))
