"""Pluggable result caches: in-memory LRU, on-disk store, tiering.

Anything with ``get(key) -> value | None``, ``put(key, value)`` and a
``stats`` attribute is a cache to the engine; the three shipped
implementations cover the deployment spectrum:

- :class:`LRUCache` — bounded in-process memory, thread-safe;
- :class:`DiskCache` — pickle files under a directory, surviving
  process restarts and shared between worker processes;
- :class:`TieredCache` — layers caches (memory over disk), promoting
  lower-tier hits upward.

The disk tier has a lifecycle: :meth:`DiskCache.prune` evicts by age
and/or total size budget (oldest entries first, LRU-approximated by
file mtime — reads touch their entry), :meth:`DiskCache.entries`
inspects the store, and :func:`store_report` summarises a whole engine
cache directory for the ``repro engine cache`` CLI.

Keys are hex fingerprints (see :mod:`repro.engine.fingerprint`), which
double as safe file names.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, NamedTuple, Optional


@dataclass
class CacheStats:
    """Hit/miss/put accounting for one cache."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (f"{self.hits} hits / {self.lookups} lookups "
                f"({self.hit_rate:.0%}), {self.puts} puts, "
                f"{self.evictions} evictions")


class LRUCache:
    """A bounded, thread-safe, least-recently-used in-memory cache."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CacheEntry(NamedTuple):
    """One on-disk entry as :meth:`DiskCache.entries` reports it."""

    key: str
    size: int
    mtime: float

    @property
    def age(self) -> float:
        return max(0.0, time.time() - self.mtime)


class PruneReport(NamedTuple):
    """What one :meth:`DiskCache.prune` call did."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int

    def describe(self) -> str:
        return (f"pruned {self.removed} entries "
                f"({self.freed_bytes} bytes), kept {self.kept} "
                f"({self.kept_bytes} bytes)")


class DiskCache:
    """Pickle-per-entry persistence under a directory.

    Writes go through a temp file + ``os.replace`` so concurrent
    writers (the process backend's workers) never expose a partially
    written entry; unreadable or corrupt entries read as misses. Hits
    touch their file's mtime, so :meth:`prune`'s oldest-first eviction
    approximates LRU rather than FIFO.

    ``max_age``/``max_bytes`` are this store's *default budgets*: they
    are applied by :meth:`prune` when it is called without arguments
    (the engine never prunes implicitly — lifecycle is an explicit,
    operator-driven action via ``repro engine cache prune``).
    """

    def __init__(self, directory: str,
                 max_age: Optional[float] = None,
                 max_bytes: Optional[int] = None):
        self.directory = directory
        self.max_age = max_age
        self.max_bytes = max_bytes
        os.makedirs(directory, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, ValueError, KeyError,
                IndexError, TypeError):
            # Corrupt bytes surface through whatever opcode they spell
            # out; any of these reads as a miss, never a crash.
            self.stats.misses += 1
            return None
        try:
            os.utime(path)          # LRU touch for prune ordering
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".pkl"))

    def entries(self) -> List[CacheEntry]:
        """Every entry with its size and mtime, oldest first.

        Entries that vanish mid-listing (a concurrent prune or clear)
        are skipped rather than raised.
        """
        found: List[CacheEntry] = []
        for name in os.listdir(self.directory):
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            found.append(CacheEntry(name[:-len(".pkl")],
                                    info.st_size, info.st_mtime))
        found.sort(key=lambda e: (e.mtime, e.key))
        return found

    def size_bytes(self) -> int:
        """Total bytes held by the store's entries."""
        return sum(entry.size for entry in self.entries())

    def prune(self, max_age: Optional[float] = None,
              max_bytes: Optional[int] = None) -> PruneReport:
        """Evict entries by age and/or total-size budget.

        Entries older than ``max_age`` seconds go first; then, while
        the store exceeds ``max_bytes``, the least-recently-used
        remaining entries go. Arguments default to the store's
        configured budgets; with neither set this is a no-op report.
        """
        max_age = max_age if max_age is not None else self.max_age
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        kept = self.entries()
        removed = 0
        freed = 0

        def evict(entry: CacheEntry) -> bool:
            try:
                os.unlink(self._path(entry.key))
            except OSError:
                return False
            self.stats.evictions += 1
            return True

        if max_age is not None:
            survivors = []
            for entry in kept:
                if entry.age > max_age and evict(entry):
                    removed += 1
                    freed += entry.size
                else:
                    survivors.append(entry)
            kept = survivors
        if max_bytes is not None:
            total = sum(entry.size for entry in kept)
            survivors = []
            for index, entry in enumerate(kept):
                if total <= max_bytes:
                    survivors.extend(kept[index:])
                    break
                if evict(entry):
                    removed += 1
                    freed += entry.size
                    total -= entry.size
                else:
                    survivors.append(entry)
            kept = survivors
        return PruneReport(removed=removed, freed_bytes=freed,
                           kept=len(kept),
                           kept_bytes=sum(e.size for e in kept))

    def clear(self) -> None:
        for name in os.listdir(self.directory):
            if name.endswith(".pkl"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass


class TieredCache:
    """Layered caches, fastest first; lower-tier hits promote upward.

    ``stats`` aggregates at the tier level: a hit in *any* layer is one
    tier hit. Per-layer accounting stays on each layer's own ``stats``.
    """

    def __init__(self, *layers):
        if not layers:
            raise ValueError("TieredCache needs at least one layer")
        self.layers: List[Any] = list(layers)
        self.stats = CacheStats()

    def get(self, key: str) -> Optional[Any]:
        for index, layer in enumerate(self.layers):
            value = layer.get(key)
            if value is not None:
                for upper in self.layers[:index]:
                    upper.put(key, value)
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        for layer in self.layers:
            layer.put(key, value)
        self.stats.puts += 1

    def prune(self, max_age: Optional[float] = None,
              max_bytes: Optional[int] = None) -> PruneReport:
        """Prune every layer that supports pruning; merged report."""
        removed = freed = kept = kept_bytes = 0
        for layer in self.layers:
            prune = getattr(layer, "prune", None)
            if prune is None:
                continue
            report = prune(max_age=max_age, max_bytes=max_bytes)
            removed += report.removed
            freed += report.freed_bytes
            kept += report.kept
            kept_bytes += report.kept_bytes
        return PruneReport(removed, freed, kept, kept_bytes)

    def clear(self) -> None:
        for layer in self.layers:
            layer.clear()


def build_cache(memory_entries: int = 256,
                directory: Optional[str] = None):
    """The engine's default cache shape: LRU, tiered over disk when a
    directory is given."""
    memory = LRUCache(memory_entries)
    if directory is None:
        return memory
    return TieredCache(memory, DiskCache(directory))


#: The subdirectories a :class:`~repro.engine.runner.BatchEngine`
#: cache_dir holds, by store role.
ENGINE_STORES = ("results", "lts", "taint", "lint")


def store_report(cache_dir: str) -> Dict[str, Dict[str, Any]]:
    """Summarise an engine cache directory's on-disk stores.

    One summary per existing store (``results``/``lts``): entry count,
    total bytes, and the oldest/newest entry age in seconds. Missing
    stores are skipped (a never-used tier is not an error).
    """
    report: Dict[str, Dict[str, Any]] = {}
    for store_name in ENGINE_STORES:
        directory = os.path.join(cache_dir, store_name)
        if not os.path.isdir(directory):
            continue
        entries = DiskCache(directory).entries()
        report[store_name] = {
            "entries": len(entries),
            "bytes": sum(e.size for e in entries),
            "oldest_age": round(max((e.age for e in entries),
                                    default=0.0), 3),
            "newest_age": round(min((e.age for e in entries),
                                    default=0.0), 3),
        }
    return report


def prune_stores(cache_dir: str,
                 max_age: Optional[float] = None,
                 max_bytes: Optional[int] = None
                 ) -> Dict[str, PruneReport]:
    """Prune every on-disk store under ``cache_dir``.

    ``max_bytes`` is a *per-store* budget (the stores have
    independent churn profiles; a byte of LTS blob and a byte of
    result are not interchangeable).
    """
    reports: Dict[str, PruneReport] = {}
    for store_name in ENGINE_STORES:
        directory = os.path.join(cache_dir, store_name)
        if not os.path.isdir(directory):
            continue
        reports[store_name] = DiskCache(directory).prune(
            max_age=max_age, max_bytes=max_bytes)
    return reports
