"""Job and result types of the batch engine.

An :class:`AnalysisJob` is one unit of work — a system model, the user
to analyse it for, the analysis *kind* to run (disclosure by default),
optional explicit generation options and optional per-kind parameters.
A :class:`JobResult` is its flat, picklable outcome: risk events and
kind-specific findings reduced to value tuples so results travel
across process boundaries and in/out of caches without dragging LTS
objects along.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, NamedTuple, Optional, Tuple

from ..consent import UserProfile
from ..core import GenerationOptions
from ..core.risk import RiskLevel
from ..core.risk.report import DisclosureRiskReport
from ..dfd import SystemModel


@dataclass
class AnalysisJob:
    """One model x user x kind x options analysis request.

    ``kind`` names an entry of the analysis-kind registry
    (:mod:`repro.engine.kinds`); ``params`` carries kind-specific
    inputs (e.g. ``{"withdraw": ["MedicalService"]}`` for a consent
    change) and participates in the cache identity.

    ``scenario``/``family``/``variant`` are display/grouping labels
    (no effect on the cache identity — the engine asserts this);
    ``job_id`` is assigned by the engine when left empty.
    """

    system: SystemModel
    user: UserProfile
    options: Optional[GenerationOptions] = None
    kind: str = "disclosure"
    params: Optional[Mapping[str, Any]] = None
    scenario: str = ""
    family: str = ""
    variant: str = ""
    job_id: str = ""


class RiskEventSummary(NamedTuple):
    """One risk event, flattened to plain values."""

    level: str
    actor: str
    fields: Tuple[str, ...]
    store: Optional[str]
    impact: float
    likelihood: float
    impact_category: str
    likelihood_category: str


@dataclass(frozen=True)
class JobResult:
    """The picklable outcome of one job.

    ``signature()`` is the semantic content — what must be identical
    between a serial and a parallel run, or between a computed and a
    cached result. ``from_cache``/``lts_generated``/``duration`` are
    execution metadata and excluded from it.

    ``events`` holds disclosure-style risk events (kinds that produce
    none leave it empty); ``details`` is the kind's own flattened
    payload as ``(key, value)`` pairs — see each kind's ``analyse``
    for its schema.
    """

    job_id: str
    scenario: str
    family: str
    variant: str
    fingerprint: str
    user: str
    states: int
    transitions: int
    max_level: str
    events: Tuple[RiskEventSummary, ...]
    non_allowed_actors: Tuple[str, ...]
    kind: str = "disclosure"
    details: Tuple[Tuple[str, Any], ...] = ()
    lts_generated: bool = True
    from_cache: bool = False
    duration: float = 0.0

    def signature(self) -> tuple:
        return (self.kind, self.fingerprint, self.user, self.states,
                self.transitions, self.max_level, self.events,
                self.non_allowed_actors, self.details)

    @property
    def level(self) -> RiskLevel:
        return RiskLevel.from_name(self.max_level)

    def detail(self, key: str, default=None):
        """The kind-payload entry named ``key`` (first match)."""
        for name, value in self.details:
            if name == key:
                return value
        return default

    def relabel(self, job: AnalysisJob) -> "JobResult":
        """A cached result re-badged for the job that requested it."""
        return replace(
            self, job_id=job.job_id, scenario=job.scenario,
            family=job.family, variant=job.variant,
            from_cache=True, lts_generated=False, duration=0.0)


def summarize_events(report: DisclosureRiskReport
                     ) -> Tuple[RiskEventSummary, ...]:
    """Flatten a disclosure report's events to plain value tuples."""
    return tuple(
        RiskEventSummary(
            level=event.level.value,
            actor=event.actor,
            fields=tuple(event.fields),
            store=event.store,
            impact=event.assessment.impact,
            likelihood=event.assessment.likelihood,
            impact_category=event.assessment.impact_category.value,
            likelihood_category=event.assessment.likelihood_category.value,
        )
        for event in report.events
    )
