"""Content fingerprints for models, options and analysis jobs.

The batch engine is content-addressed: a job's cache identity is a
stable hash over everything that determines its outcome — the canonical
model serialization, the generation options, the user profile and the
analyzer configuration. Equal fingerprints mean equal results, so a
fingerprint hit can short-circuit LTS generation and analysis entirely.

Hashes are sha256 over a canonical JSON encoding (sorted keys, no
whitespace), making them insensitive to dict/set iteration order and
stable across processes and runs — unlike :func:`hash`, which Python
salts per process.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from ..consent import UserProfile
from ..core import GenerationOptions
from ..dfd import SystemModel, canonical_system_dict


def stable_hash(data) -> str:
    """sha256 hex digest of a canonical JSON encoding of ``data``.

    ``data`` must be JSON-encodable (tuples encode as arrays; None,
    numbers, strings, bools nest freely).
    """
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def model_fingerprint(system: SystemModel) -> str:
    """The content hash of a system model.

    Invariant under construction order and description strings (see
    :func:`repro.dfd.canonical_system_dict`); any semantic change —
    a field, a flow, a grant — changes the fingerprint.
    """
    return stable_hash(canonical_system_dict(system))


def options_fingerprint(options: Optional[GenerationOptions]) -> str:
    """The content hash of generation options (None hashes too)."""
    if options is None:
        return stable_hash(None)
    return stable_hash(options.cache_key())


def user_fingerprint(user: UserProfile) -> str:
    """The content hash of a user profile's analysis-relevant state."""
    return stable_hash(user.cache_key())


def lts_cache_key(system: SystemModel,
                  options: Optional[GenerationOptions],
                  model_fp: Optional[str] = None) -> str:
    """The memoisation key of a generated LTS: model x options."""
    if model_fp is None:
        model_fp = model_fingerprint(system)
    return stable_hash(["lts", model_fp,
                        options.cache_key() if options else None])


def job_fingerprint(system: SystemModel,
                    options: Optional[GenerationOptions],
                    user: UserProfile,
                    analyzer_key,
                    model_fp: Optional[str] = None) -> str:
    """The result-cache key of one analysis job.

    The single definition of the key recipe — the engine and any
    external cache tooling must agree on it. ``model_fp`` lets callers
    reuse an already-computed model fingerprint.
    """
    if model_fp is None:
        model_fp = model_fingerprint(system)
    return stable_hash([
        "disclosure",
        model_fp,
        options.cache_key() if options else None,
        user.cache_key(),
        analyzer_key,
    ])
