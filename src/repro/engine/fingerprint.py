"""Staged content fingerprints for models, LTSs and analysis jobs.

The batch engine is content-addressed: a job's cache identity is a
stable hash over everything that determines its outcome. The identity
is built in **stages**, each extending the previous one, so caches can
invalidate at exactly the layer a change touches:

1. **model stage** — the canonical model serialization
   (:func:`model_stage_key`); shared by every job over one model.
2. **LTS stage** — model stage + generation options
   (:func:`lts_stage_key`); the memoisation key of a generated LTS.
3. **analyzer stage** — LTS stage + analysis kind + user + analyzer
   configuration + per-kind parameters (:func:`analyzer_stage_key`);
   the result-cache key of one job.

A change to the analyzer configuration therefore moves only stage-3
keys (the LTS memo stays valid); a change to the model moves all
three. :mod:`repro.engine.incremental` exploits the layering in the
other direction: when a model diff provably leaves the generated LTS
unchanged, the old LTS-stage entry is re-seeded under the new key.

Hashes are sha256 over a canonical JSON encoding (sorted keys, no
whitespace), making them insensitive to dict/set iteration order and
stable across processes and runs — unlike :func:`hash`, which Python
salts per process.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Optional

from ..consent import UserProfile
from ..core import GenerationOptions
from ..dfd import SystemModel, canonical_system_dict


#: Version of the cache payload contract. Part of every stage-2/3 key,
#: so engines with incompatible entry formats (e.g. live objects vs.
#: pickled blobs, result dataclass layouts) sharing one on-disk store
#: can never read each other's entries. Bump on any payload change.
CACHE_FORMAT = 2


def stable_hash(data) -> str:
    """sha256 hex digest of a canonical JSON encoding of ``data``.

    ``data`` must be JSON-encodable (tuples encode as arrays; None,
    numbers, strings, bools nest freely).
    """
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_params(params: Optional[Mapping]) -> Optional[tuple]:
    """Per-kind job parameters as a canonical, hashable value.

    Mapping iteration order must not influence cache identity, so the
    mapping becomes sorted ``(key, value)`` pairs; list/tuple values
    canonicalise to tuples. Numeric values with no fractional part
    canonicalise to ints: params cross JSON boundaries where ``1`` and
    ``1.0`` are one writer's choice, not two analysis inputs (e.g. a
    score-weight mapping must key the same cache entry either way).
    """
    if params is None:
        return None

    def canon(value):
        if isinstance(value, Mapping):
            return tuple(sorted(
                (str(k), canon(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple, set, frozenset)):
            items = [canon(v) for v in value]
            if isinstance(value, (set, frozenset)):
                items.sort()
            return tuple(items)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    return canon(params)


# -- stage 1: the model -------------------------------------------------------

def model_fingerprint(system: SystemModel) -> str:
    """The content hash of a system model (stage-1 key).

    Invariant under construction order and description strings (see
    :func:`repro.dfd.canonical_system_dict`); any semantic change —
    a field, a flow, a grant — changes the fingerprint.
    """
    return stable_hash(canonical_system_dict(system))


#: Stage-1 alias — the model fingerprint *is* the model-stage key.
model_stage_key = model_fingerprint


def options_fingerprint(options: Optional[GenerationOptions]) -> str:
    """The content hash of generation options (None hashes too)."""
    if options is None:
        return stable_hash(None)
    return stable_hash(options.cache_key())


def user_fingerprint(user: UserProfile) -> str:
    """The content hash of a user profile's analysis-relevant state."""
    return stable_hash(user.cache_key())


# -- stage 2: the generated LTS -----------------------------------------------

def lts_stage_key(model_fp: str,
                  options: Optional[GenerationOptions]) -> str:
    """The stage-2 key: model stage x generation options.

    This is the memoisation key of a generated LTS; jobs that share it
    share the (pickled) LTS regardless of kind, user or analyzer
    configuration.
    """
    return stable_hash(["lts", CACHE_FORMAT, model_fp,
                        options.cache_key() if options else None])


def lts_cache_key(system: SystemModel,
                  options: Optional[GenerationOptions],
                  model_fp: Optional[str] = None) -> str:
    """:func:`lts_stage_key` computed from a model (convenience)."""
    if model_fp is None:
        model_fp = model_fingerprint(system)
    return lts_stage_key(model_fp, options)


def taint_stage_key(model_fp: str,
                    options: Optional[GenerationOptions]) -> str:
    """The taint-screen stage key: model stage x generation options.

    The cache key of a :class:`repro.taint.TaintCertificate` — the
    sibling of :func:`lts_stage_key` at the same layer (both depend on
    exactly model + options), but keyed separately because the two
    stages invalidate differently: a read-grant edit on atoms the
    certificate never tracks moves the LTS key's *contents* (could-read
    display vectors) yet provably leaves the certificate intact, and
    :func:`repro.engine.incremental.reanalyze` re-seeds it.
    """
    from ..taint import CERT_FORMAT
    return stable_hash(["taint", CERT_FORMAT, CACHE_FORMAT, model_fp,
                        options.cache_key() if options else None])


def lint_stage_key(model_fp: str) -> str:
    """The lint pre-flight stage key: model stage x lint rule set.

    The cache key of one model's diagnostic list. Depends on nothing
    but the model and the rule-set version — lint reads no generation
    options, user or analyzer config — so every job over a model
    shares one entry and repeated sweeps never re-lint unchanged
    models. ``LINT_FORMAT`` (imported lazily, mirroring
    :func:`taint_stage_key`) bumps on any rule or diagnostic-schema
    change, invalidating stale cached reports.
    """
    from ..lint import LINT_FORMAT
    return stable_hash(["lint", LINT_FORMAT, CACHE_FORMAT, model_fp])


# -- stage 3: the analysis ----------------------------------------------------

def analyzer_stage_key(lts_key: str, kind: str, user: UserProfile,
                       analyzer_key,
                       params: Optional[Mapping] = None) -> str:
    """The stage-3 key: LTS stage x kind x user x analyzer config.

    ``analyzer_key`` is the kind's own configuration identity (see
    :meth:`repro.engine.kinds.AnalysisKind.analyzer_key`); ``params``
    are per-job kind parameters (e.g. a consent change's agree /
    withdraw lists), canonicalised so mapping order is irrelevant.
    """
    return stable_hash([
        "analysis",
        CACHE_FORMAT,
        kind,
        lts_key,
        user.cache_key(),
        analyzer_key,
        canonical_params(params),
    ])


def job_fingerprint(system: SystemModel,
                    options: Optional[GenerationOptions],
                    user: UserProfile,
                    analyzer_key,
                    model_fp: Optional[str] = None,
                    kind: str = "disclosure",
                    params: Optional[Mapping] = None) -> str:
    """The result-cache key of one analysis job.

    The single definition of the key recipe — the engine and any
    external cache tooling must agree on it. ``model_fp`` lets callers
    reuse an already-computed model fingerprint. Composed strictly from
    the staged keys, so the identity layering documented above is real
    rather than aspirational.
    """
    lts_key = lts_cache_key(system, options, model_fp=model_fp)
    return analyzer_stage_key(lts_key, kind, user, analyzer_key, params)
