"""Diff-driven incremental re-analysis of model fleets.

MDE lives on iteration: analyse, change the model, re-analyse. A cold
re-run recomputes everything; this module recomputes only what a
change actually invalidates, by mapping a structural
:class:`~repro.dfd.diff.ModelDiff` onto the engine's staged
fingerprints:

- **nothing** — the canonical fingerprints agree (e.g. only
  descriptions changed): every job short-circuits at the result cache.
- **analyzers** — the LTS stage provably survives: grant-only changes
  that touch no permission the generator consumes. The generator reads
  the access policy in exactly two places — read grants (the derived
  ``could`` variables and potential-read transitions) and delete
  grants (policy-delete transitions, only when generation enables
  them). A change confined to other permissions (create/update) can
  therefore re-seed every cached LTS under its new stage-2 key and
  re-run only the cheap analyzer stage.
- **everything** — structural changes (nodes, flows, schemas, roles)
  or grant changes the generator can see: the model's jobs re-run from
  LTS generation.

The classification is deliberately *sound over eager*: anything the
diff cannot prove unchanged (schema edits and role reassignments are
invisible to :func:`~repro.dfd.diff.diff_models`) falls back to
``everything``. Unchanged sibling models in the fleet always
short-circuit at the result cache, so a one-model edit re-runs
strictly fewer jobs than a cold sweep either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..dfd import SystemModel, canonical_system_dict
from ..dfd.diff import ModelDiff, diff_models
from ..taint import TaintCertificate
from .fingerprint import (lts_stage_key, model_fingerprint, stable_hash,
                          taint_stage_key)
from .jobs import AnalysisJob
from .kinds import get_kind
from .runner import BatchEngine, BatchResult, resolve_options

#: Stage-invalidation verdicts, least to most expensive.
INVALIDATES_NOTHING = "nothing"
INVALIDATES_ANALYZERS = "analyzers"
INVALIDATES_EVERYTHING = "everything"

#: ACL permissions the LTS generator consumes unconditionally (the
#: ``could`` mask and potential reads) or conditionally (policy
#: deletes, when the generation options enable them).
_GENERATOR_PERMISSIONS = ("read",)
_GENERATOR_DELETE_PERMISSIONS = ("delete",)


@dataclass(frozen=True)
class InvalidationPlan:
    """Which fingerprint stages a model change invalidates."""

    before_fp: str
    after_fp: str
    diff: ModelDiff
    level: str
    reason: str
    #: False when the change moves delete grants, which invalidate the
    #: LTS only for generations with ``include_deletes`` enabled.
    delete_safe: bool = True
    #: True when the change is confined to ACL grants (no structural
    #: or non-ACL content movement) — the precondition for the
    #: taint-certificate survival check, which can then decide from
    #: the grant diff alone.
    acl_only: bool = False

    @property
    def reuses_lts(self) -> bool:
        return self.level == INVALIDATES_ANALYZERS

    def level_for(self, options) -> str:
        """The verdict under concrete generation options (delete-grant
        changes only bite generations that enable policy deletes)."""
        if self.level == INVALIDATES_ANALYZERS and not self.delete_safe \
                and options is not None and options.include_deletes:
            return INVALIDATES_EVERYTHING
        return self.level

    def describe(self) -> str:
        lines = [f"change invalidates: {self.level} ({self.reason})"]
        if self.diff.is_empty:
            lines.append("  structural diff: none")
        else:
            lines.extend("  " + line
                         for line in self.diff.describe().splitlines())
        return "\n".join(lines)


def _non_acl_parts(system: SystemModel) -> str:
    """Fingerprint of everything the ACL-blind diff cannot see."""
    data = canonical_system_dict(system)
    data.pop("acl", None)
    return stable_hash(data)


def classify_invalidation(before: SystemModel,
                          after: SystemModel) -> InvalidationPlan:
    """Map the before -> after change onto the staged fingerprints."""
    before_fp = model_fingerprint(before)
    after_fp = model_fingerprint(after)
    diff = diff_models(before, after)
    if before_fp == after_fp:
        return InvalidationPlan(
            before_fp, after_fp, diff, INVALIDATES_NOTHING,
            "model fingerprints are identical; cached results serve")
    if diff.structural_change:
        return InvalidationPlan(
            before_fp, after_fp, diff, INVALIDATES_EVERYTHING,
            "nodes or flows changed; generated LTSs are stale")
    if _non_acl_parts(before) != _non_acl_parts(after):
        # Schema, role or assignment changes are invisible to the
        # structural diff but move the fingerprint: be conservative.
        return InvalidationPlan(
            before_fp, after_fp, diff, INVALIDATES_EVERYTHING,
            "non-ACL model content changed outside the diff's view")
    if diff.touches_permission(*_GENERATOR_PERMISSIONS):
        return InvalidationPlan(
            before_fp, after_fp, diff, INVALIDATES_EVERYTHING,
            "read grants changed; the generator's could/potential-read "
            "view of the policy moved",
            acl_only=True)
    return InvalidationPlan(
        before_fp, after_fp, diff, INVALIDATES_ANALYZERS,
        "grant-only change outside the generator's policy view; "
        "LTSs re-seed, analyzers re-run",
        delete_safe=not diff.touches_permission(
            *_GENERATOR_DELETE_PERMISSIONS),
        acl_only=True)


def certificate_survives(plan: InvalidationPlan,
                         certificate: TaintCertificate) -> bool:
    """Does a cached taint certificate survive the planned change?

    The taint stage invalidates on *reachability*, not on the LTS's
    could-read display vectors — so it is strictly more precise than
    the LTS stage for ACL edits: a read-grant addition confined to
    (store, field) atoms the certificate never tracks provably cannot
    create a new READ event, and the certificate survives even though
    the plan says ``everything`` for the LTS. Grant removals and
    create/update/delete-grant changes never feed the closure, so they
    always survive an ACL-only plan.
    """
    if plan.level == INVALIDATES_NOTHING:
        return True
    if not plan.acl_only:
        return False
    return certificate.survives_acl_change(plan.diff)


def reanalysis_summary(plan_description: str, jobs: int,
                       retargeted: int, lts_seeded: int,
                       stats_description: str) -> str:
    """The incremental run's three-line summary.

    The single source of the wording: both
    :meth:`ReanalysisOutcome.describe` and the service layer's
    :meth:`~repro.service.messages.ReanalyzeResponse.describe` render
    through it, keeping engine and wire output byte-identical.
    """
    return "\n".join([
        plan_description,
        f"{jobs} jobs: {retargeted} retargeted to the edited model, "
        f"{lts_seeded} LTS cache entries re-seeded",
        stats_description,
    ])


@dataclass
class ReanalysisOutcome:
    """One incremental re-analysis: its batch, plan and accounting."""

    batch: BatchResult
    plan: InvalidationPlan
    jobs: int
    retargeted: int
    lts_seeded: int
    taint_seeded: int = 0

    def describe(self) -> str:
        text = reanalysis_summary(self.plan.describe(), self.jobs,
                                  self.retargeted, self.lts_seeded,
                                  self.batch.stats.describe())
        if self.taint_seeded:
            text += (f"\n{self.taint_seeded} taint certificates "
                     "survived the edit and were re-seeded")
        return text


def reanalyze(engine: BatchEngine, before: SystemModel,
              after: SystemModel,
              jobs: Sequence[AnalysisJob],
              screen: bool = False,
              lint=False) -> ReanalysisOutcome:
    """Re-run a fleet after editing ``before`` into ``after``.

    ``jobs`` is the fleet's job list as originally analysed (its jobs
    referencing ``before`` — by content, not object identity — are
    retargeted to ``after``; jobs over other models pass through and
    short-circuit at the warm result cache). When the change provably
    leaves generated LTSs intact, their cache entries are re-seeded
    under the new stage-2 keys before execution, so the re-run skips
    LTS generation as well as every unchanged job.

    The engine should be the one that ran the original batch (or share
    its ``cache_dir``); with a cold engine this degrades gracefully to
    a plain run. Results carry the *new* model's fingerprints — they
    are byte-identical to what a cold run over the edited fleet
    produces. ``screen``/``lint`` pass through to
    :meth:`~repro.engine.runner.BatchEngine.run` — strict lint refuses
    an edit that introduced ERROR-level diagnostics before any cache
    write.
    """
    plan = classify_invalidation(before, after)
    model_fps: Dict[int, str] = {}
    seeded_keys = set()
    taint_keys = set()
    new_jobs: List[AnalysisJob] = []
    retargeted = 0
    lts_seeded = 0
    taint_seeded = 0
    for job in jobs:
        fp = model_fps.get(id(job.system))
        if fp is None:
            fp = model_fingerprint(job.system)
            model_fps[id(job.system)] = fp
        if fp != plan.before_fp:
            new_jobs.append(job)
            continue
        retargeted += 1
        # Labels (and params) survive; only the model moves.
        new_job = replace(job, system=after)
        new_jobs.append(new_job)
        options = resolve_options(new_job)
        kind = get_kind(new_job.kind)
        if (kind.screenable or new_job.kind == "taint") and \
                plan.level != INVALIDATES_NOTHING:
            # The taint stage is more precise than the LTS stage: an
            # ACL edit on untracked atoms re-seeds the certificate
            # even when the plan invalidates everything else.
            new_taint_key = taint_stage_key(plan.after_fp, options)
            if new_taint_key not in taint_keys:
                taint_keys.add(new_taint_key)
                certificate = engine.taint_cache.get(
                    taint_stage_key(plan.before_fp, options))
                if isinstance(certificate, TaintCertificate) and \
                        certificate_survives(plan, certificate):
                    engine.taint_cache.put(
                        new_taint_key,
                        certificate.rebind(plan.after_fp))
                    taint_seeded += 1
        if not plan.reuses_lts or not kind.uses_lts:
            continue
        if plan.level_for(options) != INVALIDATES_ANALYZERS:
            continue
        old_key = lts_stage_key(plan.before_fp, options)
        new_key = lts_stage_key(plan.after_fp, options)
        if new_key in seeded_keys:
            continue
        seeded_keys.add(new_key)
        blob = engine.lts_cache.get(old_key)
        if blob is not None:
            engine.lts_cache.put(new_key, blob)
            lts_seeded += 1
    batch = engine.run(new_jobs, screen=screen, lint=lint)
    return ReanalysisOutcome(
        batch=batch, plan=plan, jobs=len(new_jobs),
        retargeted=retargeted, lts_seeded=lts_seeded,
        taint_seeded=taint_seeded)
