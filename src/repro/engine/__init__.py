"""Batch risk-assessment engine: fleets of models, analysed at scale.

The paper's method is one model, one user, one report. This package is
the production layer over it:

- a typed **analysis-kind registry** (:mod:`~repro.engine.kinds`)
  makes every lens of the method a first-class engine job —
  ``disclosure`` (III.A), ``pseudonym`` (III.B), ``consent_change``
  what-ifs and ``reidentify`` exposure (V) — each declaring its own
  analyzer cache key, result flattening and fleet aggregation;
- **staged content fingerprints**
  (:mod:`~repro.engine.fingerprint`) layer the cache identity
  (model stage -> LTS stage -> analyzer stage), so each cache
  invalidates at exactly the layer a change touches;
- **pluggable caches** (:mod:`~repro.engine.cache`) memoise generated
  LTSs and finished reports — in-memory LRU tiered over an on-disk
  store with an age/size-budget eviction lifecycle;
- the :class:`~repro.engine.runner.BatchEngine` executes mixed-kind
  job fleets through serial, thread or process backends with
  deterministic result ordering and per-batch deduplication;
- :mod:`~repro.engine.incremental` turns a
  :class:`~repro.dfd.diff.ModelDiff` into a stage-invalidation plan
  and re-runs only what a model edit actually invalidated;
- the :class:`~repro.engine.scenarios.ScenarioGenerator` manufactures
  seed-deterministic workloads across healthcare, loyalty and scaled
  synthetic templates with Westin-persona user populations;
- the :class:`~repro.engine.aggregate.FleetReport` rolls per-job
  reports into fleet-level summaries: worst-case disclosure paths,
  risk-matrix histograms, per-variant deltas, per-kind rollups.

Quickstart::

    from repro.engine import (BatchEngine, FleetReport,
                              ScenarioGenerator, scenario_jobs)

    scenarios = ScenarioGenerator(seed=7).generate(50)
    engine = BatchEngine(backend="process", cache_dir=".repro-cache")
    batch = engine.run(scenario_jobs(
        scenarios, kinds=("disclosure", "pseudonym")))
    print(FleetReport(batch.results, batch.stats).describe())
"""

from .aggregate import FleetReport
from .cache import (
    CacheEntry,
    CacheStats,
    DiskCache,
    LRUCache,
    PruneReport,
    TieredCache,
    build_cache,
    prune_stores,
    store_report,
)
from .fingerprint import (
    analyzer_stage_key,
    canonical_params,
    job_fingerprint,
    lint_stage_key,
    lts_cache_key,
    lts_stage_key,
    model_fingerprint,
    model_stage_key,
    options_fingerprint,
    stable_hash,
    taint_stage_key,
    user_fingerprint,
)
from .incremental import (
    INVALIDATES_ANALYZERS,
    INVALIDATES_EVERYTHING,
    INVALIDATES_NOTHING,
    InvalidationPlan,
    ReanalysisOutcome,
    certificate_survives,
    classify_invalidation,
    reanalyze,
)
from .jobs import AnalysisJob, JobResult, RiskEventSummary
from .kinds import (
    KINDS,
    AnalysisKind,
    AnalyzerConfig,
    KindOutcome,
    get_kind,
    kind_names,
    register_kind,
)
from .runner import (
    Backend,
    BatchEngine,
    BatchResult,
    EngineStats,
    PreparedJob,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_options,
)


def __getattr__(name: str):
    # BACKENDS derives from the live backend registry; resolving it
    # lazily keeps later register_backend() calls visible here too.
    if name == "BACKENDS":
        return backend_names()
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
from .scenarios import ModelScenario, ScenarioGenerator, scenario_jobs

__all__ = [
    "FleetReport",
    "CacheEntry",
    "CacheStats",
    "DiskCache",
    "LRUCache",
    "PruneReport",
    "TieredCache",
    "build_cache",
    "prune_stores",
    "store_report",
    "analyzer_stage_key",
    "canonical_params",
    "job_fingerprint",
    "lint_stage_key",
    "lts_cache_key",
    "lts_stage_key",
    "model_fingerprint",
    "model_stage_key",
    "options_fingerprint",
    "stable_hash",
    "taint_stage_key",
    "user_fingerprint",
    "INVALIDATES_ANALYZERS",
    "INVALIDATES_EVERYTHING",
    "INVALIDATES_NOTHING",
    "InvalidationPlan",
    "ReanalysisOutcome",
    "certificate_survives",
    "classify_invalidation",
    "reanalyze",
    "AnalysisJob",
    "JobResult",
    "RiskEventSummary",
    "KINDS",
    "AnalysisKind",
    "AnalyzerConfig",
    "KindOutcome",
    "get_kind",
    "kind_names",
    "register_kind",
    "BACKENDS",
    "Backend",
    "BatchEngine",
    "BatchResult",
    "PreparedJob",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "EngineStats",
    "resolve_options",
    "ModelScenario",
    "ScenarioGenerator",
    "scenario_jobs",
]
