"""Batch risk-assessment engine: fleets of models, analysed at scale.

The paper's method is one model, one user, one report. This package is
the production layer over it:

- **content fingerprints** (:mod:`~repro.engine.fingerprint`) give
  every model / options / user / analyzer combination a stable identity;
- **pluggable caches** (:mod:`~repro.engine.cache`) memoise generated
  LTSs and finished reports — in-memory LRU tiered over an on-disk
  store that survives restarts and is shared across worker processes;
- the :class:`~repro.engine.runner.BatchEngine` executes job fleets
  through serial, thread or process backends with deterministic result
  ordering and per-batch deduplication;
- the :class:`~repro.engine.scenarios.ScenarioGenerator` manufactures
  seed-deterministic workloads across healthcare, loyalty and scaled
  synthetic templates with Westin-persona user populations;
- the :class:`~repro.engine.aggregate.FleetReport` rolls per-job
  reports into fleet-level summaries: worst-case disclosure paths,
  risk-matrix histograms, per-variant deltas.

Quickstart::

    from repro.engine import (BatchEngine, FleetReport,
                              ScenarioGenerator, scenario_jobs)

    scenarios = ScenarioGenerator(seed=7).generate(50)
    engine = BatchEngine(backend="process", cache_dir=".repro-cache")
    batch = engine.run(scenario_jobs(scenarios))
    print(FleetReport(batch.results, batch.stats).describe())
"""

from .aggregate import FleetReport
from .cache import (
    CacheStats,
    DiskCache,
    LRUCache,
    TieredCache,
    build_cache,
)
from .fingerprint import (
    job_fingerprint,
    lts_cache_key,
    model_fingerprint,
    options_fingerprint,
    stable_hash,
    user_fingerprint,
)
from .jobs import AnalysisJob, JobResult, RiskEventSummary
from .runner import (
    BACKENDS,
    BatchEngine,
    BatchResult,
    EngineStats,
    resolve_options,
)
from .scenarios import ModelScenario, ScenarioGenerator, scenario_jobs

__all__ = [
    "FleetReport",
    "CacheStats",
    "DiskCache",
    "LRUCache",
    "TieredCache",
    "build_cache",
    "job_fingerprint",
    "lts_cache_key",
    "model_fingerprint",
    "options_fingerprint",
    "stable_hash",
    "user_fingerprint",
    "AnalysisJob",
    "JobResult",
    "RiskEventSummary",
    "BACKENDS",
    "BatchEngine",
    "BatchResult",
    "EngineStats",
    "resolve_options",
    "ModelScenario",
    "ScenarioGenerator",
    "scenario_jobs",
]
