"""The stdlib HTTP/JSON front-end over :class:`AnalysisService`.

``repro serve`` runs a :class:`http.server.ThreadingHTTPServer` whose
handler routes a small REST surface onto the facade — every endpoint
speaks the typed wire contract of :mod:`~repro.service.messages`:

===========  =============================  ================================
method       path                           operation
===========  =============================  ================================
``GET``      ``/v1/health``                 service/topology snapshot
``GET``      ``/v1/kinds``                  registered analysis kinds
``POST``     ``/v1/models``                 upload DSL text -> content hash
``POST``     ``/v1/analyze``                :class:`AnalysisRequest`
``POST``     ``/v1/sweep``                  :class:`SweepRequest`
``POST``     ``/v1/reanalyze``              :class:`ReanalyzeRequest`
``POST``     ``/v1/lint``                   :class:`LintRequest`
``POST``     ``/v1/jobs``                   async submit -> job id (202)
``GET``      ``/v1/jobs/<id>``              poll status / fetch result
``GET``      ``/v1/cache/stats``            store + live cache accounting
``POST``     ``/v1/cache/prune``            age/size-budget eviction
===========  =============================  ================================

Failures are structured: a :class:`~repro.service.messages.ServiceError`
maps onto its declared HTTP status with an ``{"error": {code, message}}``
body; malformed JSON and unknown routes are 400/404 with the same
shape. Handlers run on the server's per-connection threads, so
concurrent requests genuinely share the facade's tiered caches.

Model references over the wire may not use server-side file paths
(requests parse with ``allow_paths=False``); upload text and reference
it by hash instead.
"""

from __future__ import annotations

import json
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import parse_qs

from ..errors import ReproError
from .facade import OPS, AnalysisService
from .messages import (
    AnalysisRequest,
    DeadlineError,
    LintRequest,
    NotFoundError,
    ReanalyzeRequest,
    RequestError,
    ServiceError,
    SweepRequest,
    check_payload,
)

#: Request parsers by async-operation name.
_REQUEST_TYPES = {
    "analyze": AnalysisRequest,
    "sweep": SweepRequest,
    "reanalyze": ReanalyzeRequest,
}

#: Upload body cap — a DSL model is text, not a blob store.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default per-request socket/time budget, overridable via
#: ``repro serve --request-timeout`` on both front-ends.
DEFAULT_REQUEST_TIMEOUT = 60.0


def split_target(target: str) -> Tuple[str, Dict[str, list]]:
    """An HTTP request target as ``(path, query-params)``.

    The routing tables key on the bare path; query parameters carry
    per-request serving options (today: ``stream=1``).
    """
    path, _, query = target.partition("?")
    return path, parse_qs(query) if query else {}


def wants_stream(query: Dict[str, list]) -> bool:
    """Whether the query string opts into an ndjson streaming reply."""
    values = query.get("stream")
    return bool(values) and values[-1] not in ("0", "", "false")


# -- routing -----------------------------------------------------------------
#
# Pure (service, path[, payload]) -> (status, body) functions, shared
# by the socket handler below and by in-process fronts that must
# behave exactly like the wire (repro.fleet's LoopbackTransport) —
# one routing table, no drift.

def route_get(service: AnalysisService,
              path: str) -> Tuple[int, dict]:
    """Route one GET; returns ``(status, body)`` or raises a
    :class:`~repro.service.messages.ServiceError`."""
    if path == "/v1/health":
        return 200, service.describe()
    if path == "/v1/kinds":
        return 200, {"kinds": service.describe()["kinds"]}
    if path == "/v1/models":
        return 200, {"models": list(service.model_hashes())}
    if path == "/v1/cache/stats":
        return 200, service.cache_stats().to_dict()
    if path.startswith("/v1/jobs/"):
        job_id = path[len("/v1/jobs/"):]
        return 200, service.job_status(job_id).to_dict()
    raise NotFoundError(f"no such endpoint: GET {path}")


def route_post(service: AnalysisService, path: str,
               payload: dict) -> Tuple[int, dict]:
    """Route one POST (body already JSON-decoded); returns
    ``(status, body)`` or raises a
    :class:`~repro.service.messages.ServiceError`. Model references
    parse with ``allow_paths=False`` — this is the wire surface."""
    if path == "/v1/models":
        checked = check_payload(
            payload, {"text": ((str,), True, None)},
            "model upload")
        model_hash = service.upload_model(checked["text"])
        return 201, {"model_hash": model_hash}
    if path in ("/v1/analyze", "/v1/sweep", "/v1/reanalyze"):
        op = path[len("/v1/"):]
        request = _REQUEST_TYPES[op].from_dict(payload,
                                               allow_paths=False)
        return 200, getattr(service, op)(request).to_dict()
    if path == "/v1/lint":
        request = LintRequest.from_dict(payload, allow_paths=False)
        return 200, service.lint(request).to_dict()
    if path == "/v1/jobs":
        checked = check_payload(payload, {
            "op": ((str,), True, None),
            "request": ((dict,), True, None),
        }, "job submission")
        op = checked["op"]
        if op not in OPS:
            raise RequestError(
                f"unknown operation {op!r}; one of {OPS}")
        request = _REQUEST_TYPES[op].from_dict(
            checked["request"], allow_paths=False)
        job_id = service.submit(op, request)
        return 202, service.job_status(job_id).to_dict()
    if path == "/v1/cache/prune":
        checked = check_payload(payload, {
            "max_age_days": ((int, float), False, None),
            "max_bytes": ((int,), False, None),
        }, "cache prune")
        max_age = checked["max_age_days"] * 86400.0 \
            if checked["max_age_days"] is not None else None
        return 200, service.prune_cache(
            max_age=max_age,
            max_bytes=checked["max_bytes"]).to_dict()
    raise NotFoundError(f"no such endpoint: POST {path}")


#: POST paths that honour ``?stream=1``.
STREAM_ROUTES = ("/v1/sweep",)


def route_post_stream(service: AnalysisService, path: str,
                      payload: dict,
                      should_stop=None) -> Iterator[dict]:
    """Route one streaming POST; returns the ndjson line iterator.

    Shared by both socket front-ends and the fleet's
    :class:`~repro.fleet.transport.LoopbackTransport`, exactly like
    :func:`route_post` — one routing table, no drift. Request
    validation errors raise *before* the iterator is returned, so
    callers can still answer a typed error status; once iteration
    starts the response is committed and failures must travel as a
    final error line instead.
    """
    if path == "/v1/sweep":
        request = SweepRequest.from_dict(payload, allow_paths=False)
        return service.sweep_stream(request,
                                    should_stop=should_stop)
    raise NotFoundError(
        f"no streaming endpoint: POST {path} (streaming routes: "
        f"{', '.join(STREAM_ROUTES)})")


class ServiceHTTPRequestHandler(BaseHTTPRequestHandler):
    """Routes the REST surface onto one shared facade instance."""

    #: Injected by :func:`make_server`.
    service: AnalysisService = None
    #: Suppress per-request stderr logging unless asked for.
    verbose = False
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    #: Socket timeout: a stalled client must not pin a handler thread.
    #: Overridden per server by ``repro serve --request-timeout``; a
    #: timeout *mid-request* answers a typed 408 instead of silently
    #: dropping the connection.
    timeout = DEFAULT_REQUEST_TIMEOUT

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        if self.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client, don't just hang up (set when a body
            # was refused unread and keep-alive would desync).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        if self.headers.get("Transfer-Encoding") is not None:
            # No chunked decoding here: silently reading length 0
            # would both drop the caller's body and desync keep-alive
            # with the unread chunks.
            self.close_connection = True
            raise RequestError(
                "chunked request bodies are not supported; send a "
                "Content-Length")
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # The body stays unread (and a negative/garbage length
            # must never reach rfile.read, which would block until
            # EOF): drop the connection after the error response, or
            # the next keep-alive request would parse leftover body
            # bytes as its request line.
            self.close_connection = True
            raise RequestError(
                "request body needs a Content-Length between 0 and "
                f"{MAX_BODY_BYTES} bytes")
        try:
            raw = self.rfile.read(length) if length else b""
        except socket.timeout as error:
            # The client stalled mid-body past the request budget:
            # answer the typed 408 the deadline contract promises
            # instead of silently dropping the connection.
            self.close_connection = True
            raise DeadlineError(
                f"request body not received within {self.timeout}s"
            ) from error
        except OSError as error:
            # Stalled or broken client mid-body: the socket is no
            # longer usable for keep-alive, and the failure is the
            # caller's, not a 500.
            self.close_connection = True
            raise RequestError(
                f"request body could not be read: {error}") from error
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(
                f"request body is not valid JSON: {error}") from error

    def _dispatch(self, route) -> None:
        try:
            status, payload = route()
        except ServiceError as error:
            status, payload = error.http_status, error.to_dict()
        except ReproError as error:
            # Engine-level input problems (bad kind params, unknown
            # agreed services, ...) are the caller's fault: 400, not
            # a server error.
            status, payload = 400, {"error": {
                "code": "analysis_error", "message": str(error)}}
        except Exception as error:  # noqa: BLE001 — server boundary
            status, payload = 500, {"error": {
                "code": "internal", "message": str(error)}}
        try:
            self._send_json(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            # pragma: no cover — the client went away mid-response;
            # nothing to answer, just give the connection up.
            self.close_connection = True

    # -- streaming ---------------------------------------------------------

    def _stream_ndjson(self, lines: Iterator[dict]) -> None:
        """Emit one chunked ndjson line per iterator item.

        The status is committed before the first line, so mid-stream
        failures become a final ``{"error": ...}`` line. A client
        that disconnects mid-stream surfaces as a failed chunk write;
        the iterator is closed (``GeneratorExit`` inside the facade's
        generator stops the remaining jobs) and the connection given
        up.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(line: dict) -> None:
            data = json.dumps(
                line, separators=(",", ":")).encode("utf-8") + b"\n"
            self.wfile.write(b"%x\r\n%s\r\n" % (len(data), data))
            self.wfile.flush()

        try:
            try:
                for line in lines:
                    chunk(line)
            except ServiceError as error:
                chunk(error.to_dict())
            except ReproError as error:
                chunk({"error": {"code": "analysis_error",
                                 "message": str(error)}})
            except Exception as error:  # noqa: BLE001 — boundary
                chunk({"error": {"code": "internal",
                                 "message": str(error)}})
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client went away mid-stream: stop producing.
            self.close_connection = True
        finally:
            close = getattr(lines, "close", None)
            if close is not None:
                close()

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib name
        path, _ = split_target(self.path)
        self._dispatch(lambda: self._route_get(path))

    def do_POST(self) -> None:  # noqa: N802 — stdlib name
        path, query = split_target(self.path)
        if path in STREAM_ROUTES and wants_stream(query):
            try:
                lines = route_post_stream(self.service, path,
                                          self._read_json())
            except Exception:  # noqa: BLE001 — pre-stream errors
                # Validation failed before the stream was committed:
                # answer the same typed status a buffered request
                # would get.
                def refuse():
                    raise
                self._dispatch(refuse)
                return
            self._stream_ndjson(lines)
            return
        self._dispatch(lambda: self._route_post(path))

    def _route_get(self, path: str) -> Tuple[int, dict]:
        return route_get(self.service, path)

    def _route_post(self, path: str) -> Tuple[int, dict]:
        return route_post(self.service, path, self._read_json())


def make_server(service: AnalysisService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                request_timeout: float = DEFAULT_REQUEST_TIMEOUT
                ) -> ThreadingHTTPServer:
    """A ready-to-run threaded server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — the shape the tests and benchmarks
    use. The caller owns the lifecycle: ``serve_forever()`` /
    ``shutdown()`` / ``server_close()``. ``request_timeout`` is the
    per-request socket budget; a client stalling mid-body past it
    gets a typed 408 rather than a silent drop.
    """
    handler = type("BoundServiceHandler",
                   (ServiceHTTPRequestHandler,),
                   {"service": service, "verbose": verbose,
                    "timeout": request_timeout})
    return ThreadingHTTPServer((host, port), handler)


def serve(service: AnalysisService, host: str = "127.0.0.1",
          port: int = 8787, verbose: bool = False,
          ready_message: Optional[bool] = True,
          request_timeout: float = DEFAULT_REQUEST_TIMEOUT) -> int:
    """Run the threaded front-end until interrupted (the body of
    ``repro serve --threaded``).

    SIGTERM and SIGINT both stop the accept loop; ``port=0`` binds an
    ephemeral port and the ready message prints the *actually bound*
    port so parallel test servers can discover their address.
    """
    import signal
    import threading
    server = make_server(service, host, port, verbose=verbose,
                         request_timeout=request_timeout)
    bound_host, bound_port = server.server_address[:2]
    if ready_message:
        print(f"repro service listening on "
              f"http://{bound_host}:{bound_port} "
              f"(backend={service.describe()['backend']}, "
              f"cache_dir={service.cache_dir})", flush=True)
    previous = None
    if threading.current_thread() is threading.main_thread():
        # shutdown() must not run on the serve_forever thread (it
        # deadlocks); hand it to a helper and let the signal return.
        def on_term(signum, frame):
            threading.Thread(target=server.shutdown,
                             daemon=True).start()
        previous = signal.signal(signal.SIGTERM, on_term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        server.server_close()
        service.close()
    return 0
