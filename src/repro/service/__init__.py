"""Unified analysis service: one facade, one wire contract, two fronts.

The paper's method became an engine (PRs 1-2); this package makes it a
*service*. :class:`~repro.service.facade.AnalysisService` owns the
batch engine, its tiered caches, the analysis-kind registry, scenario
generation and incremental re-analysis behind a typed
request/response API (:mod:`~repro.service.messages`), and two
front-ends expose that same API over HTTP/JSON through one shared
routing table: the asyncio server (:mod:`~repro.service.aio`, the
``repro serve`` default — streaming ndjson sweeps, backpressure with
typed 429 shedding, request deadlines, disconnect cancellation,
rate limiting and auth) and the threaded server
(:mod:`~repro.service.http`, ``repro serve --threaded``). The CLI's
``repro engine *`` subcommands are thin clients of the facade, so a
request produces byte-identical result signatures whether it arrived
from the command line, Python code or the network.

Quickstart — in process::

    from repro.service import (AnalysisService, AnalysisRequest,
                               ModelRef, UserSpec)

    service = AnalysisService(backend="thread",
                              cache_dir=".repro-cache")
    model_hash = service.upload_model(open("model.dsl").read())
    response = service.analyze(AnalysisRequest(
        models=(ModelRef(hash=model_hash),),
        user=UserSpec(agree=("MedicalService",),
                      sensitivities=(("diagnosis", "high"),))))
    print(response.max_level, response.stats.describe())

Quickstart — over HTTP (see ``examples/service_api.py`` for the full
client-side walkthrough)::

    from repro.service import AnalysisService, make_server
    import threading

    server = make_server(AnalysisService(), port=8787)
    threading.Thread(target=server.serve_forever,
                     daemon=True).start()
    # POST /v1/models, /v1/analyze, /v1/jobs ... then:
    server.shutdown()

Async submissions (``service.submit("sweep", SweepRequest(count=50))``)
return a job id — the stable hash of the canonical request, the same
identity discipline the result cache uses — polled via
``service.job_status(job_id)`` or ``GET /v1/jobs/<id>``.
"""

from .aio import (
    AsyncServerThread,
    AsyncServiceServer,
    TokenBucket,
    bearer_auth,
    serve_async,
)
from .facade import OPS, AnalysisService
from .http import (
    ServiceHTTPRequestHandler,
    make_server,
    route_get,
    route_post,
    route_post_stream,
    serve,
    split_target,
)
from .messages import (
    AnalysisRequest,
    AnalysisResponse,
    CachePruneResponse,
    CacheStatsResponse,
    DeadlineError,
    InvalidModelError,
    JobStatus,
    LintRequest,
    LintResponse,
    ModelRef,
    NotFoundError,
    OverloadedError,
    RateLimitedError,
    ReanalyzeRequest,
    ReanalyzeResponse,
    RequestError,
    ServiceError,
    SweepRequest,
    UnauthorizedError,
    UserSpec,
    WorkerLoad,
    check_payload,
    population_breakdown,
    result_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    "OPS",
    "AnalysisService",
    "AsyncServerThread",
    "AsyncServiceServer",
    "ServiceHTTPRequestHandler",
    "TokenBucket",
    "bearer_auth",
    "make_server",
    "route_get",
    "route_post",
    "route_post_stream",
    "serve",
    "serve_async",
    "split_target",
    "AnalysisRequest",
    "AnalysisResponse",
    "CachePruneResponse",
    "CacheStatsResponse",
    "DeadlineError",
    "InvalidModelError",
    "JobStatus",
    "LintRequest",
    "LintResponse",
    "ModelRef",
    "NotFoundError",
    "OverloadedError",
    "RateLimitedError",
    "ReanalyzeRequest",
    "ReanalyzeResponse",
    "RequestError",
    "ServiceError",
    "SweepRequest",
    "UnauthorizedError",
    "UserSpec",
    "WorkerLoad",
    "check_payload",
    "population_breakdown",
    "result_from_dict",
    "result_to_dict",
    "stats_from_dict",
    "stats_to_dict",
]
