"""The asyncio HTTP front-end: the production face of the service.

``repro serve`` defaults to this server (stdlib only — one event
loop, ``asyncio.start_server``). It speaks the same wire contract as
the threaded front-end through the *same* routing table
(:func:`~repro.service.http.route_get` / ``route_post`` /
``route_post_stream``), so non-streaming responses are byte-identical
— and adds the four production behaviours the threaded server lacks:

- **Backpressure.** Blocking engine work runs on a bounded executor
  (``max_inflight`` threads); up to ``queue_limit`` further requests
  may wait for a slot. Beyond that the request is *shed* with a typed
  429 ``overloaded`` error instead of stalling every client behind a
  growing queue.
- **Streaming.** ``POST /v1/sweep?stream=1`` answers
  ``application/x-ndjson``: one ``{"index", "fingerprint", "result"}``
  line per job as it completes, then a ``{"summary": ...}`` line —
  the first result is on the wire before the second job has started,
  so fleet-sized sweeps pipeline into their consumers.
- **Timeouts and cancellation.** A buffered request exceeding
  ``request_timeout`` answers a typed 408 ``deadline_exceeded``. A
  client that disconnects cancels its pending job future — work that
  has not yet reached an executor thread never runs at all, and a
  streaming sweep stops between jobs.
- **Rate limiting and auth.** A global token bucket
  (``rate_limit`` requests/second, ``rate_burst`` capacity) answers
  429 ``rate_limited`` when drained, and an optional ``auth`` hook
  (or the ``auth_token`` bearer-token convenience) answers 401
  ``unauthorized``. ``GET /v1/health`` is exempt from both —
  liveness must stay observable to fleet coordinators under load.

The server registers a load provider on the facade, so the health
body's ``load`` block reports ``queue_depth`` (requests waiting for
an executor slot), ``shed_total`` (429s so far) and
``inflight_limit`` alongside the pre-existing fields —
:class:`~repro.service.messages.WorkerLoad` decodes all of them.

Shutdown is graceful: SIGINT/SIGTERM stop the accept loop, idle
keep-alive connections close immediately, and in-flight requests
drain (bounded by ``drain_timeout``) before the socket goes away.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Callable, Dict, Optional, Tuple

from ..errors import ReproError
from .facade import AnalysisService
from .http import (
    DEFAULT_REQUEST_TIMEOUT,
    MAX_BODY_BYTES,
    STREAM_ROUTES,
    route_get,
    route_post,
    route_post_stream,
    split_target,
    wants_stream,
)
from .messages import (
    DeadlineError,
    OverloadedError,
    RateLimitedError,
    RequestError,
    ServiceError,
    UnauthorizedError,
)

#: Socket read size for the connection buffer.
_READ_CHUNK = 65536
#: Header-section cap (the body has its own MAX_BODY_BYTES bound).
_MAX_HEAD_BYTES = 65536


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``try_take`` never blocks — the front-end's contract is to shed
    with a typed 429, not to stall the event loop. Thread-safe so
    executor-side callers could consult it too.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None \
            else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError(
                f"burst must be >= 1, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_take(self, amount: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False


def bearer_auth(token: str):
    """The ``--auth-token`` hook: require ``Authorization: Bearer``.

    Comparison is constant-time-ish via ``hmac.compare_digest`` —
    a front-end credential check should not leak length/prefix
    timing even if the stakes here are modest.
    """
    import hmac
    expected = f"Bearer {token}"

    def check(method: str, path: str,
              headers: Dict[str, str]) -> bool:
        return hmac.compare_digest(
            headers.get("authorization", ""), expected)

    return check


class _BadRequest(Exception):
    """A request so malformed it has no usable frame."""


class _Connection:
    """One client connection: buffered parsing plus pushback.

    The parser owns its own byte buffer (rather than using
    ``StreamReader.readuntil``) so the disconnect watcher can *feed
    back* any pipelined bytes it read while a request was in flight
    — nothing is ever lost between requests on a keep-alive
    connection.
    """

    __slots__ = ("reader", "writer", "buffer", "busy", "task",
                 "pending_read")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.buffer = bytearray()
        self.busy = False
        self.task: Optional[asyncio.Task] = None
        #: The one in-flight socket read. Every read goes through
        #: :meth:`watch_read`, so a disconnect watch left pending
        #: when its request completes is simply *re-awaited* by the
        #: next request's parser — no per-request task churn, no
        #: double-read races on the StreamReader.
        self.pending_read: Optional[asyncio.Task] = None

    def feed(self, data: bytes) -> None:
        self.buffer.extend(data)

    def watch_read(self) -> asyncio.Task:
        """The connection's single outstanding socket read."""
        if self.pending_read is None:
            self.pending_read = asyncio.ensure_future(
                self.reader.read(_READ_CHUNK))
        return self.pending_read

    async def _fill(self) -> bool:
        task = self.watch_read()
        try:
            data = await task
        finally:
            self.pending_read = None
        if not data:
            return False
        self.buffer.extend(data)
        return True

    async def read_request(self
                           ) -> Optional[Tuple[str, str,
                                               Dict[str, str]]]:
        """``(method, target, headers)`` — or ``None`` at EOF."""
        while b"\r\n\r\n" not in self.buffer:
            if len(self.buffer) > _MAX_HEAD_BYTES:
                raise _BadRequest("request head exceeds "
                                  f"{_MAX_HEAD_BYTES} bytes")
            if not await self._fill():
                if self.buffer:
                    raise _BadRequest("truncated request head")
                return None
        head, _, _ = bytes(self.buffer).partition(b"\r\n\r\n")
        del self.buffer[:len(head) + 4]
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def read_body(self, headers: Dict[str, str]) -> bytes:
        """The request body, honouring the wire's body policy.

        Same rules as the threaded front-end: no chunked request
        bodies, a sane Content-Length, and a typed error (with the
        connection dropped) otherwise.
        """
        if headers.get("transfer-encoding") is not None:
            raise RequestError(
                "chunked request bodies are not supported; send a "
                "Content-Length")
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            raise RequestError(
                "request body needs a Content-Length between 0 and "
                f"{MAX_BODY_BYTES} bytes")
        while len(self.buffer) < length:
            if not await self._fill():
                raise RequestError(
                    "request body truncated by the client")
        body = bytes(self.buffer[:length])
        del self.buffer[:length]
        return body


class AsyncServiceServer:
    """The asyncio front-end over one :class:`AnalysisService`.

    Construct, then ``await start()`` inside a running loop; the
    bound address is ``(host, port)`` afterwards (``port=0`` resolves
    to the ephemeral port actually bound). ``await shutdown()``
    drains and closes. :class:`AsyncServerThread` wraps the lifecycle
    for synchronous callers (tests, benchmarks), :func:`serve_async`
    for the CLI.
    """

    def __init__(self, service: AnalysisService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 verbose: bool = False,
                 max_inflight: int = 8,
                 queue_limit: int = 64,
                 rate_limit: Optional[float] = None,
                 rate_burst: Optional[float] = None,
                 auth=None,
                 auth_token: Optional[str] = None,
                 request_timeout: Optional[float]
                 = DEFAULT_REQUEST_TIMEOUT,
                 drain_timeout: float = 10.0):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {queue_limit}")
        if auth is None and auth_token is not None:
            auth = bearer_auth(auth_token)
        self.service = service
        self.host = host
        self.port = port
        self.verbose = verbose
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.request_timeout = request_timeout or None
        self.drain_timeout = drain_timeout
        self._bucket = TokenBucket(rate_limit, rate_burst) \
            if rate_limit else None
        self._auth = auth
        # Counters (event-loop-owned; read cross-thread by health).
        self.requests_total = 0
        self.shed_total = 0
        self.cancelled_total = 0
        self.timeouts_total = 0
        self._inflight = 0
        self._conns: set = set()
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            self.max_inflight, thread_name_prefix="repro-aio")
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        self.host, self.port = \
            self._server.sockets[0].getsockname()[:2]
        self.service.set_load_provider(self.load_snapshot)

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, release the pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        idle = [conn for conn in list(self._conns) if not conn.busy]
        for conn in idle:
            if conn.task is not None:
                conn.task.cancel()
        tasks = [conn.task for conn in list(self._conns)
                 if conn.task is not None]
        if tasks and drain:
            await asyncio.wait(tasks, timeout=self.drain_timeout)
        elif tasks:
            for task in tasks:
                task.cancel()
            await asyncio.wait(tasks, timeout=1.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self.service.set_load_provider(None)

    def load_snapshot(self) -> dict:
        """The front-end half of the health body's ``load`` block."""
        return {
            "queue_depth": max(0, self._inflight - self.max_inflight),
            "shed_total": self.shed_total,
            "inflight_limit": self.max_inflight,
        }

    # -- per-connection loop -----------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        conn.task = asyncio.current_task()
        self._conns.add(conn)
        try:
            while not self._draining:
                conn.busy = False
                try:
                    request = await conn.read_request()
                except asyncio.CancelledError:
                    break        # drain cancelled an idle read
                except _BadRequest as error:
                    conn.busy = True
                    await self._send_json(
                        conn, 400,
                        {"error": {"code": "bad_request",
                                   "message": str(error)}},
                        close=True)
                    break
                if request is None:
                    break
                conn.busy = True
                if not await self._serve_one(conn, *request):
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(conn)
            await self._reap_watch(conn, conn.pending_read)
            conn.pending_read = None
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 — socket teardown
                pass

    # -- one request -------------------------------------------------------

    def _gate(self, method: str, path: str,
              headers: Dict[str, str]) -> None:
        """Auth, then rate limit. Health stays open — a coordinator
        must be able to probe liveness under any policy."""
        if method == "GET" and path == "/v1/health":
            return
        if self._auth is not None and \
                not self._auth(method, path, headers):
            raise UnauthorizedError(
                "request refused by the auth hook")
        if self._bucket is not None and not self._bucket.try_take():
            raise RateLimitedError(
                "rate limit exceeded; retry after a pause")

    @staticmethod
    def _dispatch(route) -> Tuple[int, dict]:
        """The threaded front-end's error taxonomy, shared verbatim."""
        try:
            return route()
        except ServiceError as error:
            return error.http_status, error.to_dict()
        except ReproError as error:
            return 400, {"error": {"code": "analysis_error",
                                   "message": str(error)}}
        except Exception as error:  # noqa: BLE001 — server boundary
            return 500, {"error": {"code": "internal",
                                   "message": str(error)}}

    async def _serve_one(self, conn: _Connection, method: str,
                         target: str,
                         headers: Dict[str, str]) -> bool:
        """Handle one request; returns keep-alive."""
        self.requests_total += 1
        path, query = split_target(target)
        keep = headers.get("connection", "").lower() != "close"
        # The body must come off the wire before any response or
        # keep-alive desyncs — same discipline as the threaded server.
        try:
            body = await conn.read_body(headers) \
                if method == "POST" else b""
        except ServiceError as error:
            await self._send_json(conn, error.http_status,
                                  error.to_dict(), close=True)
            return False
        try:
            self._gate(method, path, headers)
        except ServiceError as error:
            await self._send_json(
                conn, error.http_status, error.to_dict(),
                close=error.http_status == 401)
            return keep and error.http_status != 401
        if method == "GET":
            # GETs are cheap facade snapshots: answered inline on the
            # loop, never queued behind engine work — health and job
            # polls stay responsive when the executor is saturated.
            status, payload = self._dispatch(
                lambda: route_get(self.service, path))
            await self._send_json(conn, status, payload)
            return keep
        if method != "POST":
            await self._send_json(
                conn, 405, {"error": {
                    "code": "bad_request",
                    "message": f"unsupported method {method}"}},
                close=True)
            return False
        try:
            payload = self._parse_json(body)
        except ServiceError as error:
            await self._send_json(conn, error.http_status,
                                  error.to_dict())
            return keep
        if path in STREAM_ROUTES and wants_stream(query):
            return await self._serve_stream(conn, path, payload, keep)
        return await self._serve_post(conn, path, payload, keep)

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(
                f"request body is not valid JSON: {error}") from error

    def _shed(self) -> bool:
        return self._inflight >= self.max_inflight + self.queue_limit

    def _submit(self, work):
        """Run ``work`` on the bounded executor, inflight-accounted.

        The counter tracks executor occupancy, not awaiting: it drops
        when the work *finishes* (or is cancelled before starting),
        even if the awaiting handler gave up at its deadline — a
        timed-out job still holds its slot until done, and the shed
        threshold must see that.
        """
        self._inflight += 1
        future = self._loop.run_in_executor(self._executor, work)

        def finished(f):
            self._inflight -= 1
            if not f.cancelled():
                f.exception()  # consume; _dispatch already typed it

        future.add_done_callback(finished)
        return future

    async def _serve_post(self, conn: _Connection, path: str,
                          payload: dict, keep: bool) -> bool:
        if self._shed():
            self.shed_total += 1
            error = OverloadedError(
                f"work queue full ({self._inflight} in flight, "
                f"limit {self.max_inflight}+{self.queue_limit}); "
                "retry later or against another worker")
            await self._send_json(conn, error.http_status,
                                  error.to_dict())
            return keep
        future = self._submit(lambda: self._dispatch(
            lambda: route_post(self.service, path, payload)))
        deadline = None if self.request_timeout is None \
            else self._loop.time() + self.request_timeout
        while True:
            # The disconnect watch IS the connection's single read
            # task: when the job wins the race, the still-pending
            # read simply stays parked on the connection and the
            # next request's parser awaits it — no per-request task
            # create/cancel churn on the hot path.
            watch = conn.watch_read()
            timeout = None if deadline is None \
                else max(0.0, deadline - self._loop.time())
            done, _ = await asyncio.wait(
                {future, watch}, timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED)
            if future in done:
                status, reply = future.result()
                await self._send_json(conn, status, reply)
                return keep
            if watch in done:
                conn.pending_read = None
                try:
                    data = watch.result()
                except (ConnectionResetError, BrokenPipeError,
                        OSError):
                    data = b""
                if not data:
                    # Client gone: cancel the pending job future.
                    # Queued work never runs; running work is
                    # abandoned (its executor slot frees on
                    # completion, and its result-cache write
                    # still lands).
                    future.cancel()
                    self.cancelled_total += 1
                    return False
                conn.feed(data)   # pipelined bytes: keep them
                continue
            # Deadline exceeded.
            future.cancel()
            self.timeouts_total += 1
            error = DeadlineError(
                f"request exceeded its {self.request_timeout}s "
                "budget")
            await self._send_json(conn, error.http_status,
                                  error.to_dict(), close=True)
            return False

    async def _reap_watch(self, conn: _Connection,
                          watch: Optional[asyncio.Task]) -> None:
        """Retire the connection's parked read at teardown so a
        still-pending socket read never outlives the connection (an
        unawaited task that fails would log at GC). A watch that
        raced in real bytes hands them back to the connection
        buffer."""
        if watch is None:
            return
        watch.cancel()
        try:
            data = await watch
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError, OSError):
            return
        if data:
            conn.feed(data)

    # -- streaming ---------------------------------------------------------

    async def _serve_stream(self, conn: _Connection, path: str,
                            payload: dict, keep: bool) -> bool:
        """One ndjson streaming response (``/v1/sweep?stream=1``).

        The whole stream occupies one executor slot (it *is* engine
        work), so it sheds exactly like a buffered request. Lines
        flow through a small queue whose blocking put gives the
        producer thread real backpressure from the client's TCP
        window; ``request_timeout`` deliberately does not apply — a
        streaming sweep is bounded by the client staying connected.
        """
        if self._shed():
            self.shed_total += 1
            error = OverloadedError(
                f"work queue full ({self._inflight} in flight, "
                f"limit {self.max_inflight}+{self.queue_limit}); "
                "retry later or against another worker")
            await self._send_json(conn, error.http_status,
                                  error.to_dict())
            return keep
        stop = threading.Event()
        # Validation (and fleet generation) runs on the executor; a
        # refusal here is still a typed pre-commit status.
        build = self._submit(lambda: self._dispatch(
            lambda: (200, route_post_stream(
                self.service, path, payload,
                should_stop=stop.is_set))))
        status, lines = await build
        if status != 200:
            await self._send_json(conn, status, lines)
            return keep

        queue: asyncio.Queue = asyncio.Queue(maxsize=4)
        loop = self._loop

        def produce():
            try:
                try:
                    for line in lines:
                        asyncio.run_coroutine_threadsafe(
                            queue.put(line), loop).result()
                        if stop.is_set():
                            break
                except ServiceError as error:
                    asyncio.run_coroutine_threadsafe(
                        queue.put(error.to_dict()), loop).result()
                except ReproError as error:
                    asyncio.run_coroutine_threadsafe(
                        queue.put({"error": {
                            "code": "analysis_error",
                            "message": str(error)}}), loop).result()
                except Exception as error:  # noqa: BLE001 — boundary
                    asyncio.run_coroutine_threadsafe(
                        queue.put({"error": {
                            "code": "internal",
                            "message": str(error)}}), loop).result()
            finally:
                close = getattr(lines, "close", None)
                if close is not None:
                    close()
                asyncio.run_coroutine_threadsafe(
                    queue.put(None), loop).result()

        producer = self._submit(produce)
        conn.writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n")
        clean = False
        getter: Optional[asyncio.Task] = None
        try:
            while True:
                if getter is None:
                    getter = asyncio.ensure_future(queue.get())
                watch = conn.watch_read()
                done, _ = await asyncio.wait(
                    {getter, watch},
                    return_when=asyncio.FIRST_COMPLETED)
                if watch in done:
                    conn.pending_read = None
                    try:
                        data = watch.result()
                    except (ConnectionResetError, BrokenPipeError,
                            OSError):
                        data = b""
                    if not data:
                        # Mid-stream disconnect: stop the producer
                        # between jobs.
                        stop.set()
                        self.cancelled_total += 1
                        break
                    conn.feed(data)
                    continue
                item = getter.result()
                getter = None
                if item is None:
                    clean = True
                    break
                data = json.dumps(
                    item,
                    separators=(",", ":")).encode("utf-8") + b"\n"
                try:
                    conn.writer.write(
                        b"%x\r\n%s\r\n" % (len(data), data))
                    await conn.writer.drain()
                except (ConnectionResetError, BrokenPipeError,
                        OSError):
                    stop.set()
                    self.cancelled_total += 1
                    break
        finally:
            if not clean:
                # Unblock a producer stuck on a full queue, then wait
                # for its sentinel so the executor slot is truly free.
                # The in-flight getter is consumed, never cancelled —
                # cancelling could drop the sentinel on the floor.
                while True:
                    if getter is None:
                        getter = asyncio.ensure_future(queue.get())
                    item = await getter
                    getter = None
                    if item is None:
                        break
            elif getter is not None:
                getter.cancel()
        if clean:
            try:
                conn.writer.write(b"0\r\n\r\n")
                await conn.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                return False
            return keep
        return False

    # -- response plumbing -------------------------------------------------

    async def _send_json(self, conn: _Connection, status: int,
                         payload: dict, close: bool = False) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n")
        if close:
            head += "Connection: close\r\n"
        conn.writer.write(head.encode("latin-1") + b"\r\n" + body)
        try:
            await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class AsyncServerThread:
    """The asyncio front-end on a dedicated loop thread.

    The synchronous-world wrapper tests and benchmarks use::

        front = AsyncServerThread(service, max_inflight=4)
        front.start()
        ... urllib / http.client against front.base ...
        front.stop()

    ``start()`` blocks until the socket is bound (so ``front.port``
    is the real ephemeral port); ``stop()`` runs the graceful drain
    and joins the loop thread.
    """

    def __init__(self, service: AnalysisService,
                 host: str = "127.0.0.1", port: int = 0, **knobs):
        self.service = service
        self._host = host
        self._port = port
        self._knobs = knobs
        self.server: Optional[AsyncServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._drain = True

    def start(self) -> "AsyncServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-aio-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("asyncio front-end failed to start")
        if self._error is not None:
            raise self._error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = AsyncServiceServer(
            self.service, self._host, self._port, **self._knobs)
        try:
            await self.server.start()
        except Exception as error:  # noqa: BLE001 — startup report
            self._error = error
            self._ready.set()
            return
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown(drain=self._drain)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self._stop is None:
            return
        self._drain = drain
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass                     # loop already gone
        self._thread.join(timeout=30)


def serve_async(service: AnalysisService, host: str = "127.0.0.1",
                port: int = 8787, verbose: bool = False,
                ready_message: bool = True, **knobs) -> int:
    """Run the asyncio front-end until signalled (the ``repro
    serve`` body).

    SIGINT/SIGTERM trigger the graceful path: stop accepting, drain
    in-flight requests, close the socket, release the engine. The
    ready message prints the actually-bound port (``--port 0`` binds
    an ephemeral one).
    """
    import signal

    async def main() -> None:
        server = AsyncServiceServer(service, host, port,
                                    verbose=verbose, **knobs)
        await server.start()
        if ready_message:
            limits = (f"max_inflight={server.max_inflight}, "
                      f"queue_limit={server.queue_limit}")
            print(f"repro service listening on "
                  f"http://{server.host}:{server.port} "
                  f"(frontend=asyncio, "
                  f"backend={service.describe()['backend']}, "
                  f"cache_dir={service.cache_dir}, {limits})",
                  flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass             # non-main thread or platform limits
        await stop.wait()
        await server.shutdown(drain=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0
