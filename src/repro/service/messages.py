"""The service wire contract: typed requests, responses and errors.

Every operation of the :class:`~repro.service.facade.AnalysisService`
speaks these value objects. Each one round-trips through plain JSON —
``to_dict()`` emits only JSON-encodable values, ``from_dict()``
validates the payload against the message's declared field schema and
rebuilds the object — so the HTTP front-end, the CLI's ``--json``
output and any future remote-queue backend share one serialization.

Validation is declarative: every message declares its fields as
``(types, required, default)`` specs checked by :func:`check_payload`;
violations raise :class:`RequestError` with a message naming the
offending field, never a traceback.

The response side formalises the engine's ``(fingerprint, JobResult)``
seam as a wire format: :func:`result_to_dict` / :func:`result_from_dict`
translate a :class:`~repro.engine.jobs.JobResult` losslessly — a
decoded result reproduces ``signature()`` byte-identically, which is
the contract that lets clients compare service output against local
runs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..consent import UserProfile
from ..engine.cache import CacheStats, PruneReport
from ..engine.incremental import reanalysis_summary
from ..engine.jobs import JobResult, RiskEventSummary
from ..engine.runner import EngineStats
from ..errors import ReproError


# -- errors -------------------------------------------------------------------

class ServiceError(ReproError):
    """A service operation failed in a way the caller can act on.

    ``code`` is the machine-readable discriminator of the wire format;
    ``http_status`` maps the error onto the HTTP front-end; the CLI
    exits with ``exit_code``.
    """

    code = "service_error"
    http_status = 500
    exit_code = 2

    def to_dict(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


class RequestError(ServiceError):
    """The request payload is malformed or names unknown entities."""

    code = "bad_request"
    http_status = 400


class InvalidModelError(ServiceError):
    """A referenced model failed parsing or structural validation."""

    code = "invalid_model"
    http_status = 422

    def __init__(self, message: str, issues: Sequence = ()):
        super().__init__(message)
        self.issues = tuple(str(issue) for issue in issues)

    def to_dict(self) -> dict:
        payload = super().to_dict()
        if self.issues:
            payload["error"]["issues"] = list(self.issues)
        return payload


class NotFoundError(ServiceError):
    """A referenced resource (model hash, job id) does not exist."""

    code = "not_found"
    http_status = 404


class UnauthorizedError(ServiceError):
    """The request failed the front-end's auth hook."""

    code = "unauthorized"
    http_status = 401


class DeadlineError(ServiceError):
    """The request exceeded the front-end's time budget."""

    code = "deadline_exceeded"
    http_status = 408


class RateLimitedError(ServiceError):
    """The front-end's token bucket refused the request.

    Retryable by the caller after a pause — the request itself is
    fine, the *rate* is not.
    """

    code = "rate_limited"
    http_status = 429


class OverloadedError(ServiceError):
    """The front-end shed the request: its work queue is full.

    Distinct from :class:`RateLimitedError` so clients can tell
    policy (slow down) from capacity (back off or go elsewhere).
    """

    code = "overloaded"
    http_status = 429


# -- declarative payload validation ------------------------------------------

#: One field spec: (accepted types, required, default).
FieldSpec = Tuple[tuple, bool, Any]


def check_payload(payload, fields: Mapping[str, FieldSpec],
                  where: str) -> Dict[str, Any]:
    """Validate ``payload`` against a field-spec mapping.

    Rejects non-mapping payloads, unknown fields, missing required
    fields and type mismatches; fills defaults for absent optionals.
    ``bool`` is never accepted where a number is expected (Python's
    bool/int subclassing would silently let ``true`` through).
    """
    if not isinstance(payload, Mapping):
        raise RequestError(
            f"{where}: expected a JSON object, got "
            f"{type(payload).__name__}")
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise RequestError(f"{where}: unknown field(s) {unknown}; "
                           f"accepted: {sorted(fields)}")
    checked: Dict[str, Any] = {}
    for name, (types, required, default) in fields.items():
        value = payload.get(name)
        if value is None:
            if required:
                raise RequestError(
                    f"{where}: missing required field {name!r}")
            checked[name] = default
            continue
        if isinstance(value, bool) and bool not in types:
            raise RequestError(
                f"{where}: field {name!r} must be "
                f"{_type_names(types)}, got a boolean")
        if types and not isinstance(value, tuple(types)):
            raise RequestError(
                f"{where}: field {name!r} must be "
                f"{_type_names(types)}, got {type(value).__name__}")
        checked[name] = value
    return checked


def _type_names(types) -> str:
    names = sorted({"object" if t is Mapping or t is dict else t.__name__
                    for t in types})
    return " or ".join(names)


def _string_tuple(value, where: str, name: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise RequestError(
            f"{where}: field {name!r} must be a list of strings")
    for item in value:
        if not isinstance(item, str):
            raise RequestError(
                f"{where}: field {name!r} must contain only strings, "
                f"got {type(item).__name__}")
    return tuple(value)


def _decoded(where: str, build):
    """Run a decode body, typing its failures.

    Decoders promise :class:`RequestError`, never a traceback — but
    version-skewed or misbehaving peers can ship payloads whose
    *nested* shapes (constructor kwargs, event tuples) no declarative
    spec covers. Anything those raise becomes a structured error
    naming the message."""
    try:
        return build()
    except RequestError:
        raise
    except (TypeError, KeyError, IndexError, ValueError) as error:
        raise RequestError(
            f"{where}: malformed payload: {error}") from error


def tuplify(value):
    """Lists (from JSON arrays) back to tuples, recursively.

    The engine's flattened payloads (`details`, event fields, paths)
    are nested tuples of scalars; JSON round-trips them as lists. This
    restores the exact original shape, so decoded results reproduce
    ``JobResult.signature()`` byte-identically.
    """
    if isinstance(value, (list, tuple)):
        return tuple(tuplify(item) for item in value)
    return value


# -- model references ---------------------------------------------------------

@dataclass(frozen=True)
class ModelRef:
    """One way of naming a system model: inline DSL text, the content
    hash of a previously uploaded model, or a server-local file path
    (paths are CLI-only — the HTTP layer parses with
    ``allow_paths=False`` so remote callers cannot read server files).
    ``label`` badges the results (display-only; never cache identity).
    """

    text: Optional[str] = None
    hash: Optional[str] = None
    path: Optional[str] = None
    label: Optional[str] = None

    FIELDS = {
        "text": ((str,), False, None),
        "hash": ((str,), False, None),
        "path": ((str,), False, None),
        "label": ((str,), False, None),
    }

    def __post_init__(self):
        given = [name for name in ("text", "hash", "path")
                 if getattr(self, name) is not None]
        if len(given) != 1:
            raise RequestError(
                "model reference needs exactly one of text/hash/path, "
                f"got {given or 'none'}")

    def to_dict(self) -> dict:
        payload = {}
        for name in ("text", "hash", "path", "label"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload, allow_paths: bool = True,
                  where: str = "model") -> "ModelRef":
        checked = check_payload(payload, cls.FIELDS, where)
        if not allow_paths and checked["path"] is not None:
            raise RequestError(
                f"{where}: file-path model references are not "
                "accepted over the wire; upload the model text and "
                "reference it by hash")
        return cls(**checked)


# -- user specification -------------------------------------------------------

@dataclass(frozen=True)
class UserSpec:
    """A :class:`~repro.consent.UserProfile` as wire data.

    ``sensitivities`` maps field name to a numeric sigma or a category
    name (``low``/``medium``/``high``), exactly like the CLI's
    ``--sensitivity`` pairs.
    """

    name: str = "user"
    agree: Tuple[str, ...] = ()
    sensitivities: Tuple[Tuple[str, Any], ...] = ()
    default_sensitivity: float = 0.0
    acceptable: str = "low"

    FIELDS = {
        "name": ((str,), False, "user"),
        "agree": ((list, tuple), False, ()),
        "sensitivities": ((Mapping,), False, {}),
        "default_sensitivity": ((int, float), False, 0.0),
        "acceptable": ((str,), False, "low"),
    }

    def to_profile(self) -> UserProfile:
        return UserProfile(
            self.name,
            agreed_services=self.agree,
            sensitivities=dict(self.sensitivities),
            default_sensitivity=self.default_sensitivity,
            acceptable_risk=self.acceptable,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "agree": list(self.agree),
            "sensitivities": {field: value
                              for field, value in self.sensitivities},
            "default_sensitivity": self.default_sensitivity,
            "acceptable": self.acceptable,
        }

    @classmethod
    def from_profile(cls, profile: UserProfile) -> "UserSpec":
        """The wire spec of a live profile.

        Exact inverse of :meth:`to_profile` at the analysis level:
        the rebuilt profile reproduces ``UserProfile.cache_key()``
        byte-identically (sensitivities flatten to their resolved
        numeric sigmas), which is what lets a fleet dispatcher ship a
        locally generated scenario user to a remote worker without
        forking the job's cache identity.
        """
        return cls(
            name=profile.name,
            agree=profile.agreed_services,
            sensitivities=tuple(sorted(
                (field, profile.sensitivity.sigma(field))
                for field in profile.sensitivity.fields())),
            default_sensitivity=profile.sensitivity.default,
            acceptable=profile.acceptable_risk.value,
        )

    @classmethod
    def from_dict(cls, payload, where: str = "user") -> "UserSpec":
        checked = check_payload(payload, cls.FIELDS, where)
        sensitivities = []
        for field, value in checked["sensitivities"].items():
            if not isinstance(value, (int, float, str)) or \
                    isinstance(value, bool):
                raise RequestError(
                    f"{where}: sensitivity for {field!r} must be a "
                    "number or category name")
            sensitivities.append((str(field), value))
        try:
            acceptable = checked["acceptable"]
            UserProfile("probe", acceptable_risk=acceptable)
        except (ValueError, KeyError):
            raise RequestError(
                f"{where}: unknown acceptable risk level "
                f"{checked['acceptable']!r}") from None
        return cls(
            name=checked["name"],
            agree=_string_tuple(checked["agree"], where, "agree"),
            sensitivities=tuple(sorted(sensitivities)),
            default_sensitivity=float(checked["default_sensitivity"]),
            acceptable=acceptable,
        )


# -- requests -----------------------------------------------------------------

def _canonical_params(params) -> Optional[dict]:
    if params is None:
        return None
    if not isinstance(params, Mapping):
        raise RequestError("params must be a JSON object")
    return {str(key): tuplify(value) for key, value in params.items()}


@dataclass(frozen=True)
class AnalysisRequest:
    """Analyse one user across one or more models under one kind."""

    models: Tuple[ModelRef, ...]
    user: UserSpec = dc_field(default_factory=UserSpec)
    kind: str = "disclosure"
    params: Optional[Mapping[str, Any]] = None
    #: Run the engine's strict lint pre-flight: ERROR-level models are
    #: refused (422) before any analysis or cache write.
    strict_lint: bool = False

    FIELDS = {
        "models": ((list, tuple), True, None),
        "user": ((Mapping,), False, None),
        "kind": ((str,), False, "disclosure"),
        "params": ((Mapping,), False, None),
        "strict_lint": ((bool,), False, False),
    }

    def __post_init__(self):
        if not self.models:
            raise RequestError("analysis request names no models")

    def to_dict(self) -> dict:
        payload = {
            "models": [ref.to_dict() for ref in self.models],
            "user": self.user.to_dict(),
            "kind": self.kind,
        }
        if self.params is not None:
            payload["params"] = {key: _jsonify(value)
                                 for key, value in self.params.items()}
        if self.strict_lint:
            payload["strict_lint"] = True
        return payload

    @classmethod
    def from_dict(cls, payload,
                  allow_paths: bool = True) -> "AnalysisRequest":
        checked = check_payload(payload, cls.FIELDS, "analysis request")
        models = tuple(
            ModelRef.from_dict(ref, allow_paths=allow_paths,
                               where=f"models[{index}]")
            for index, ref in enumerate(checked["models"]))
        user = UserSpec.from_dict(checked["user"]) \
            if checked["user"] is not None else UserSpec()
        return cls(models=models, user=user, kind=checked["kind"],
                   params=_canonical_params(checked["params"]),
                   strict_lint=bool(checked["strict_lint"]))


@dataclass(frozen=True)
class SweepRequest:
    """Generate a scenario fleet and analyse it under a kind cycle.

    ``count``/``personas`` are bounded: the request is wire-reachable
    and one call must not be able to queue an arbitrarily large
    fleet against the serving process.

    ``indices`` optionally restricts execution to a subset of the
    generated job list (positions into the deterministic
    ``scenario_jobs`` flattening of the fleet). The full fleet is
    still generated — it is a pure function of the seed — but only
    the named jobs run, keeping their *global* indices on the wire.
    This is the shard contract of the fleet coordinator's streaming
    sweep: every worker regenerates the same fleet and analyses a
    disjoint slice. ``indices=None`` (the default) runs everything
    and keeps the pre-existing wire shape byte-identical.
    """

    #: Largest fleet one sweep request may generate.
    MAX_COUNT = 10_000
    #: Most simulated users per scenario.
    MAX_PERSONAS = 100

    count: int = 20
    seed: int = 0
    personas: int = 2
    kinds: Tuple[str, ...] = ("disclosure",)
    #: Taint pre-screen: skip exact generation for models a clean
    #: certificate clears (screenable kinds only).
    screen: bool = False
    #: Strict lint pre-flight over the generated fleet's models.
    strict_lint: bool = False
    #: Optional job-index slice of the generated fleet (sorted,
    #: deduplicated); ``None`` means the whole fleet.
    indices: Optional[Tuple[int, ...]] = None

    FIELDS = {
        "count": ((int,), False, 20),
        "seed": ((int,), False, 0),
        "personas": ((int,), False, 2),
        "kinds": ((list, tuple), False, ["disclosure"]),
        "screen": ((bool,), False, False),
        "strict_lint": ((bool,), False, False),
        "indices": ((list, tuple), False, None),
    }

    def __post_init__(self):
        if self.count < 0 or self.count > self.MAX_COUNT:
            raise RequestError(
                f"sweep count must be in [0, {self.MAX_COUNT}], "
                f"got {self.count}")
        if self.personas < 1 or self.personas > self.MAX_PERSONAS:
            raise RequestError(
                f"sweep personas must be in [1, {self.MAX_PERSONAS}], "
                f"got {self.personas}")
        if self.indices is not None:
            cleaned = []
            for value in self.indices:
                if isinstance(value, bool) or \
                        not isinstance(value, int) or value < 0:
                    raise RequestError(
                        "sweep indices must be non-negative "
                        f"integers, got {value!r}")
                cleaned.append(value)
            object.__setattr__(self, "indices",
                               tuple(sorted(set(cleaned))))

    def to_dict(self) -> dict:
        payload = {"count": self.count, "seed": self.seed,
                   "personas": self.personas,
                   "kinds": list(self.kinds),
                   "screen": self.screen,
                   "strict_lint": self.strict_lint}
        if self.indices is not None:
            payload["indices"] = list(self.indices)
        return payload

    @classmethod
    def from_dict(cls, payload, allow_paths: bool = True
                  ) -> "SweepRequest":
        checked = check_payload(payload, cls.FIELDS, "sweep request")
        return cls(count=checked["count"], seed=checked["seed"],
                   personas=checked["personas"],
                   kinds=_string_tuple(checked["kinds"],
                                       "sweep request", "kinds")
                   or ("disclosure",),
                   screen=bool(checked["screen"]),
                   strict_lint=bool(checked["strict_lint"]),
                   indices=tuple(checked["indices"])
                   if checked["indices"] is not None else None)


@dataclass(frozen=True)
class ReanalyzeRequest:
    """Diff-driven incremental re-analysis of an edited model."""

    before: ModelRef
    after: ModelRef
    user: UserSpec = dc_field(default_factory=UserSpec)
    kind: str = "disclosure"
    params: Optional[Mapping[str, Any]] = None
    #: Strict lint pre-flight over the edited model before re-analysis.
    strict_lint: bool = False

    FIELDS = {
        "before": ((Mapping,), True, None),
        "after": ((Mapping,), True, None),
        "user": ((Mapping,), False, None),
        "kind": ((str,), False, "disclosure"),
        "params": ((Mapping,), False, None),
        "strict_lint": ((bool,), False, False),
    }

    def to_dict(self) -> dict:
        payload = {
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
            "user": self.user.to_dict(),
            "kind": self.kind,
        }
        if self.params is not None:
            payload["params"] = {key: _jsonify(value)
                                 for key, value in self.params.items()}
        if self.strict_lint:
            payload["strict_lint"] = True
        return payload

    @classmethod
    def from_dict(cls, payload,
                  allow_paths: bool = True) -> "ReanalyzeRequest":
        checked = check_payload(payload, cls.FIELDS,
                                "reanalyze request")
        user = UserSpec.from_dict(checked["user"]) \
            if checked["user"] is not None else UserSpec()
        return cls(
            before=ModelRef.from_dict(checked["before"],
                                      allow_paths=allow_paths,
                                      where="before"),
            after=ModelRef.from_dict(checked["after"],
                                     allow_paths=allow_paths,
                                     where="after"),
            user=user, kind=checked["kind"],
            params=_canonical_params(checked["params"]),
            strict_lint=bool(checked["strict_lint"]))


@dataclass(frozen=True)
class LintRequest:
    """Lint one model; optionally filter rules and escalate warnings.

    ``select``/``ignore`` accept rule ids and category names exactly
    like the CLI flags; ``strict`` makes any diagnostic (not just
    ERROR) non-clean for the response's ``exit_code``.
    """

    model: ModelRef
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    strict: bool = False

    FIELDS = {
        "model": ((Mapping,), True, None),
        "select": ((list, tuple), False, ()),
        "ignore": ((list, tuple), False, ()),
        "strict": ((bool,), False, False),
    }

    def to_dict(self) -> dict:
        payload: dict = {"model": self.model.to_dict()}
        if self.select:
            payload["select"] = list(self.select)
        if self.ignore:
            payload["ignore"] = list(self.ignore)
        if self.strict:
            payload["strict"] = True
        return payload

    @classmethod
    def from_dict(cls, payload,
                  allow_paths: bool = True) -> "LintRequest":
        checked = check_payload(payload, cls.FIELDS, "lint request")
        return cls(
            model=ModelRef.from_dict(checked["model"],
                                     allow_paths=allow_paths,
                                     where="model"),
            select=_string_tuple(checked["select"], "lint request",
                                 "select"),
            ignore=_string_tuple(checked["ignore"], "lint request",
                                 "ignore"),
            strict=bool(checked["strict"]))


@dataclass(frozen=True)
class LintResponse:
    """The diagnostics of one lint run, spans intact.

    ``diagnostics`` are live :class:`repro.lint.Diagnostic` objects
    (decoded responses rebuild them — rule, severity, line/column and
    related spans survive the wire byte-identically); ``sarif`` is the
    full SARIF 2.1.0 document for code-scanning consumers.
    """

    model: str
    model_hash: str
    diagnostics: tuple
    errors: int
    warnings: int
    clean: bool
    exit_code: int
    sarif: Optional[dict] = None

    def to_dict(self) -> dict:
        payload = {
            "model": self.model,
            "model_hash": self.model_hash,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": self.errors,
            "warnings": self.warnings,
            "clean": self.clean,
            "exit_code": self.exit_code,
        }
        if self.sarif is not None:
            payload["sarif"] = self.sarif
        return payload

    @classmethod
    def from_dict(cls, payload) -> "LintResponse":
        from ..lint import Diagnostic
        checked = check_payload(payload, {
            "model": ((str,), True, None),
            "model_hash": ((str,), True, None),
            "diagnostics": ((list, tuple), True, None),
            "errors": ((int,), True, None),
            "warnings": ((int,), True, None),
            "clean": ((bool,), True, None),
            "exit_code": ((int,), True, None),
            "sarif": ((Mapping,), False, None),
        }, "lint response")
        return cls(
            model=checked["model"],
            model_hash=checked["model_hash"],
            diagnostics=_decoded("lint response", lambda: tuple(
                Diagnostic.from_dict(d)
                for d in checked["diagnostics"])),
            errors=checked["errors"],
            warnings=checked["warnings"],
            clean=bool(checked["clean"]),
            exit_code=checked["exit_code"],
            sarif=dict(checked["sarif"])
            if checked["sarif"] is not None else None)


# -- result serialization -----------------------------------------------------

def _jsonify(value):
    """Engine value tuples as JSON-encodable structures."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


_RESULT_FIELDS = ("job_id", "scenario", "family", "variant",
                  "fingerprint", "user", "states", "transitions",
                  "max_level", "kind", "lts_generated", "from_cache",
                  "duration")


def result_to_dict(result: JobResult) -> dict:
    """One :class:`~repro.engine.jobs.JobResult` as wire data."""
    payload = {name: getattr(result, name) for name in _RESULT_FIELDS}
    payload["events"] = [list(event) for event in result.events]
    payload["non_allowed_actors"] = list(result.non_allowed_actors)
    payload["details"] = [[key, _jsonify(value)]
                          for key, value in result.details]
    return payload


def result_from_dict(payload: Mapping) -> JobResult:
    """Rebuild a result; ``signature()`` round-trips byte-identically."""
    def build():
        events = tuple(RiskEventSummary(
            level=event[0], actor=event[1], fields=tuple(event[2]),
            store=event[3], impact=event[4], likelihood=event[5],
            impact_category=event[6], likelihood_category=event[7],
        ) for event in payload["events"])
        details = tuple((key, tuplify(value))
                        for key, value in payload["details"])
        return JobResult(
            events=events, details=details,
            non_allowed_actors=tuple(payload["non_allowed_actors"]),
            **{name: payload[name] for name in _RESULT_FIELDS})
    return _decoded("job result", build)


def population_breakdown(result: JobResult) -> dict:
    """The population kind's outcome details as a typed mapping.

    Population results carry their aggregate verdict and the
    decomposable privacy-score breakdown flattened into the generic
    ``details`` tuples (which round-trip the wire byte-identically);
    this helper lifts them back into named structures for clients —
    histogram and score weights as dicts, per-field sub-scores as one
    mapping per field. Works on live and wire-decoded results alike.
    """
    if result.kind != "population":
        raise RequestError(
            f"population breakdown requested for a "
            f"{result.kind!r} result")
    return {
        "analysed": result.detail("analysed", 0),
        "skipped": result.detail("skipped", 0),
        "unacceptable_fraction": result.detail(
            "unacceptable_fraction", 0.0),
        "histogram": {level: count for level, count
                      in result.detail("histogram", ())},
        "hot_spots": [
            {"actor": actor, "field": field, "users": count}
            for actor, field, count in result.detail("hot_spots", ())
        ],
        "privacy_score": result.detail("privacy_score", 0.0),
        "score_weights": {name: weight for name, weight
                          in result.detail("score_weights", ())},
        "field_scores": [
            {"field": row[0], "semantic": row[1],
             "uniqueness": row[2], "linkability": row[3],
             "composite": row[4]}
            for row in result.detail("field_scores", ())
        ],
    }


def stats_to_dict(stats: EngineStats) -> dict:
    return {
        "backend": stats.backend, "jobs": stats.jobs,
        "result_hits": stats.result_hits, "executed": stats.executed,
        "deduplicated": stats.deduplicated,
        "lts_generations": stats.lts_generations,
        "lts_reuses": stats.lts_reuses,
        "wall_time": stats.wall_time,
        "by_kind": dict(stats.by_kind),
        "screened": stats.screened,
        "screen_flagged": stats.screen_flagged,
        "screened_by_kind": dict(stats.screened_by_kind),
        "linted": stats.linted,
        "lint_reuses": stats.lint_reuses,
    }


def stats_from_dict(payload: Mapping) -> EngineStats:
    return _decoded("engine stats", lambda: EngineStats(
        **{key: (dict(value)
                 if key in ("by_kind", "screened_by_kind") else value)
           for key, value in payload.items()}))


def cache_stats_to_dict(stats: CacheStats) -> dict:
    return {"hits": stats.hits, "misses": stats.misses,
            "puts": stats.puts, "evictions": stats.evictions}


# -- responses ----------------------------------------------------------------

@dataclass(frozen=True)
class AnalysisResponse:
    """The outcome of one analyze or sweep operation.

    ``results`` are full :class:`~repro.engine.jobs.JobResult` objects
    (decoded responses rebuild them, signatures intact); ``report`` is
    the fleet aggregation dict for sweep-shaped operations.
    """

    results: Tuple[JobResult, ...]
    stats: EngineStats
    result_cache: CacheStats
    max_level: str
    report: Optional[dict] = None

    def signatures(self) -> Tuple[tuple, ...]:
        return tuple(result.signature() for result in self.results)

    def to_dict(self) -> dict:
        payload = {
            "results": [result_to_dict(r) for r in self.results],
            "stats": stats_to_dict(self.stats),
            "result_cache": cache_stats_to_dict(self.result_cache),
            "max_level": self.max_level,
        }
        if self.report is not None:
            payload["report"] = self.report
        return payload

    @classmethod
    def from_dict(cls, payload) -> "AnalysisResponse":
        checked = check_payload(payload, {
            "results": ((list, tuple), True, None),
            "stats": ((Mapping,), True, None),
            "result_cache": ((Mapping,), True, None),
            "max_level": ((str,), True, None),
            "report": ((Mapping,), False, None),
        }, "analysis response")
        return cls(
            results=tuple(result_from_dict(r)
                          for r in checked["results"]),
            stats=stats_from_dict(checked["stats"]),
            result_cache=_decoded(
                "result cache stats",
                lambda: CacheStats(**checked["result_cache"])),
            max_level=checked["max_level"],
            report=dict(checked["report"])
            if checked["report"] is not None else None)


@dataclass(frozen=True)
class ReanalyzeResponse:
    """Baseline run + invalidation plan + incremental outcome."""

    baseline: AnalysisResponse
    outcome: AnalysisResponse
    plan_level: str
    plan_reason: str
    plan_description: str
    jobs: int
    retargeted: int
    lts_seeded: int

    @property
    def max_level(self) -> str:
        return self.outcome.max_level

    def describe(self) -> str:
        """The incremental run's summary, byte-identical to
        :meth:`repro.engine.incremental.ReanalysisOutcome.describe`
        (both render through the same formatter)."""
        return reanalysis_summary(
            self.plan_description, self.jobs, self.retargeted,
            self.lts_seeded, self.outcome.stats.describe())

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline.to_dict(),
            "outcome": self.outcome.to_dict(),
            "plan": {"level": self.plan_level,
                     "reason": self.plan_reason,
                     "description": self.plan_description},
            "jobs": self.jobs,
            "retargeted": self.retargeted,
            "lts_seeded": self.lts_seeded,
        }

    @classmethod
    def from_dict(cls, payload) -> "ReanalyzeResponse":
        checked = check_payload(payload, {
            "baseline": ((Mapping,), True, None),
            "outcome": ((Mapping,), True, None),
            "plan": ((Mapping,), True, None),
            "jobs": ((int,), True, None),
            "retargeted": ((int,), True, None),
            "lts_seeded": ((int,), True, None),
        }, "reanalyze response")
        plan = check_payload(checked["plan"], {
            "level": ((str,), True, None),
            "reason": ((str,), True, None),
            "description": ((str,), True, None),
        }, "reanalyze response plan")
        return cls(
            baseline=AnalysisResponse.from_dict(checked["baseline"]),
            outcome=AnalysisResponse.from_dict(checked["outcome"]),
            plan_level=plan["level"], plan_reason=plan["reason"],
            plan_description=plan["description"],
            jobs=checked["jobs"], retargeted=checked["retargeted"],
            lts_seeded=checked["lts_seeded"])


@dataclass(frozen=True)
class CacheStatsResponse:
    """On-disk store summaries plus live in-memory cache accounting."""

    cache_dir: Optional[str]
    stores: Tuple[Tuple[str, dict], ...]
    live: Optional[dict] = None

    def to_dict(self) -> dict:
        payload: dict = {"cache_dir": self.cache_dir,
                         "stores": {name: dict(info)
                                    for name, info in self.stores}}
        if self.live is not None:
            payload["live"] = self.live
        return payload

    @classmethod
    def from_dict(cls, payload) -> "CacheStatsResponse":
        checked = check_payload(payload, {
            "cache_dir": ((str,), False, None),
            "stores": ((Mapping,), True, None),
            "live": ((Mapping,), False, None),
        }, "cache stats response")
        return cls(cache_dir=checked["cache_dir"],
                   stores=tuple(sorted(
                       (name, dict(info))
                       for name, info in checked["stores"].items())),
                   live=dict(checked["live"])
                   if checked["live"] is not None else None)


@dataclass(frozen=True)
class CachePruneResponse:
    """Per-store eviction reports of one prune operation."""

    cache_dir: Optional[str]
    stores: Tuple[Tuple[str, PruneReport], ...]

    def to_dict(self) -> dict:
        return {"cache_dir": self.cache_dir,
                "stores": {name: {"removed": report.removed,
                                  "freed_bytes": report.freed_bytes,
                                  "kept": report.kept,
                                  "kept_bytes": report.kept_bytes}
                           for name, report in self.stores}}

    @classmethod
    def from_dict(cls, payload) -> "CachePruneResponse":
        checked = check_payload(payload, {
            "cache_dir": ((str,), False, None),
            "stores": ((Mapping,), True, None),
        }, "cache prune response")
        return cls(cache_dir=checked["cache_dir"],
                   stores=_decoded(
                       "cache prune response", lambda: tuple(sorted(
                           (name, PruneReport(**info))
                           for name, info
                           in checked["stores"].items()))))


@dataclass(frozen=True)
class WorkerLoad:
    """The placement-relevant slice of a worker's health snapshot.

    Decoded from the ``load`` block of ``GET /v1/health`` (see
    :meth:`repro.service.facade.AnalysisService.describe`); a fleet
    dispatcher ranks candidate workers by ``in_flight`` and watches
    ``occupancy`` for saturation. Absent fields default to zero so a
    coordinator can still drive a pre-fleet worker.

    ``queue_depth``/``shed_total``/``inflight_limit`` are the
    front-end half of the picture (requests waiting for an executor
    slot, 429s shed so far, and the configured concurrency cap);
    the threaded front-end, which has no bounded queue, reports all
    three as zero. Every pre-existing field keeps its exact shape.
    """

    in_flight: int = 0
    job_table: int = 0
    max_jobs: int = 0
    occupancy: float = 0.0
    result_cache_hits: int = 0
    lts_cache_hits: int = 0
    queue_depth: int = 0
    shed_total: int = 0
    inflight_limit: int = 0

    FIELDS = {
        "in_flight": ((int,), False, 0),
        "job_table": ((int,), False, 0),
        "max_jobs": ((int,), False, 0),
        "occupancy": ((int, float), False, 0.0),
        "result_cache_hits": ((int,), False, 0),
        "lts_cache_hits": ((int,), False, 0),
        "queue_depth": ((int,), False, 0),
        "shed_total": ((int,), False, 0),
        "inflight_limit": ((int,), False, 0),
    }

    def to_dict(self) -> dict:
        return {"in_flight": self.in_flight,
                "job_table": self.job_table,
                "max_jobs": self.max_jobs,
                "occupancy": self.occupancy,
                "result_cache_hits": self.result_cache_hits,
                "lts_cache_hits": self.lts_cache_hits,
                "queue_depth": self.queue_depth,
                "shed_total": self.shed_total,
                "inflight_limit": self.inflight_limit}

    @classmethod
    def from_health(cls, payload) -> "WorkerLoad":
        """Decode a health body's ``load`` block (tolerating workers
        that predate it)."""
        if not isinstance(payload, Mapping):
            raise RequestError(
                "health payload: expected a JSON object, got "
                f"{type(payload).__name__}")
        load = payload.get("load")
        if load is None:
            return cls()
        checked = check_payload(load, cls.FIELDS, "health load")
        checked["occupancy"] = float(checked["occupancy"])
        return cls(**checked)


#: Async job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "error")


@dataclass(frozen=True)
class JobStatus:
    """One async submission's state, plus its result once finished."""

    job_id: str
    op: str
    status: str
    error: Optional[dict] = None
    result: Optional[dict] = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "error")

    def to_dict(self) -> dict:
        payload = {"job_id": self.job_id, "op": self.op,
                   "status": self.status}
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        return payload

    @classmethod
    def from_dict(cls, payload) -> "JobStatus":
        checked = check_payload(payload, {
            "job_id": ((str,), True, None),
            "op": ((str,), True, None),
            "status": ((str,), True, None),
            "error": ((Mapping,), False, None),
            "result": ((Mapping,), False, None),
        }, "job status")
        if checked["status"] not in JOB_STATES:
            raise RequestError(
                f"job status: unknown state {checked['status']!r}")
        return cls(job_id=checked["job_id"], op=checked["op"],
                   status=checked["status"],
                   error=dict(checked["error"])
                   if checked["error"] is not None else None,
                   result=dict(checked["result"])
                   if checked["result"] is not None else None)
