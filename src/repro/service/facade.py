"""The :class:`AnalysisService` facade: one object, the whole method.

Engine, caches, kind registry, scenario generation and incremental
re-analysis used to be wired by hand at every entrypoint; the facade
owns them behind a typed request/response API (see
:mod:`~repro.service.messages`). The CLI's ``repro engine *``
subcommands and the HTTP front-end (:mod:`~repro.service.http`) are
both thin clients of this one object, so a request produces the same
result signatures no matter which surface submitted it.

Models are content-addressed: :meth:`AnalysisService.upload_model`
parses DSL text, validates it structurally and registers it under its
:func:`~repro.engine.fingerprint.model_fingerprint`; requests then
reference models by hash (or inline text / CLI file path). Async
submissions reuse the same identity discipline — a job id is the
stable hash of the operation and its canonical request payload, so
resubmitting identical work returns the existing job instead of
queueing a duplicate.
"""

from __future__ import annotations

import json
import threading
from concurrent import futures
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..dfd import SystemModel, parse_dsl
from ..dfd.validation import Severity, validate_system
from ..engine import (
    AnalysisJob,
    BatchEngine,
    BatchResult,
    FleetReport,
    ScenarioGenerator,
    kind_names,
    model_fingerprint,
    prune_stores,
    reanalyze,
    scenario_jobs,
    stable_hash,
    store_report,
)
from ..errors import LintError, ParseError, ReproError
from ..lint import render_sarif, run_lint
from .messages import (
    AnalysisRequest,
    AnalysisResponse,
    CachePruneResponse,
    CacheStatsResponse,
    InvalidModelError,
    JobStatus,
    LintRequest,
    LintResponse,
    ModelRef,
    NotFoundError,
    ReanalyzeRequest,
    ReanalyzeResponse,
    RequestError,
    ServiceError,
    SweepRequest,
    cache_stats_to_dict,
)

#: Operations an async submission may name. Lint is deliberately
#: absent: it is synchronous-cheap (milliseconds per model) and its
#: response carries no fleet-sized payload worth queueing for.
OPS = ("analyze", "sweep", "reanalyze")


def _lint_mode(strict_lint: bool):
    """Map a request's ``strict_lint`` flag onto
    :meth:`~repro.engine.runner.BatchEngine.run`'s ``lint`` mode."""
    return "strict" if strict_lint else False


def _merge_stats(merged, stats):
    """Accumulate per-job :class:`EngineStats` for a streamed sweep.

    The streaming path runs one engine batch per job; the summary
    line must still report fleet-level accounting, so counters sum
    and the per-kind breakdowns merge key-wise.
    """
    if merged is None:
        from dataclasses import replace as dc_replace
        return dc_replace(stats, by_kind=dict(stats.by_kind),
                          screened_by_kind=dict(
                              stats.screened_by_kind))
    merged.jobs += stats.jobs
    merged.result_hits += stats.result_hits
    merged.executed += stats.executed
    merged.deduplicated += stats.deduplicated
    merged.lts_generations += stats.lts_generations
    merged.lts_reuses += stats.lts_reuses
    merged.wall_time += stats.wall_time
    merged.screened += stats.screened
    merged.screen_flagged += stats.screen_flagged
    merged.linted += stats.linted
    merged.lint_reuses += stats.lint_reuses
    for kind, count in stats.by_kind.items():
        merged.by_kind[kind] = merged.by_kind.get(kind, 0) + count
    for kind, count in stats.screened_by_kind.items():
        merged.screened_by_kind[kind] = \
            merged.screened_by_kind.get(kind, 0) + count
    return merged


class _JobRecord:
    """Mutable backing state of one async submission."""

    __slots__ = ("job_id", "op", "status", "response", "payload",
                 "error")

    def __init__(self, job_id: str, op: str):
        self.job_id = job_id
        self.op = op
        self.status = "queued"
        self.response = None
        #: The response serialized once at completion — polling a
        #: finished job must not re-flatten a fleet-sized result.
        self.payload: Optional[dict] = None
        self.error: Optional[dict] = None

    def snapshot(self) -> JobStatus:
        return JobStatus(job_id=self.job_id, op=self.op,
                         status=self.status, error=self.error,
                         result=self.payload
                         if self.status == "done" else None)


class AnalysisService:
    """The unified programmatic API over the batch engine.

    Parameters mirror :class:`~repro.engine.runner.BatchEngine` (which
    is built lazily — constructing a service for ``cache_stats`` never
    touches the disk); ``job_workers`` sizes the async submission
    pool and ``max_jobs`` caps the async job table (LRU over finished
    records — a long-lived server must not grow per submission
    forever).

    Thread safety: the underlying caches are lock-protected and the
    engine keeps no per-run state, so one service instance serves
    concurrent callers — which is exactly how the threaded HTTP
    front-end uses it.
    """

    def __init__(self, backend: str = "thread",
                 workers: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 memory_entries: int = 512,
                 likelihood=None, matrix=None, value_policy=None,
                 dataset=None, population=None, record_field_map=None,
                 reid_threshold: float = 0.5,
                 job_workers: int = 2,
                 max_jobs: int = 256):
        if job_workers < 1:
            raise ValueError(
                f"job_workers must be >= 1, got {job_workers}")
        if max_jobs < 1:
            raise ValueError(
                f"max_jobs must be >= 1, got {max_jobs}")
        self.cache_dir = cache_dir
        self._engine_config = dict(
            backend=backend, workers=workers, cache_dir=cache_dir,
            memory_entries=memory_entries, likelihood=likelihood,
            matrix=matrix, value_policy=value_policy, dataset=dataset,
            population=population, record_field_map=record_field_map,
            reid_threshold=reid_threshold)
        self._engine: Optional[BatchEngine] = None
        self._lock = threading.Lock()
        self._models: Dict[str, SystemModel] = {}
        #: ``id(system) -> model hash`` for every *stored* system —
        #: the store's key already is the stage-1 fingerprint, so
        #: analysis requests seed the engine with it instead of
        #: re-canonicalising the model on every call. Sound because
        #: the store is append-only and holds its objects for the
        #: facade's lifetime (ids can never be reused), and stored
        #: models are never mutated.
        self._model_fps: Dict[int, str] = {}
        self._job_workers = job_workers
        self._max_jobs = max_jobs
        self._jobs: Dict[str, _JobRecord] = {}
        self._executor: Optional[futures.ThreadPoolExecutor] = None
        self._closed = False
        #: Front-end load hook: a server front-end (threaded or
        #: asyncio) may register a callable returning its
        #: queue/shed/limit counters, merged into the health body's
        #: ``load`` block by :meth:`describe`.
        self._load_provider = None

    # -- engine ------------------------------------------------------------

    @property
    def engine(self) -> BatchEngine:
        """The owned batch engine (created on first use)."""
        with self._lock:
            if self._engine is None:
                self._engine = BatchEngine(**self._engine_config)
            return self._engine

    def close(self) -> None:
        """Stop accepting async work and release the worker pool.

        Synchronous operations keep working; further :meth:`submit`
        calls raise. Idempotent."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # -- the model store ---------------------------------------------------

    def register_model(self, system: SystemModel) -> str:
        """Register a parsed model; returns its content hash.

        Re-registering an equivalent model keeps the first-stored
        object: in-flight requests may hold it, and the fingerprint
        seed map is id-keyed — replacing the object would let the old
        one be collected and its id be reused by an unrelated model.
        """
        model_hash = model_fingerprint(system)
        with self._lock:
            if model_hash not in self._models:
                self._models[model_hash] = system
                self._model_fps[id(system)] = model_hash
        return model_hash

    def upload_model(self, text: str) -> str:
        """Parse, validate and register DSL text; returns the hash.

        Uploading the same text (or any text canonicalising to the
        same model) is idempotent: the hash is the model fingerprint.
        """
        return self.register_model(self._parse(text, "uploaded model"))

    def model_hashes(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._models))

    def _parse(self, text: str, where: str) -> SystemModel:
        try:
            system = parse_dsl(text, validate=False)
        except ParseError as error:
            raise InvalidModelError(
                f"{where} does not parse: {error}") from error
        errors = [issue for issue in validate_system(system,
                                                     strict=False)
                  if issue.severity is Severity.ERROR]
        if errors:
            raise InvalidModelError(
                f"{where} is structurally invalid "
                f"({len(errors)} error(s))", issues=errors)
        return system

    def resolve_model(self, ref: ModelRef,
                      where: str = "model"
                      ) -> Tuple[SystemModel, str]:
        """A reference's live model and display label.

        Text and path references register the model as a side effect,
        so a follow-up request can use the returned label-independent
        hash; unknown hashes are a :class:`NotFoundError`.
        """
        if ref.hash is not None:
            with self._lock:
                system = self._models.get(ref.hash)
            if system is None:
                raise NotFoundError(
                    f"{where}: unknown model hash {ref.hash!r}; "
                    "upload the model first")
            return system, ref.label or ref.hash[:12]
        if ref.text is not None:
            system = self._parse(ref.text, where)
            stored = self._store_and_fetch(system)
            return stored, ref.label or system.name
        try:
            with open(ref.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise RequestError(f"{where}: {error}") from error
        system = self._parse(text, f"{where} {ref.path!r}")
        return self._store_and_fetch(system), ref.label or ref.path

    def _store_and_fetch(self, system: SystemModel) -> SystemModel:
        """Register ``system`` and return the *stored* equivalent —
        the object whose fingerprint the engine seed map knows."""
        model_hash = self.register_model(system)
        with self._lock:
            return self._models[model_hash]

    def _resolve_for_lint(self, ref: ModelRef,
                          where: str = "model"
                          ) -> Tuple[SystemModel, str]:
        """Resolve a model reference *without* strict validation.

        Lint exists to report structurally invalid models, so this
        path must not refuse them the way :meth:`resolve_model` does.
        Unparseable text is still an :class:`InvalidModelError` (the
        wire equivalent of the CLI's exit 2); invalid-but-parseable
        models come back whole for the rules to describe. They are
        deliberately *not* registered — the model store only holds
        models the analysis operations would accept.
        """
        if ref.hash is not None:
            with self._lock:
                system = self._models.get(ref.hash)
            if system is None:
                raise NotFoundError(
                    f"{where}: unknown model hash {ref.hash!r}; "
                    "upload the model first")
            return system, ref.label or ref.hash[:12]
        if ref.text is not None:
            text, label = ref.text, ref.label or ""
        else:
            try:
                with open(ref.path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as error:
                raise RequestError(f"{where}: {error}") from error
            label = ref.label or ref.path
        try:
            system = parse_dsl(text, validate=False)
        except ParseError as error:
            raise InvalidModelError(
                f"{where} does not parse: {error}") from error
        return system, label or system.name

    # -- operations --------------------------------------------------------

    def _check_kind(self, kind: str) -> None:
        if kind not in kind_names():
            raise RequestError(
                f"unknown analysis kind {kind!r}; registered kinds: "
                f"{sorted(kind_names())}")

    def _response(self, batch: BatchResult,
                  report: Optional[dict] = None) -> AnalysisResponse:
        return AnalysisResponse(
            results=batch.results,
            stats=batch.stats,
            # Snapshot: the live stats object keeps counting (later
            # requests, the incremental leg of a reanalyze), and a
            # response must report the accounting at *its* moment.
            result_cache=replace(self.engine.result_cache.stats),
            max_level=FleetReport(batch.results).max_level().value,
            report=report)

    def lint(self, request: LintRequest) -> LintResponse:
        """Lint one model; diagnostics, tallies and SARIF in one hop.

        Unlike the analysis operations, structurally invalid models
        are the *point*: they resolve, lint and come back as ERROR
        diagnostics rather than a 422. Only unparseable text refuses.
        """
        system, label = self._resolve_for_lint(request.model)
        report = self._guard(run_lint, system, request.select,
                             request.ignore, label)
        return LintResponse(
            model=report.model,
            model_hash=model_fingerprint(system),
            diagnostics=report.diagnostics,
            errors=report.errors,
            warnings=report.warnings,
            clean=report.clean,
            exit_code=report.exit_code(strict=request.strict),
            sarif=json.loads(render_sarif(report)))

    def analyze(self, request: AnalysisRequest) -> AnalysisResponse:
        """Run one user x kind across the request's models."""
        self._check_kind(request.kind)
        user = request.user.to_profile()
        jobs = []
        for index, ref in enumerate(request.models):
            system, label = self.resolve_model(
                ref, where=f"models[{index}]")
            jobs.append(AnalysisJob(
                system=system, user=user, kind=request.kind,
                params=request.params, scenario=label,
                family="service", variant="analyze"))
        return self._response(self._run(
            jobs, lint=_lint_mode(request.strict_lint)))

    def _sweep_jobs(self, request: SweepRequest):
        """The request's job list as ``(global_index, job)`` pairs.

        The fleet is a pure function of the request's seed, so every
        caller — buffered sweep, streaming sweep, a fleet worker
        handed an ``indices`` slice — derives the identical list and
        the identical global job ids. Jobs are labelled by global
        index *before* any slicing, so a worker running jobs
        ``[3, 7]`` answers ``job-0003``/``job-0007``, byte-identical
        to the same positions of a whole-fleet run.
        """
        for kind in request.kinds:
            self._check_kind(kind)
        generator = ScenarioGenerator(
            seed=request.seed,
            personas_per_scenario=request.personas)
        jobs = scenario_jobs(generator.generate(request.count),
                             kinds=request.kinds)
        for index, job in enumerate(jobs):
            if not job.job_id:
                job.job_id = f"job-{index:04d}"
        if request.indices is None:
            return list(enumerate(jobs))
        out_of_range = [i for i in request.indices if i >= len(jobs)]
        if out_of_range:
            raise RequestError(
                f"sweep indices {out_of_range} out of range for a "
                f"{len(jobs)}-job fleet")
        return [(index, jobs[index]) for index in request.indices]

    def sweep(self, request: SweepRequest,
              include_report: bool = True) -> AnalysisResponse:
        """Generate a scenario fleet, analyse it, aggregate it.

        ``include_report`` skips materialising the aggregate dict for
        callers that will build their own :class:`FleetReport` from
        the results (the CLI's human rendering) — aggregation is
        linear in fleet size and should not run twice.
        """
        jobs = [job for _, job in self._sweep_jobs(request)]
        batch = self._run(jobs, screen=request.screen,
                          lint=_lint_mode(request.strict_lint))
        report = FleetReport(batch.results, batch.stats).to_dict() \
            if include_report else None
        return self._response(batch, report=report)

    def sweep_stream(self, request: SweepRequest,
                     should_stop=None):
        """The sweep as an ndjson-shaped line iterator.

        Yields one ``{"index", "fingerprint", "result"}`` dict per
        job *as it completes* — jobs run one at a time, so the first
        line is on the wire before the second job has started — then
        a final ``{"summary": ...}`` line carrying the merged
        :class:`FleetReport`, engine stats and cache accounting the
        buffered response would have. Result payloads decode through
        :func:`~repro.service.messages.result_from_dict` with
        signatures byte-identical to the buffered sweep's (job
        fingerprints are per-job; batch size never enters them).

        ``should_stop`` is the cancellation hook: a zero-argument
        callable polled between jobs (front-ends wire it to client
        disconnect), truthy means stop cleanly without a summary.
        Request validation (kinds, bounds, indices) happens *before*
        the first yield so front-ends can still answer a typed error
        status; mid-stream failures surface as the generator's
        exception, which front-ends turn into a final error line.
        """
        indexed_jobs = self._sweep_jobs(request)

        def generate():
            from .messages import result_to_dict, stats_to_dict
            results = []
            merged = None
            for index, job in indexed_jobs:
                if should_stop is not None and should_stop():
                    return
                batch = self._run(
                    [job], screen=request.screen,
                    lint=_lint_mode(request.strict_lint))
                result = batch.results[0]
                results.append(result)
                merged = _merge_stats(merged, batch.stats)
                yield {"index": index,
                       "fingerprint": result.fingerprint,
                       "result": result_to_dict(result)}
            report = FleetReport(results, merged)
            yield {"summary": {
                "jobs": len(results),
                "max_level": report.max_level().value,
                "stats": stats_to_dict(merged) if merged else None,
                "result_cache": {
                    "hits": self.engine.result_cache.stats.hits,
                    "misses": self.engine.result_cache.stats.misses,
                    "puts": self.engine.result_cache.stats.puts,
                    "evictions":
                        self.engine.result_cache.stats.evictions,
                },
                "report": report.to_dict(),
            }}

        return generate()

    def reanalyze(self, request: ReanalyzeRequest
                  ) -> ReanalyzeResponse:
        """Baseline the old model, classify the edit, re-run only
        what it invalidated."""
        self._check_kind(request.kind)
        before, before_label = self.resolve_model(request.before,
                                                  where="before")
        after, _ = self.resolve_model(request.after, where="after")
        user = request.user.to_profile()
        jobs = [AnalysisJob(system=before, user=user,
                            kind=request.kind, params=request.params,
                            scenario=before_label, family="service",
                            variant="reanalyze")]
        # Snapshot the baseline response *before* the incremental leg
        # runs, so its cache accounting reflects the baseline moment.
        # Strict lint gates only the *edited* model: the baseline was
        # already accepted, the edit is what may have broken it.
        baseline = self._response(self._run(jobs))
        outcome = self._guard(reanalyze, self.engine, before, after,
                              jobs, False,
                              _lint_mode(request.strict_lint))
        return ReanalyzeResponse(
            baseline=baseline,
            outcome=self._response(outcome.batch),
            plan_level=outcome.plan.level,
            plan_reason=outcome.plan.reason,
            plan_description=outcome.plan.describe(),
            jobs=outcome.jobs,
            retargeted=outcome.retargeted,
            lts_seeded=outcome.lts_seeded)

    def _run(self, jobs: List[AnalysisJob], screen: bool = False,
             lint=False) -> BatchResult:
        with self._lock:
            model_fps = dict(self._model_fps)
        return self._guard(self.engine.run, jobs, screen, lint,
                           model_fps)

    @staticmethod
    def _guard(operation, *args):
        """Run an engine operation, typing its failures.

        A strict-lint refusal (the pre-flight rejected an ERROR-level
        model before any cache write) becomes the same typed wire
        error an invalid upload gets, diagnostics as issues. Other
        engine-level :class:`ReproError` subclasses (unknown agreed
        services, impossible consent changes, ...) pass through as the
        structured errors they already are; anything else would
        surface as a traceback, so it becomes a :class:`ServiceError`
        preserving the original message.
        """
        try:
            return operation(*args)
        except LintError as error:
            raise InvalidModelError(
                str(error),
                issues=[d.describe()
                        for d in error.diagnostics]) from error
        except (ServiceError, ReproError):
            raise
        except ValueError as error:
            raise RequestError(str(error)) from error

    # -- cache lifecycle ---------------------------------------------------

    def cache_stats(self) -> CacheStatsResponse:
        """On-disk store report plus live cache accounting.

        Reads the disk directly (no engine construction), so pointing
        a fresh service at a cache directory never creates stores as
        a side effect of *inspecting* them.
        """
        stores: Tuple[Tuple[str, dict], ...] = ()
        if self.cache_dir is not None:
            stores = tuple(store_report(self.cache_dir).items())
        live = None
        with self._lock:
            engine = self._engine
        if engine is not None:
            live = {
                "results": cache_stats_to_dict(
                    engine.result_cache.stats),
                "lts": cache_stats_to_dict(engine.lts_cache.stats),
                "taint": cache_stats_to_dict(
                    engine.taint_cache.stats),
                "lint": cache_stats_to_dict(
                    engine.lint_cache.stats),
            }
        return CacheStatsResponse(cache_dir=self.cache_dir,
                                  stores=stores, live=live)

    def prune_cache(self, max_age: Optional[float] = None,
                    max_bytes: Optional[int] = None
                    ) -> CachePruneResponse:
        """Age/size-prune every on-disk store of the cache dir."""
        if self.cache_dir is None:
            raise RequestError(
                "cache prune needs a service with a cache_dir")
        reports = prune_stores(self.cache_dir, max_age=max_age,
                               max_bytes=max_bytes)
        return CachePruneResponse(cache_dir=self.cache_dir,
                                  stores=tuple(reports.items()))

    # -- async submissions -------------------------------------------------

    def _as_hash_ref(self, ref: ModelRef, where: str) -> ModelRef:
        """A content-addressed equivalent of any model reference."""
        if ref.hash is not None:
            return ref
        system, label = self.resolve_model(ref, where)
        return ModelRef(hash=self.register_model(system), label=label)

    def _materialize(self, request):
        """Pin a request's model references to content hashes.

        Job identity must be content-addressed: a path-based reference
        resubmitted after the file changed names different work and
        must get a different job id, not a stale coalesced record.
        Resolution errors (missing file, invalid model) therefore
        surface synchronously at submit time.
        """
        if isinstance(request, AnalysisRequest):
            return replace(request, models=tuple(
                self._as_hash_ref(ref, f"models[{index}]")
                for index, ref in enumerate(request.models)))
        if isinstance(request, ReanalyzeRequest):
            return replace(
                request,
                before=self._as_hash_ref(request.before, "before"),
                after=self._as_hash_ref(request.after, "after"))
        return request

    def submit(self, op: str, request) -> str:
        """Queue an operation; returns its job id immediately.

        The id is the stable hash of ``(op, canonical request)`` with
        model references pinned to content hashes — the same identity
        discipline the result cache uses — so identical submissions
        coalesce onto one record, re-polling a finished job is free,
        and an edited model file is new work, never a stale hit.
        """
        if op not in OPS:
            raise RequestError(
                f"unknown operation {op!r}; one of {OPS}")
        request = self._materialize(request)
        job_id = stable_hash(["service-job", op, request.to_dict()])
        with self._lock:
            if self._closed:
                raise ServiceError(
                    "service is closed; no further submissions "
                    "accepted")
            record = self._jobs.get(job_id)
            # Coalesce onto live or successful work; a *failed* record
            # must not poison the identity forever (the failure may
            # have been transient, e.g. a hash uploaded since).
            if record is not None and record.status != "error":
                return job_id
            record = _JobRecord(job_id, op)
            self._jobs[job_id] = record
            self._evict_jobs_locked()
            if self._executor is None:
                self._executor = futures.ThreadPoolExecutor(
                    self._job_workers,
                    thread_name_prefix="repro-service-job")
            try:
                # Submit under the lock so a concurrent close() cannot
                # shut the pool down between the check and the call.
                self._executor.submit(self._run_job, record, request)
            except RuntimeError as error:
                del self._jobs[job_id]
                raise ServiceError(
                    "service is shutting down; submission "
                    "refused") from error
        return job_id

    def _evict_jobs_locked(self) -> None:
        """Cap the job table by evicting the oldest *finished* records
        (the dict is insertion-ordered, so iteration order is age).

        Queued/running records are never evicted — the table may
        transiently exceed ``max_jobs`` while that many submissions
        are genuinely in flight. Polling an evicted id is a
        :class:`NotFoundError`; resubmitting the identical request is
        cheap because its results stay in the result cache.
        """
        if len(self._jobs) <= self._max_jobs:
            return
        finished = [job_id for job_id, record in self._jobs.items()
                    if record.status in ("done", "error")]
        for job_id in finished:
            if len(self._jobs) <= self._max_jobs:
                break
            del self._jobs[job_id]

    def _run_job(self, record: _JobRecord, request) -> None:
        record.status = "running"
        try:
            record.response = getattr(self, record.op)(request)
            # Serialize before flipping the status: a poll observing
            # "done" must always see the payload.
            record.payload = record.response.to_dict()
            record.status = "done"
        except ServiceError as error:
            record.error = error.to_dict()["error"]
            record.status = "error"
        except ReproError as error:
            # Engine-level input problems are the caller's to fix,
            # not a service fault.
            record.error = {"code": "analysis_error",
                            "message": str(error)}
            record.status = "error"
        except Exception as error:  # noqa: BLE001 — job boundary
            record.error = {"code": "internal", "message": str(error)}
            record.status = "error"

    def job_status(self, job_id: str) -> JobStatus:
        """The submission's current state (result included once done)."""
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise NotFoundError(f"unknown job id {job_id!r}")
        return record.snapshot()

    def job_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._jobs)

    # -- introspection -----------------------------------------------------

    def set_load_provider(self, provider) -> None:
        """Register the serving front-end's load hook.

        ``provider`` is a zero-argument callable returning a dict of
        front-end counters (``queue_depth``, ``shed_total``,
        ``inflight_limit``) merged into :meth:`describe`'s ``load``
        block — the facade itself has no work queue, the front-end
        does. ``None`` detaches (the fields fall back to zero).
        """
        self._load_provider = provider

    def describe(self) -> dict:
        """Service health/topology snapshot (the HTTP health body).

        The ``load`` block is the worker-side half of fleet placement:
        a dispatcher (:mod:`repro.fleet`) reads in-flight job counts,
        bounded job-table occupancy and cache hit totals to pick and
        monitor workers. Every pre-fleet field keeps its exact shape.
        """
        with self._lock:
            engine = self._engine
            models = len(self._models)
            jobs = len(self._jobs)
            in_flight = sum(
                1 for record in self._jobs.values()
                if record.status in ("queued", "running"))
        payload = {
            "status": "ok",
            "backend": self._engine_config["backend"],
            "cache_dir": self.cache_dir,
            "kinds": list(kind_names()),
            "models": models,
            "jobs": jobs,
            "max_jobs": self._max_jobs,
            "engine": None,
            "load": {
                "in_flight": in_flight,
                "job_table": jobs,
                "max_jobs": self._max_jobs,
                "occupancy": round(jobs / self._max_jobs, 4),
                "result_cache_hits":
                    engine.result_cache.stats.hits if engine else 0,
                "lts_cache_hits":
                    engine.lts_cache.stats.hits if engine else 0,
                # Front-end half of the load picture; zeros unless a
                # serving front-end registered its provider.
                "queue_depth": 0,
                "shed_total": 0,
                "inflight_limit": 0,
            },
        }
        provider = self._load_provider
        if provider is not None:
            try:
                payload["load"].update(provider())
            except Exception:  # noqa: BLE001 — health must answer
                pass
        if engine is not None:
            payload["engine"] = {
                "workers": engine.workers,
                "result_cache": engine.result_cache.stats.describe(),
            }
        return payload
