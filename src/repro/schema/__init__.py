"""Data schemas: fields, privacy kinds and schema containers (paper II.A)."""

from .fields import (
    ANON_SUFFIX,
    Field,
    FieldKind,
    FieldType,
    anon_name,
    is_anon_name,
    original_name,
)
from .schema import DataSchema, schema_from_names

__all__ = [
    "ANON_SUFFIX",
    "Field",
    "FieldKind",
    "FieldType",
    "anon_name",
    "is_anon_name",
    "original_name",
    "DataSchema",
    "schema_from_names",
]
