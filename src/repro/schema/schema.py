"""Data schemas: ordered collections of fields attached to datastores.

A :class:`DataSchema` is the second label on the paper's datastore
nodes (section II.A, Fig. 1): the description of *what* a datastore
holds. Schemas are immutable once built; the fluent :meth:`with_field`
style returns new schemas, which keeps model generation free of
aliasing surprises.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import SchemaError
from .fields import Field, FieldKind, FieldType, anon_name


class DataSchema:
    """An ordered, named set of :class:`Field` definitions."""

    def __init__(self, name: str, fields: Iterable[Field] = ()):
        if not name:
            raise SchemaError("schema name must be non-empty")
        self.name = name
        self._fields: Dict[str, Field] = {}
        for field in fields:
            self._add(field)

    def _add(self, field: Field) -> None:
        if field.name in self._fields:
            raise SchemaError(
                f"duplicate field {field.name!r} in schema {self.name!r}"
            )
        if field.anonymised_of is not None:
            if field.anonymised_of not in self._fields:
                raise SchemaError(
                    f"anonymised field {field.name!r} references unknown "
                    f"original {field.anonymised_of!r} in schema {self.name!r}"
                )
        self._fields[field.name] = field

    # -- construction ---------------------------------------------------

    def with_field(self, field: Field) -> "DataSchema":
        """Return a new schema with ``field`` appended."""
        schema = DataSchema(self.name, self._fields.values())
        schema._add(field)
        return schema

    def renamed(self, name: str) -> "DataSchema":
        """Return a copy of this schema under a new name."""
        return DataSchema(name, self._fields.values())

    def anonymised_view(self, fields: Optional[Iterable[str]] = None,
                        name: Optional[str] = None) -> "DataSchema":
        """Build the schema of an anonymised datastore.

        Every requested field (default: all non-anonymised fields) is
        replaced by its ``*_anon`` variant. The original fields must
        exist. Used when modelling the paper's "Anonymised EHR" store.
        """
        wanted = list(fields) if fields is not None else [
            f.name for f in self._fields.values() if not f.is_anonymised
        ]
        view_name = name if name is not None else self.name + "_anon"
        anon_fields: List[Field] = []
        for field_name in wanted:
            original = self.field(field_name)
            anon_fields.append(Field(
                name=anon_name(original.name),
                ftype=original.ftype,
                kind=original.kind,
                anonymised_of=original.name,
                description=f"pseudonymised variant of {original.name}",
            ))
        # The originals live in *this* schema, not the view, so assign
        # the field table directly rather than via _add's reference check.
        view = DataSchema(view_name)
        view._fields = {f.name: f for f in anon_fields}
        return view

    # -- queries ---------------------------------------------------------

    def field(self, name: str) -> Field:
        """Return the field called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._fields[name]
        except KeyError:
            known = ", ".join(self._fields) or "<none>"
            raise SchemaError(
                f"schema {self.name!r} has no field {name!r} (fields: {known})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    def names(self) -> Tuple[str, ...]:
        """All field names, in declaration order."""
        return tuple(self._fields)

    def fields_of_kind(self, kind: FieldKind) -> Tuple[Field, ...]:
        return tuple(f for f in self._fields.values() if f.kind is kind)

    def identifiers(self) -> Tuple[Field, ...]:
        return self.fields_of_kind(FieldKind.IDENTIFIER)

    def quasi_identifiers(self) -> Tuple[Field, ...]:
        return self.fields_of_kind(FieldKind.QUASI_IDENTIFIER)

    def sensitive_fields(self) -> Tuple[Field, ...]:
        return self.fields_of_kind(FieldKind.SENSITIVE)

    def anonymised_fields(self) -> Tuple[Field, ...]:
        return tuple(f for f in self._fields.values() if f.is_anonymised)

    def validate_fields(self, names: Iterable[str], context: str) -> None:
        """Raise :class:`SchemaError` if any name is not in this schema."""
        missing = [n for n in names if n not in self._fields]
        if missing:
            listed = ", ".join(sorted(missing))
            raise SchemaError(
                f"{context}: fields not in schema {self.name!r}: {listed}"
            )

    # -- equality / representation ----------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, DataSchema):
            return NotImplemented
        return self.name == other.name and \
            list(self._fields.values()) == list(other._fields.values())

    def __hash__(self) -> int:
        return hash((self.name, tuple(self._fields.values())))

    def __repr__(self) -> str:
        return f"DataSchema({self.name!r}, fields={list(self._fields)})"


def schema_from_names(name: str, field_names: Iterable[str],
                      ftype: FieldType = FieldType.STRING,
                      kind: FieldKind = FieldKind.REGULAR) -> DataSchema:
    """Convenience constructor: a schema of uniformly-typed fields."""
    return DataSchema(name, (Field(n, ftype, kind) for n in field_names))
