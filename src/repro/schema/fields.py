"""Field definitions for data schemas.

A :class:`Field` describes one item of personal data handled by the
system: its value type and its privacy *kind* (direct identifier,
quasi-identifier, sensitive, or regular). Pseudonymised variants of a
field (the paper's ``weight_anon``) are first-class fields that point
back at their original via :attr:`Field.anonymised_of`, so access
policies and state variables can treat ``weight`` and ``weight_anon``
independently — exactly as section II.B requires ("an analyst may have
access permission for the field weight_anon but may not have permission
to access weight").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

ANON_SUFFIX = "_anon"


class FieldType(enum.Enum):
    """Value type of a data field."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    DATE = "date"
    CATEGORY = "category"
    BOOL = "bool"

    @classmethod
    def from_name(cls, name: str) -> "FieldType":
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown field type {name!r}; expected one of: {valid}"
            ) from None


class FieldKind(enum.Enum):
    """Privacy classification of a field.

    - ``IDENTIFIER``: directly identifies the data subject (name, SSN).
    - ``QUASI_IDENTIFIER``: identifying in combination (age, height).
    - ``SENSITIVE``: the value itself is the harm (diagnosis, weight).
    - ``REGULAR``: neither identifying nor sensitive by default.
    """

    IDENTIFIER = "identifier"
    QUASI_IDENTIFIER = "quasi"
    SENSITIVE = "sensitive"
    REGULAR = "regular"

    @classmethod
    def from_name(cls, name: str) -> "FieldKind":
        normalised = name.lower()
        aliases = {
            "id": cls.IDENTIFIER,
            "identifier": cls.IDENTIFIER,
            "quasi": cls.QUASI_IDENTIFIER,
            "quasi_identifier": cls.QUASI_IDENTIFIER,
            "quasi-identifier": cls.QUASI_IDENTIFIER,
            "sensitive": cls.SENSITIVE,
            "regular": cls.REGULAR,
        }
        if normalised not in aliases:
            valid = ", ".join(sorted(set(aliases)))
            raise ValueError(
                f"unknown field kind {name!r}; expected one of: {valid}"
            )
        return aliases[normalised]


@dataclass(frozen=True)
class Field:
    """A single named data field within a schema.

    Parameters
    ----------
    name:
        Field identifier, unique within its schema.
    ftype:
        The value type (:class:`FieldType`).
    kind:
        Privacy classification (:class:`FieldKind`).
    anonymised_of:
        When set, this field is the pseudonymised variant of the named
        original field.
    description:
        Optional human-readable note carried through to reports.
    """

    name: str
    ftype: FieldType = FieldType.STRING
    kind: FieldKind = FieldKind.REGULAR
    anonymised_of: Optional[str] = None
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("field name must be non-empty")
        if not self.name.replace("_", "").isalnum():
            raise ValueError(
                f"field name {self.name!r} must be alphanumeric/underscore"
            )

    @property
    def is_anonymised(self) -> bool:
        """Whether this field is a pseudonymised variant of another field."""
        return self.anonymised_of is not None

    @property
    def is_quasi_identifier(self) -> bool:
        return self.kind is FieldKind.QUASI_IDENTIFIER

    @property
    def is_sensitive(self) -> bool:
        return self.kind is FieldKind.SENSITIVE

    @property
    def is_identifier(self) -> bool:
        return self.kind is FieldKind.IDENTIFIER

    def anonymised(self) -> "Field":
        """Return the pseudonymised variant of this field.

        The variant keeps the original's type and kind and is named
        ``<name>_anon``, following the paper's ``weight_anon`` notation.
        """
        if self.is_anonymised:
            raise ValueError(
                f"field {self.name!r} is already an anonymised variant"
            )
        return Field(
            name=anon_name(self.name),
            ftype=self.ftype,
            kind=self.kind,
            anonymised_of=self.name,
            description=f"pseudonymised variant of {self.name}",
        )


def anon_name(field_name: str) -> str:
    """The conventional name of the pseudonymised variant of a field."""
    return field_name + ANON_SUFFIX


def is_anon_name(field_name: str) -> bool:
    """Whether ``field_name`` follows the ``*_anon`` naming convention."""
    return field_name.endswith(ANON_SUFFIX)


def original_name(field_name: str) -> str:
    """Invert :func:`anon_name`; returns the input unchanged otherwise."""
    if is_anon_name(field_name):
        return field_name[: -len(ANON_SUFFIX)]
    return field_name
