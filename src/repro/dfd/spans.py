"""Source spans: where each model entity was declared.

The DSL parser already carries 1-based line/column positions on every
token; this module gives them a home on the model so downstream
tooling (the lint engine, ``repro validate --json``, SARIF export) can
anchor findings to source locations. A :class:`SpanTable` hangs off
every :class:`~repro.dfd.model.SystemModel` and maps *entity keys* —
small tuples naming a declaration — to :class:`Span` positions:

======================== ==========================================
key                      declaration
======================== ==========================================
``("system",)``          the ``system`` header
``("schema", name)``     a schema block
``("field", schema, f)`` one field of a schema
``("role", name)``       a role declaration
``("actor", name)``      an actor declaration
``("datastore", name)``  a datastore declaration
``("service", name)``    a service block
``("flow", service, n)`` the flow with order ``n``
``("grant", index)``     the ``index``-th ACL entry, in declaration
                         order — duplicate grants therefore keep one
                         span *per occurrence*
======================== ==========================================

Models built programmatically (the :class:`SystemBuilder`, the wire
deserializer) have an empty table; lookups then return the synthetic
:data:`SYNTHETIC` span, so every consumer can treat spans as total.
Spans are display metadata: they never enter canonical serialisation
or cache fingerprints, exactly like descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["Span", "SpanTable", "SYNTHETIC"]


@dataclass(frozen=True, order=True)
class Span:
    """A 1-based source position; line 0 marks a synthetic span."""

    line: int = 0
    column: int = 0

    @property
    def synthetic(self) -> bool:
        return self.line <= 0

    def describe(self) -> str:
        if self.synthetic:
            return "<synthetic>"
        return f"{self.line}:{self.column}"


#: The span of entities that have no source text (builder models,
#: deserialized models, entities the parser never saw).
SYNTHETIC = Span(0, 0)


class SpanTable:
    """Entity key -> :class:`Span`, total via :data:`SYNTHETIC`."""

    def __init__(self):
        self._spans: Dict[tuple, Span] = {}

    def record(self, key: tuple, line: int, column: int) -> None:
        self._spans[tuple(key)] = Span(line, column)

    def get(self, key) -> Span:
        """The recorded span of ``key`` (synthetic when unknown,
        including ``key=None`` for findings with no anchor)."""
        if key is None:
            return SYNTHETIC
        return self._spans.get(tuple(key), SYNTHETIC)

    def has(self, key: tuple) -> bool:
        return tuple(key) in self._spans

    def keys(self) -> Tuple[tuple, ...]:
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._spans)

    def __repr__(self) -> str:
        return f"SpanTable({len(self._spans)} spans)"
