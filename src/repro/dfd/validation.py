"""Structural validation of system models.

Validation catches the modelling mistakes the paper's framework must
reject before generation: flows referencing unknown nodes or fields,
datastore writes of fields outside the schema, actor-less services,
unreachable flows (data that can never arrive at the flow's source),
and grants for fields a store does not hold.

Issues carry a severity; :func:`validate_system` raises
:class:`~repro.errors.ValidationError` when any ``ERROR`` issue is
found and ``strict`` is set, otherwise it returns the issue list for
tooling to render.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..access import Permission
from ..errors import ValidationError
from ..schema import anon_name
from .model import Flow, NodeKind, Service, SystemModel, USER


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Issue:
    """One validation finding.

    ``entity`` names the declaration the finding is about as a
    span-table key (see :mod:`repro.dfd.spans`), so tooling can anchor
    the issue to its source position; ``None`` when no single
    declaration owns the problem. It is metadata — excluded from
    equality, so issues still compare by (severity, code, message).
    """

    severity: Severity
    code: str
    message: str
    entity: Optional[tuple] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.severity.value.upper()} [{self.code}] {self.message}"


def _error(code: str, message: str,
           entity: Optional[tuple] = None) -> Issue:
    return Issue(Severity.ERROR, code, message, entity)


def _warning(code: str, message: str,
             entity: Optional[tuple] = None) -> Issue:
    return Issue(Severity.WARNING, code, message, entity)


def validate_system(system: SystemModel, strict: bool = True) -> List[Issue]:
    """Validate ``system``; raise on errors when ``strict``."""
    issues: List[Issue] = []
    issues.extend(_check_nonempty(system))
    issues.extend(_check_flow_endpoints(system))
    issues.extend(_check_store_fields(system))
    issues.extend(_check_flow_reachability(system))
    issues.extend(_check_policy(system))
    issues.extend(_check_store_store_flows(system))
    if strict:
        errors = [i for i in issues if i.severity is Severity.ERROR]
        if errors:
            summary = "; ".join(str(i) for i in errors[:5])
            more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
            raise ValidationError(
                f"system {system.name!r} failed validation: {summary}{more}",
                issues=issues,
            )
    return issues


def _check_nonempty(system: SystemModel) -> List[Issue]:
    issues: List[Issue] = []
    if not system.services:
        issues.append(_warning(
            "empty-model", f"system {system.name!r} defines no services",
            ("system",)))
    for service in system.services.values():
        if len(service) == 0:
            issues.append(_error(
                "empty-service",
                f"service {service.name!r} has no flows",
                ("service", service.name)))
        # Resolve participants defensively: unknown nodes are reported
        # by the endpoint check, not by crashing here.
        elif not any(p in system.actors for p in service.participants()):
            issues.append(_error(
                "no-actors",
                f"service {service.name!r} involves no actors",
                ("service", service.name)))
    return issues


def _check_flow_endpoints(system: SystemModel) -> List[Issue]:
    issues: List[Issue] = []
    for flow in system.all_flows():
        entity = ("flow",) + flow.key
        for endpoint in (flow.source, flow.target):
            if not system.has_node(endpoint):
                issues.append(_error(
                    "unknown-node",
                    f"flow {flow.describe()} references unknown node "
                    f"{endpoint!r}", entity))
        if system.has_node(flow.source) and system.has_node(flow.target):
            if flow.source == USER and \
                    system.node_kind(flow.target) is NodeKind.DATASTORE:
                issues.append(_error(
                    "user-to-store",
                    f"flow {flow.describe()}: the data subject cannot "
                    "write a datastore directly; route through an actor",
                    entity))
            if flow.target == USER and \
                    system.node_kind(flow.source) is NodeKind.DATASTORE:
                issues.append(_error(
                    "store-to-user",
                    f"flow {flow.describe()}: a datastore cannot flow "
                    "directly to the data subject", entity))
    return issues


def _check_store_fields(system: SystemModel) -> List[Issue]:
    """Flows touching a datastore must use fields of its schema."""
    issues: List[Issue] = []
    for flow in system.all_flows():
        for endpoint in (flow.source, flow.target):
            if endpoint not in system.datastores:
                continue
            store = system.datastores[endpoint]
            schema_names = set(store.field_names())
            if store.anonymised and endpoint == flow.target:
                # Writes into an anonymised store are expressed in
                # original field names; the anon action renames them.
                missing = [
                    f for f in flow.fields
                    if f not in schema_names
                    and anon_name(f) not in schema_names
                ]
            else:
                missing = [f for f in flow.fields if f not in schema_names]
            if missing:
                issues.append(_error(
                    "field-not-in-schema",
                    f"flow {flow.describe()}: fields "
                    f"{sorted(missing)} are not in datastore "
                    f"{store.name!r} schema {store.schema.name!r}",
                    ("flow",) + flow.key))
    return issues


def _check_flow_reachability(system: SystemModel) -> List[Issue]:
    """Within each service, every flow's source must be able to hold
    the fields it sends, given some execution of earlier flows.

    This mirrors the generator's precondition ("provided the start node
    has the correct data to flow"): a flow that can never be enabled is
    dead modelling and flagged as a warning.
    """
    issues: List[Issue] = []
    for service in system.services.values():
        issues.extend(_check_service_reachability(system, service))
    return issues


def _check_service_reachability(system: SystemModel,
                                service: Service) -> List[Issue]:
    issues: List[Issue] = []
    # Fixed-point over "node N can hold field f".
    holdings: Set[tuple] = set()
    valid_flows = [
        f for f in service.flows
        if system.has_node(f.source) and system.has_node(f.target)
    ]

    def source_ready(flow: Flow) -> bool:
        if flow.source == USER:
            return True
        if flow.source in system.actors:
            originated = set(system.actors[flow.source].originates)
            return all(
                f in originated or (flow.source, f) in holdings
                for f in flow.fields
            )
        return all((flow.source, f) in holdings for f in flow.fields)

    changed = True
    fired: Set[tuple] = set()
    while changed:
        changed = False
        for flow in valid_flows:
            if flow.key in fired or not source_ready(flow):
                continue
            fired.add(flow.key)
            changed = True
            target_is_anon_store = (
                flow.target in system.datastores
                and system.datastores[flow.target].anonymised
            )
            for field_name in flow.fields:
                if target_is_anon_store and \
                        anon_name(field_name) in \
                        system.datastores[flow.target].schema:
                    holdings.add((flow.target, anon_name(field_name)))
                else:
                    holdings.add((flow.target, field_name))
    for flow in valid_flows:
        if flow.key not in fired:
            issues.append(_warning(
                "unreachable-flow",
                f"flow {flow.describe()} can never execute: its source "
                "never holds the fields it sends",
                ("flow",) + flow.key))
    return issues


def _check_policy(system: SystemModel) -> List[Issue]:
    issues: List[Issue] = []
    try:
        system.policy.validate()
    except Exception as exc:  # ModelError from policy internals
        issues.append(_error("policy", str(exc), ("system",)))
    for index, entry in enumerate(system.policy.acl):
        if entry.store not in system.datastores:
            issues.append(_error(
                "grant-unknown-store",
                f"ACL grants {entry.subject!r} access to unknown "
                f"datastore {entry.store!r}", ("grant", index)))
            continue
        store = system.datastores[entry.store]
        if not entry.grants_all_fields:
            schema_names = set(store.field_names())
            missing = [f for f in entry.fields if f not in schema_names]
            if missing:
                issues.append(_error(
                    "grant-unknown-field",
                    f"ACL grants {entry.subject!r} access to fields "
                    f"{sorted(missing)} absent from datastore "
                    f"{store.name!r}", ("grant", index)))
    # Reads in flows should be backed by grants, else generation will
    # produce a read the policy forbids.
    for flow in system.all_flows():
        if flow.source in system.datastores and \
                flow.target in system.actors:
            store = system.datastores[flow.source]
            for field_name in flow.fields:
                if not system.policy.is_allowed(
                        flow.target, Permission.READ, store.name,
                        field_name):
                    issues.append(_warning(
                        "unbacked-read",
                        f"flow {flow.describe()}: actor "
                        f"{flow.target!r} reads {field_name!r} from "
                        f"{store.name!r} without an ACL grant",
                        ("flow",) + flow.key))
    return issues


def _check_store_store_flows(system: SystemModel) -> List[Issue]:
    issues: List[Issue] = []
    for flow in system.all_flows():
        if flow.source in system.datastores and \
                flow.target in system.datastores:
            issues.append(_error(
                "store-to-store",
                f"flow {flow.describe()}: datastore-to-datastore flows "
                "must be mediated by an actor", ("flow",) + flow.key))
    return issues
