"""Graphviz (DOT) rendering of data-flow diagrams.

Reproduces the visual conventions of the paper's Fig. 1: actors are
ovals, datastores are rectangles labelled with their identifier and
schema name, the user is a bold oval, and each flow arrow carries its
order, field set and purpose.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .model import NodeKind, SystemModel, USER


def _quote(value: str) -> str:
    return '"' + value.replace('"', '\\"') + '"'


def _edge_label(flow) -> str:
    fields = ", ".join(flow.fields)
    label = f"{flow.order}: {{{fields}}}"
    if flow.purpose:
        label += f"\\n({flow.purpose})"
    return label


def dfd_to_dot(system: SystemModel,
               services: Optional[Iterable[str]] = None,
               graph_name: Optional[str] = None) -> str:
    """Render the system's data-flow diagram(s) as DOT text.

    ``services`` restricts the output to the named services (default:
    all). Each service is drawn as its own cluster, matching the two
    side-by-side diagrams of Fig. 1.
    """
    selected = list(services) if services is not None else \
        list(system.services)
    for name in selected:
        system.service(name)  # raises on unknown service names

    lines: List[str] = [
        f"digraph {_quote(graph_name or system.name)} {{",
        "  rankdir=LR;",
        "  node [fontsize=11];",
    ]

    used_nodes = set()
    for service_name in selected:
        for flow in system.service(service_name).flows:
            used_nodes.add(flow.source)
            used_nodes.add(flow.target)

    for node in sorted(used_nodes):
        kind = system.node_kind(node)
        if kind is NodeKind.USER:
            lines.append(
                f"  {_quote(node)} [shape=oval, style=bold];")
        elif kind is NodeKind.ACTOR:
            lines.append(f"  {_quote(node)} [shape=oval];")
        else:
            store = system.datastores[node]
            label = f"{store.name}\\n[{store.schema.name}]"
            style = ", style=dashed" if store.anonymised else ""
            lines.append(
                f"  {_quote(node)} [shape=box, "
                f"label={_quote(label)}{style}];"
            )

    for index, service_name in enumerate(selected):
        service = system.service(service_name)
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(service.name)};")
        for flow in service.flows:
            lines.append(
                f"    {_quote(flow.source)} -> {_quote(flow.target)} "
                f"[label={_quote(_edge_label(flow))}];"
            )
        lines.append("  }")

    lines.append("}")
    return "\n".join(lines) + "\n"
