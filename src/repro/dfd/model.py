"""Data-flow model: actors, datastores, services, flows, system model.

This is the developer-facing modelling layer of section II.A. A
:class:`SystemModel` aggregates everything the paper's "Step 1" curates:

- data schemas (what each datastore holds),
- actors (ovals in Fig. 1) and datastores (rectangles),
- services, each being one data-flow diagram: a list of
  :class:`Flow` arrows labelled with fields, purpose and order,
- the access policy (ACL + RBAC) of the datastores.

The data subject is the distinguished node :data:`USER` — flows from
``USER`` to an actor become ``collect`` actions during generation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .._util import freeze_fields
from ..access import AccessPolicy
from ..errors import ModelError
from ..schema import DataSchema
from .spans import SpanTable

USER = "User"
"""Reserved node name for the data subject."""


class NodeKind(enum.Enum):
    """What a node name refers to inside a data-flow diagram."""

    USER = "user"
    ACTOR = "actor"
    DATASTORE = "datastore"


@dataclass(frozen=True)
class Actor:
    """An individual or role type that can act on personal data.

    ``originates`` lists personal-data fields this actor *creates*
    about the user rather than receiving them (a doctor originates the
    diagnosis, a receptionist the appointment slot). A flow may send an
    originated field even though nothing delivered it to the actor
    first; the generator materialises it at that point.
    """

    name: str
    role: Optional[str] = None
    description: str = ""
    originates: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("actor name must be non-empty")
        if self.name == USER:
            raise ValueError(
                f"{USER!r} is reserved for the data subject node"
            )
        object.__setattr__(self, "originates",
                           freeze_fields(self.originates))


@dataclass(frozen=True)
class Datastore:
    """A datastore node: an identifier plus the schema of its contents.

    ``anonymised`` marks stores that hold pseudonymised data — flows
    *into* such a store become ``anon`` actions rather than ``create``
    (section II.B extraction rules).
    """

    name: str
    schema: DataSchema
    anonymised: bool = False
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("datastore name must be non-empty")
        if self.name == USER:
            raise ValueError(f"{USER!r} is reserved for the data subject")

    def field_names(self) -> Tuple[str, ...]:
        return self.schema.names()


@dataclass(frozen=True)
class Flow:
    """One directed flow arrow of a data-flow diagram.

    Labelled exactly as the paper requires: the set of data fields that
    flow, the purpose of the flow, and a numeric order value.
    """

    order: int
    source: str
    target: str
    fields: Tuple[str, ...]
    purpose: str = ""
    service: str = ""

    def __post_init__(self):
        if self.order < 0:
            raise ValueError("flow order must be non-negative")
        if not self.source or not self.target:
            raise ValueError("flow endpoints must be non-empty")
        if self.source == self.target:
            raise ValueError(
                f"flow from {self.source!r} to itself is meaningless"
            )
        if not self.fields:
            raise ValueError("a flow must carry at least one field")
        object.__setattr__(self, "fields", freeze_fields(self.fields))

    @property
    def key(self) -> Tuple[str, int]:
        """Stable identifier of a flow within its system model."""
        return (self.service, self.order)

    def describe(self) -> str:
        fields = ", ".join(self.fields)
        suffix = f" for {self.purpose!r}" if self.purpose else ""
        return (
            f"[{self.service}#{self.order}] {self.source} -> "
            f"{self.target}: {{{fields}}}{suffix}"
        )


class Service:
    """A named service: one purpose-driven data-flow diagram.

    Flows are kept sorted by their order label. Order values must be
    unique within the service so ``sequence`` generation is well
    defined.
    """

    def __init__(self, name: str, flows: Iterable[Flow] = (),
                 description: str = ""):
        if not name:
            raise ModelError("service name must be non-empty")
        self.name = name
        self.description = description
        self._flows: List[Flow] = []
        for flow in flows:
            self.add_flow(flow)

    def add_flow(self, flow: Flow) -> "Service":
        if flow.service and flow.service != self.name:
            raise ModelError(
                f"flow {flow.describe()} belongs to service "
                f"{flow.service!r}, not {self.name!r}"
            )
        if any(existing.order == flow.order for existing in self._flows):
            raise ModelError(
                f"service {self.name!r} already has a flow with order "
                f"{flow.order}"
            )
        bound = Flow(flow.order, flow.source, flow.target, flow.fields,
                     flow.purpose, self.name)
        self._flows.append(bound)
        self._flows.sort(key=lambda f: f.order)
        return self

    @property
    def flows(self) -> Tuple[Flow, ...]:
        return tuple(self._flows)

    def participants(self) -> Set[str]:
        """Every node name appearing in this service's flows."""
        names: Set[str] = set()
        for flow in self._flows:
            names.add(flow.source)
            names.add(flow.target)
        return names

    def actors_involved(self, system: "SystemModel") -> Set[str]:
        """Actor names taking part in the service (the paper's
        'allowed actors' population when a user agrees to it)."""
        return {
            name for name in self.participants()
            if system.node_kind(name) is NodeKind.ACTOR
        }

    def fields_used(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for flow in self._flows:
            for field_name in flow.fields:
                if field_name not in seen:
                    seen.append(field_name)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __repr__(self) -> str:
        return f"Service({self.name!r}, flows={len(self._flows)})"


class SystemModel:
    """The complete set of design artifacts for one system (Step 1)."""

    def __init__(self, name: str):
        if not name:
            raise ModelError("system model name must be non-empty")
        self.name = name
        self.schemas: Dict[str, DataSchema] = {}
        self.actors: Dict[str, Actor] = {}
        self.datastores: Dict[str, Datastore] = {}
        self.services: Dict[str, Service] = {}
        self.policy = AccessPolicy()
        #: Source positions of declarations (populated by the DSL
        #: parser; empty — all-synthetic — for builder-made models).
        #: Display metadata only: never part of canonical
        #: serialisation or cache fingerprints.
        self.spans = SpanTable()

    # -- construction -----------------------------------------------------

    def add_schema(self, schema: DataSchema) -> DataSchema:
        if schema.name in self.schemas:
            raise ModelError(f"schema {schema.name!r} already defined")
        self.schemas[schema.name] = schema
        return schema

    def add_actor(self, actor: Actor) -> Actor:
        self._check_fresh_name(actor.name)
        self.actors[actor.name] = actor
        self.policy.register_actor(actor.name)
        if actor.role is not None:
            if not self.policy.rbac.is_role(actor.role):
                self.policy.rbac.define_role(actor.role)
            self.policy.rbac.assign(actor.name, actor.role)
        return actor

    def add_datastore(self, store: Datastore) -> Datastore:
        self._check_fresh_name(store.name)
        if store.schema.name not in self.schemas:
            self.add_schema(store.schema)
        elif self.schemas[store.schema.name] != store.schema:
            raise ModelError(
                f"datastore {store.name!r} carries a schema named "
                f"{store.schema.name!r} that differs from the one already "
                "registered"
            )
        self.datastores[store.name] = store
        return store

    def add_service(self, service: Service) -> Service:
        if service.name in self.services:
            raise ModelError(f"service {service.name!r} already defined")
        self.services[service.name] = service
        return service

    def _check_fresh_name(self, name: str) -> None:
        if name == USER:
            raise ModelError(f"{USER!r} is reserved for the data subject")
        if name in self.actors or name in self.datastores:
            raise ModelError(f"node name {name!r} is already in use")

    # -- queries ---------------------------------------------------------------

    def node_kind(self, name: str) -> NodeKind:
        if name == USER:
            return NodeKind.USER
        if name in self.actors:
            return NodeKind.ACTOR
        if name in self.datastores:
            return NodeKind.DATASTORE
        raise ModelError(f"unknown node {name!r} in system {self.name!r}")

    def has_node(self, name: str) -> bool:
        return name == USER or name in self.actors or name in self.datastores

    def service(self, name: str) -> Service:
        try:
            return self.services[name]
        except KeyError:
            known = ", ".join(self.services) or "<none>"
            raise ModelError(
                f"unknown service {name!r} (services: {known})"
            ) from None

    def datastore(self, name: str) -> Datastore:
        try:
            return self.datastores[name]
        except KeyError:
            known = ", ".join(self.datastores) or "<none>"
            raise ModelError(
                f"unknown datastore {name!r} (datastores: {known})"
            ) from None

    def actor(self, name: str) -> Actor:
        try:
            return self.actors[name]
        except KeyError:
            known = ", ".join(self.actors) or "<none>"
            raise ModelError(
                f"unknown actor {name!r} (actors: {known})"
            ) from None

    def all_flows(self) -> Tuple[Flow, ...]:
        flows: List[Flow] = []
        for service in self.services.values():
            flows.extend(service.flows)
        return tuple(flows)

    def personal_fields(self) -> Tuple[str, ...]:
        """Every distinct field name flowing through the system or held
        by a datastore — the field universe of the privacy model."""
        seen: List[str] = []
        for service in self.services.values():
            for field_name in service.fields_used():
                if field_name not in seen:
                    seen.append(field_name)
        for store in self.datastores.values():
            for field_name in store.field_names():
                if field_name not in seen:
                    seen.append(field_name)
        return tuple(seen)

    def actor_names(self) -> Tuple[str, ...]:
        return tuple(self.actors)

    def services_of_actor(self, actor_name: str) -> Tuple[str, ...]:
        """Names of services the actor participates in."""
        return tuple(
            service.name for service in self.services.values()
            if actor_name in service.participants()
        )

    def allowed_actors(self, agreed_services: Iterable[str]) -> Set[str]:
        """Actors involved in any of the agreed services (section III.A)."""
        allowed: Set[str] = set()
        for service_name in agreed_services:
            allowed |= self.service(service_name).actors_involved(self)
        return allowed

    def non_allowed_actors(self, agreed_services: Iterable[str]) -> Set[str]:
        """Actors *not* involved in any agreed service."""
        return set(self.actors) - self.allowed_actors(agreed_services)

    def validate(self, strict: bool = True):
        """Run structural validation; see :mod:`repro.dfd.validation`."""
        from .validation import validate_system
        return validate_system(self, strict=strict)

    def __repr__(self) -> str:
        return (
            f"SystemModel({self.name!r}, actors={len(self.actors)}, "
            f"datastores={len(self.datastores)}, "
            f"services={len(self.services)})"
        )
