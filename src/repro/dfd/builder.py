"""Fluent builder for system models.

The builder is the programmatic front door of the modelling framework:
it assembles schemas, actors, datastores, services and grants with
short chained calls, validates the result, and hands back a
:class:`~repro.dfd.model.SystemModel` ready for LTS generation.

Example
-------
>>> from repro.dfd import SystemBuilder
>>> system = (
...     SystemBuilder("clinic")
...     .schema("Visit", [("name", "string", "identifier"),
...                       ("issue", "string", "sensitive")])
...     .actor("Doctor", role="clinician")
...     .datastore("Records", "Visit")
...     .service("Consult")
...         .flow(1, "User", "Doctor", ["name", "issue"], purpose="consult")
...         .flow(2, "Doctor", "Records", ["name", "issue"], purpose="record")
...     .allow("Doctor", "read", "Records")
...     .build()
... )
>>> sorted(system.actors)
['Doctor']
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from ..errors import ModelError
from ..schema import DataSchema, Field, FieldKind, FieldType
from .model import Actor, Datastore, Flow, Service, SystemModel

FieldSpec = Union[str, Tuple[str, str], Tuple[str, str, str], Field]


def _field_from_spec(spec: FieldSpec) -> Field:
    """Accept ``"name"``, ``("name", type)``, ``("name", type, kind)``
    or a ready :class:`Field`."""
    if isinstance(spec, Field):
        return spec
    if isinstance(spec, str):
        return Field(spec)
    if isinstance(spec, tuple):
        if len(spec) == 2:
            name, ftype = spec
            return Field(name, FieldType.from_name(ftype))
        if len(spec) == 3:
            name, ftype, kind = spec
            return Field(name, FieldType.from_name(ftype),
                         FieldKind.from_name(kind))
    raise ValueError(
        f"cannot build a field from {spec!r}; use a name, a (name, type) "
        "pair, a (name, type, kind) triple, or a Field"
    )


class SystemBuilder:
    """Chained construction of a :class:`SystemModel`.

    ``service()`` opens a *current service*; subsequent ``flow()`` calls
    attach to it until another ``service()`` (or any non-flow call ends
    nothing — flows simply require an open service).
    """

    def __init__(self, name: str):
        self._system = SystemModel(name)
        self._current_service: Optional[Service] = None
        self._flow_counter = 0

    # -- schemas ----------------------------------------------------------

    def schema(self, name: str,
               fields: Sequence[FieldSpec]) -> "SystemBuilder":
        """Define a data schema from field specs."""
        self._system.add_schema(
            DataSchema(name, [_field_from_spec(s) for s in fields])
        )
        return self

    def anonymised_schema(self, name: str, source_schema: str,
                          fields: Optional[Iterable[str]] = None
                          ) -> "SystemBuilder":
        """Define a schema of ``*_anon`` variants of another schema."""
        source = self._schema_named(source_schema)
        self._system.add_schema(source.anonymised_view(fields, name=name))
        return self

    def _schema_named(self, name: str) -> DataSchema:
        try:
            return self._system.schemas[name]
        except KeyError:
            known = ", ".join(self._system.schemas) or "<none>"
            raise ModelError(
                f"unknown schema {name!r} (schemas: {known})"
            ) from None

    # -- nodes ----------------------------------------------------------------

    def actor(self, name: str, role: Optional[str] = None,
              description: str = "",
              originates: Sequence[str] = ()) -> "SystemBuilder":
        self._system.add_actor(
            Actor(name, role, description, tuple(originates)))
        return self

    def actors(self, *names: str) -> "SystemBuilder":
        for name in names:
            self.actor(name)
        return self

    def datastore(self, name: str, schema: Union[str, DataSchema],
                  anonymised: bool = False,
                  description: str = "") -> "SystemBuilder":
        resolved = (
            self._schema_named(schema) if isinstance(schema, str) else schema
        )
        self._system.add_datastore(
            Datastore(name, resolved, anonymised, description)
        )
        return self

    # -- roles / grants ------------------------------------------------------

    def role(self, name: str, parents: Iterable[str] = ()) -> "SystemBuilder":
        self._system.policy.rbac.define_role(name, parents)
        return self

    def assign_role(self, actor: str, *roles: str) -> "SystemBuilder":
        self._system.policy.rbac.assign(actor, *roles)
        return self

    def allow(self, subject: str, permissions, store: str,
              fields: Iterable[str] = ("*",)) -> "SystemBuilder":
        """Grant ``subject`` (actor or role) permissions on a store."""
        self._system.policy.allow(subject, permissions, store, fields)
        return self

    # -- services / flows -------------------------------------------------------

    def service(self, name: str, description: str = "") -> "SystemBuilder":
        """Open a new service; following ``flow()`` calls attach to it."""
        self._current_service = self._system.add_service(
            Service(name, description=description)
        )
        self._flow_counter = 0
        return self

    def flow(self, order: Optional[int], source: str, target: str,
             fields: Sequence[str], purpose: str = "") -> "SystemBuilder":
        """Add a flow to the currently open service.

        ``order=None`` auto-numbers flows 1, 2, 3, ... in call order.
        """
        if self._current_service is None:
            raise ModelError(
                "flow() requires an open service; call service() first"
            )
        if order is None:
            self._flow_counter += 1
            order = self._flow_counter
        else:
            self._flow_counter = max(self._flow_counter, order)
        self._current_service.add_flow(
            Flow(order, source, target, tuple(fields), purpose)
        )
        return self

    # -- finish -------------------------------------------------------------------

    def build(self, validate: bool = True,
              strict: bool = True) -> SystemModel:
        """Return the built model, validating by default."""
        if validate:
            self._system.validate(strict=strict)
        return self._system

    def peek(self) -> SystemModel:
        """The model under construction, without validation."""
        return self._system
