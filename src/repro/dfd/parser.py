"""Parser for the model DSL.

The DSL is the textual design artifact of the paper's Step 1: a single
``system`` block containing schemas, roles, actors, datastores,
services (with ordered, purposed flows) and an ``acl`` block. Grammar
(EBNF, ``[]`` = optional, ``{}`` = repetition):

.. code-block:: text

   system      = "system" name "{" {declaration} "}"
   declaration = schema | role | actor | assign | datastore | service | acl
   schema      = "schema" name "{" {field} "}"
   field       = "field" IDENT ":" IDENT ["kind" IDENT]
                 ["anonymises" IDENT] ["desc" STRING]
   role        = "role" name ["parents" namelist]
   actor       = "actor" name ["role" name] ["originates" namelist]
                 ["desc" STRING]
   assign      = "assign" name "roles" namelist
   datastore   = ["anonymised"] "datastore" name "schema" name
                 ["desc" STRING]
   service     = "service" name ["desc" STRING] "{" {flow} "}"
   flow        = "flow" NUMBER name "->" name "fields" namelist
                 ["purpose" STRING]
   acl         = "acl" "{" {grant} "}"
   grant       = "allow" name permlist "on" name ["fields" namelist]
   permlist    = IDENT {"," IDENT}
   namelist    = "[" [name {"," name}] "]"
   name        = IDENT | STRING

Comments run from ``#`` to end of line. Errors raise
:class:`~repro.errors.ParseError` with 1-based line/column positions.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..access import Permission
from ..errors import ParseError
from ..schema import DataSchema, Field, FieldKind, FieldType
from .model import Actor, Datastore, Flow, Service, SystemModel

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<arrow>->)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<punct>[{}\[\]:,])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({
    "system", "schema", "field", "kind", "anonymises", "role", "roles",
    "actor", "assign", "parents", "datastore", "anonymised", "service",
    "flow", "fields", "purpose", "acl", "allow", "on", "originates",
    "desc",
})


@dataclass(frozen=True)
class Token:
    type: str  # 'ident' | 'string' | 'number' | 'arrow' | 'punct' | 'eof'
    value: str
    line: int
    column: int


def tokenize(text: str) -> List[Token]:
    """Split DSL text into tokens; raises on unexpected characters."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(
                f"unexpected character {text[pos]!r}", line, column
            )
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rindex("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, len(text) - line_start + 1))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token primitives -----------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.type != "eof":
            self._index += 1
        return token

    def _fail(self, message: str, token: Optional[Token] = None) -> None:
        token = token if token is not None else self._peek()
        raise ParseError(message, token.line, token.column)

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._next()
        if token.type != "ident" or token.value != keyword:
            self._fail(f"expected {keyword!r}, found {token.value!r}", token)
        return token

    def _expect_punct(self, symbol: str) -> Token:
        token = self._next()
        if token.type != "punct" or token.value != symbol:
            self._fail(f"expected {symbol!r}, found {token.value!r}", token)
        return token

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token.type == "ident" and token.value == keyword

    def _name(self) -> str:
        """An identifier or quoted string."""
        token = self._next()
        if token.type == "ident":
            return token.value
        if token.type == "string":
            return self._decode_string(token)
        self._fail(f"expected a name, found {token.value!r}", token)
        raise AssertionError("unreachable")

    def _ident(self, what: str) -> str:
        token = self._next()
        if token.type != "ident":
            self._fail(f"expected {what}, found {token.value!r}", token)
        return token.value

    def _string(self, what: str) -> str:
        token = self._next()
        if token.type != "string":
            self._fail(f"expected quoted {what}, found {token.value!r}",
                       token)
        return self._decode_string(token)

    def _decode_string(self, token: Token) -> str:
        # The tokenizer matches quote-to-quote without validating the
        # contents, so raw control characters (invalid JSON) can reach
        # this point; they are a parse error, not a traceback.
        try:
            return json.loads(token.value)
        except json.JSONDecodeError:
            self._fail(f"invalid string literal {token.value!r}", token)
            raise AssertionError("unreachable")

    def _number(self, what: str) -> int:
        token = self._next()
        if token.type != "number":
            self._fail(f"expected {what}, found {token.value!r}", token)
        return int(token.value)

    def _optional_desc(self) -> str:
        if self._at_keyword("desc"):
            self._next()
            return self._string("description")
        return ""

    def _namelist(self) -> List[str]:
        self._expect_punct("[")
        names: List[str] = []
        if not (self._peek().type == "punct" and self._peek().value == "]"):
            names.append(self._name())
            while self._peek().type == "punct" and \
                    self._peek().value == ",":
                self._next()
                names.append(self._name())
        self._expect_punct("]")
        return names

    # -- grammar --------------------------------------------------------------

    def parse_system(self) -> SystemModel:
        header = self._expect_keyword("system")
        system = SystemModel(self._name())
        system.spans.record(("system",), header.line, header.column)
        self._expect_punct("{")
        while not (self._peek().type == "punct" and
                   self._peek().value == "}"):
            self._declaration(system)
        self._expect_punct("}")
        trailing = self._next()
        if trailing.type != "eof":
            self._fail(
                f"unexpected {trailing.value!r} after closing brace",
                trailing)
        return system

    def _declaration(self, system: SystemModel) -> None:
        token = self._peek()
        if token.type != "ident":
            self._fail(
                f"expected a declaration keyword, found {token.value!r}")
        handlers = {
            "schema": self._schema,
            "role": self._role,
            "actor": self._actor,
            "assign": self._assign,
            "datastore": self._datastore,
            "anonymised": self._datastore,
            "service": self._service,
            "acl": self._acl,
        }
        handler = handlers.get(token.value)
        if handler is None:
            self._fail(
                f"unknown declaration {token.value!r}; expected one of "
                + ", ".join(sorted(set(handlers))), token)
            raise AssertionError("unreachable")
        handler(system)

    def _schema(self, system: SystemModel) -> None:
        keyword = self._expect_keyword("schema")
        name = self._name()
        system.spans.record(("schema", name),
                            keyword.line, keyword.column)
        self._expect_punct("{")
        fields: List[Tuple[Field, Token]] = []
        while self._at_keyword("field"):
            fields.append(self._field())
        self._expect_punct("}")
        schema = DataSchema(name)
        # Assign directly: anonymises links may point outside the schema.
        schema._fields = {}
        for field, token in fields:
            if field.name in schema._fields:
                self._fail(
                    f"duplicate field {field.name!r} in schema {name!r}")
            schema._fields[field.name] = field
            system.spans.record(("field", name, field.name),
                                token.line, token.column)
        system.add_schema(schema)

    def _field(self) -> Tuple[Field, Token]:
        keyword = self._expect_keyword("field")
        name = self._ident("field name")
        self._expect_punct(":")
        type_token = self._next()
        if type_token.type != "ident":
            self._fail("expected field type", type_token)
        try:
            ftype = FieldType.from_name(type_token.value)
        except ValueError as exc:
            self._fail(str(exc), type_token)
        kind = FieldKind.REGULAR
        anonymised_of = None
        if self._at_keyword("kind"):
            self._next()
            kind_token = self._next()
            try:
                kind = FieldKind.from_name(kind_token.value)
            except ValueError as exc:
                self._fail(str(exc), kind_token)
        if self._at_keyword("anonymises"):
            self._next()
            anonymised_of = self._ident("original field name")
        description = self._optional_desc()
        return Field(name, ftype, kind, anonymised_of, description), \
            keyword

    def _role(self, system: SystemModel) -> None:
        keyword = self._expect_keyword("role")
        name = self._name()
        system.spans.record(("role", name),
                            keyword.line, keyword.column)
        parents: List[str] = []
        if self._at_keyword("parents"):
            self._next()
            parents = self._namelist()
        system.policy.rbac.define_role(name, parents)

    def _actor(self, system: SystemModel) -> None:
        keyword = self._expect_keyword("actor")
        name = self._name()
        system.spans.record(("actor", name),
                            keyword.line, keyword.column)
        role = None
        originates: List[str] = []
        if self._at_keyword("role"):
            self._next()
            role = self._name()
        if self._at_keyword("originates"):
            self._next()
            originates = self._namelist()
        description = self._optional_desc()
        system.add_actor(Actor(name, role, description,
                               tuple(originates)))

    def _assign(self, system: SystemModel) -> None:
        self._expect_keyword("assign")
        actor = self._name()
        self._expect_keyword("roles")
        roles = self._namelist()
        if roles:
            system.policy.rbac.assign(actor, *roles)

    def _datastore(self, system: SystemModel) -> None:
        start = self._peek()
        anonymised = False
        if self._at_keyword("anonymised"):
            self._next()
            anonymised = True
        self._expect_keyword("datastore")
        name = self._name()
        system.spans.record(("datastore", name),
                            start.line, start.column)
        self._expect_keyword("schema")
        schema_name = self._name()
        if schema_name not in system.schemas:
            self._fail(
                f"datastore {name!r} references undefined schema "
                f"{schema_name!r}")
        description = self._optional_desc()
        system.add_datastore(Datastore(
            name, system.schemas[schema_name], anonymised, description))

    def _service(self, system: SystemModel) -> None:
        keyword = self._expect_keyword("service")
        name = self._name()
        system.spans.record(("service", name),
                            keyword.line, keyword.column)
        service = Service(name, description=self._optional_desc())
        self._expect_punct("{")
        while self._at_keyword("flow"):
            flow, token = self._flow()
            service.add_flow(flow)
            system.spans.record(("flow", name, flow.order),
                                token.line, token.column)
        self._expect_punct("}")
        system.add_service(service)

    def _flow(self) -> Tuple[Flow, Token]:
        keyword = self._expect_keyword("flow")
        order = self._number("flow order")
        source = self._name()
        arrow = self._next()
        if arrow.type != "arrow":
            self._fail(f"expected '->', found {arrow.value!r}", arrow)
        target = self._name()
        self._expect_keyword("fields")
        fields = self._namelist()
        if not fields:
            self._fail("a flow must carry at least one field")
        purpose = ""
        if self._at_keyword("purpose"):
            self._next()
            purpose = self._string("purpose")
        return Flow(order, source, target, tuple(fields), purpose), \
            keyword

    def _acl(self, system: SystemModel) -> None:
        self._expect_keyword("acl")
        self._expect_punct("{")
        while self._at_keyword("allow"):
            self._grant(system)
        self._expect_punct("}")

    def _grant(self, system: SystemModel) -> None:
        keyword = self._expect_keyword("allow")
        subject = self._name()
        permissions = [self._permission()]
        while self._peek().type == "punct" and self._peek().value == ",":
            self._next()
            permissions.append(self._permission())
        self._expect_keyword("on")
        store = self._name()
        fields: Tuple[str, ...] = ("*",)
        if self._at_keyword("fields"):
            self._next()
            listed = self._namelist()
            if listed:
                fields = tuple(listed)
        # One span per ACL entry *occurrence*: `allow` appends (it
        # never merges), so the index keys duplicated grants to their
        # individual source lines — the shadowed-grant lint rule
        # reports both locations from here.
        index = len(system.policy.acl)
        system.policy.allow(subject, permissions, store, fields)
        system.spans.record(("grant", index),
                            keyword.line, keyword.column)

    def _permission(self) -> Permission:
        token = self._next()
        if token.type != "ident":
            self._fail(f"expected a permission, found {token.value!r}",
                       token)
        try:
            return Permission.from_name(token.value)
        except ValueError as exc:
            self._fail(str(exc), token)
            raise AssertionError("unreachable")


def parse_dsl(text: str, validate: bool = True,
              strict: bool = True) -> SystemModel:
    """Parse DSL text into a :class:`SystemModel`.

    ``validate`` runs structural validation after parsing (strict mode
    raises on errors), matching the builder's behaviour.
    """
    system = _Parser(tokenize(text)).parse_system()
    if validate:
        system.validate(strict=strict)
    return system


def parse_file(path, validate: bool = True,
               strict: bool = True) -> SystemModel:
    """Parse a DSL file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dsl(handle.read(), validate=validate, strict=strict)
