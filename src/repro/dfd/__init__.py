"""Data-flow modelling framework (paper II.A): models, builder, DSL, DOT."""

from .builder import SystemBuilder
from .diff import (
    GrantKey,
    ModelDiff,
    RiskDelta,
    diff_models,
    models_equivalent,
    risk_delta,
)
from .dot import dfd_to_dot
from .model import (
    Actor,
    Datastore,
    Flow,
    NodeKind,
    Service,
    SystemModel,
    USER,
)
from .parser import parse_dsl, parse_file, tokenize
from .spans import SYNTHETIC, Span, SpanTable
from .serializer import (
    canonical_system_dict,
    from_json,
    system_from_dict,
    system_to_dict,
    to_dsl,
    to_json,
)
from .validation import Issue, Severity, validate_system

__all__ = [
    "SystemBuilder",
    "GrantKey",
    "ModelDiff",
    "RiskDelta",
    "diff_models",
    "models_equivalent",
    "risk_delta",
    "dfd_to_dot",
    "Actor",
    "Datastore",
    "Flow",
    "NodeKind",
    "Service",
    "SystemModel",
    "USER",
    "parse_dsl",
    "parse_file",
    "tokenize",
    "SYNTHETIC",
    "Span",
    "SpanTable",
    "canonical_system_dict",
    "from_json",
    "system_from_dict",
    "system_to_dict",
    "to_dsl",
    "to_json",
    "Issue",
    "Severity",
    "validate_system",
]
