"""Diffing system models across design iterations.

MDE lives on iteration: analyse, change the model, re-analyse. This
module makes the change itself a first-class artefact — which actors,
stores, flows and grants were added or removed between two versions —
and pairs it with the risk delta (`repro.core.risk` reports before vs
after), which is exactly the §IV.A loop ("the access policies were
changed accordingly and the risk level was reduced").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .model import SystemModel
from .serializer import system_to_dict


@dataclass(frozen=True)
class GrantKey:
    """Canonical identity of one ACL grant for diffing."""

    subject: str
    store: str
    permission: str
    field: str

    def describe(self) -> str:
        return (f"{self.subject}: {self.permission} on "
                f"{self.store}.{self.field}")


def _grant_keys(system: SystemModel) -> Set[GrantKey]:
    """Grants as (subject, store, permission, field) atoms.

    Wildcard entries are expanded against the store's schema so that
    rewriting ``'*'`` into its explicit field list (as field-scoped
    revocation does) diffs as a no-op, not as churn.
    """
    keys: Set[GrantKey] = set()
    for entry in system.policy.acl:
        if entry.grants_all_fields and entry.store in system.datastores:
            fields = system.datastores[entry.store].field_names()
        else:
            fields = entry.fields
        for permission in entry.permissions:
            for field_name in fields:
                keys.add(GrantKey(entry.subject, entry.store,
                                  permission.value, field_name))
    return keys


def _flow_keys(system: SystemModel) -> Dict[Tuple, str]:
    flows = {}
    for flow in system.all_flows():
        key = (flow.service, flow.order, flow.source, flow.target,
               flow.fields)
        flows[key] = flow.describe()
    return flows


@dataclass
class ModelDiff:
    """The structural difference between two system models."""

    added_actors: Tuple[str, ...] = ()
    removed_actors: Tuple[str, ...] = ()
    added_datastores: Tuple[str, ...] = ()
    removed_datastores: Tuple[str, ...] = ()
    added_services: Tuple[str, ...] = ()
    removed_services: Tuple[str, ...] = ()
    added_flows: Tuple[str, ...] = ()
    removed_flows: Tuple[str, ...] = ()
    added_grants: Tuple[GrantKey, ...] = ()
    removed_grants: Tuple[GrantKey, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not any((
            self.added_actors, self.removed_actors,
            self.added_datastores, self.removed_datastores,
            self.added_services, self.removed_services,
            self.added_flows, self.removed_flows,
            self.added_grants, self.removed_grants,
        ))

    @property
    def widens_access(self) -> bool:
        """Whether the change grants anything it did not before — the
        reviewer's first question about a model change."""
        return bool(self.added_grants)

    @property
    def structural_change(self) -> bool:
        """Whether any node or flow changed (everything except ACL
        grants). Structural changes always invalidate generated LTSs;
        grant-only changes may not (see
        :mod:`repro.engine.incremental`)."""
        return any((
            self.added_actors, self.removed_actors,
            self.added_datastores, self.removed_datastores,
            self.added_services, self.removed_services,
            self.added_flows, self.removed_flows,
        ))

    @property
    def acl_only(self) -> bool:
        """Whether the change touches grants and nothing else."""
        return not self.structural_change and bool(
            self.added_grants or self.removed_grants)

    @property
    def changed_grants(self) -> Tuple[GrantKey, ...]:
        """Every grant atom the change added or removed."""
        return self.added_grants + self.removed_grants

    def touches_permission(self, *permissions: str) -> bool:
        """Whether any added/removed grant carries one of the
        permissions (e.g. ``touches_permission('read')`` asks if the
        change moves anyone's read surface)."""
        wanted = set(permissions)
        return any(grant.permission in wanted
                   for grant in self.changed_grants)

    def describe(self) -> str:
        if self.is_empty:
            return "no structural changes"
        lines: List[str] = []

        def section(title, added, removed, render=str):
            for item in added:
                lines.append(f"+ {title}: {render(item)}")
            for item in removed:
                lines.append(f"- {title}: {render(item)}")

        section("actor", self.added_actors, self.removed_actors)
        section("datastore", self.added_datastores,
                self.removed_datastores)
        section("service", self.added_services, self.removed_services)
        section("flow", self.added_flows, self.removed_flows)
        section("grant", self.added_grants, self.removed_grants,
                render=lambda g: g.describe())
        return "\n".join(lines)


def diff_models(before: SystemModel, after: SystemModel) -> ModelDiff:
    """Structural diff of two models (order-insensitive)."""
    before_flows = _flow_keys(before)
    after_flows = _flow_keys(after)
    before_grants = _grant_keys(before)
    after_grants = _grant_keys(after)

    def added_removed(old, new):
        return (tuple(sorted(set(new) - set(old))),
                tuple(sorted(set(old) - set(new))))

    added_actors, removed_actors = added_removed(
        before.actors, after.actors)
    added_stores, removed_stores = added_removed(
        before.datastores, after.datastores)
    added_services, removed_services = added_removed(
        before.services, after.services)
    return ModelDiff(
        added_actors=added_actors,
        removed_actors=removed_actors,
        added_datastores=added_stores,
        removed_datastores=removed_stores,
        added_services=added_services,
        removed_services=removed_services,
        added_flows=tuple(
            after_flows[k] for k in sorted(
                set(after_flows) - set(before_flows),
                key=lambda key: (key[0], key[1]))),
        removed_flows=tuple(
            before_flows[k] for k in sorted(
                set(before_flows) - set(after_flows),
                key=lambda key: (key[0], key[1]))),
        added_grants=tuple(sorted(
            after_grants - before_grants,
            key=lambda g: (g.subject, g.store, g.permission, g.field))),
        removed_grants=tuple(sorted(
            before_grants - after_grants,
            key=lambda g: (g.subject, g.store, g.permission, g.field))),
    )


def models_equivalent(left: SystemModel, right: SystemModel) -> bool:
    """Full structural equality (serialized form), stronger than
    :func:`diff_models` emptiness (which ignores e.g. descriptions)."""
    return system_to_dict(left) == system_to_dict(right)


@dataclass(frozen=True)
class RiskDelta:
    """Before/after risk comparison for one user."""

    user_name: str
    before_level: object
    after_level: object
    before_events: int
    after_events: int

    @property
    def improved(self) -> bool:
        return self.after_level < self.before_level or (
            self.after_level == self.before_level
            and self.after_events < self.before_events)

    def describe(self) -> str:
        return (
            f"{self.user_name}: {self.before_level.value} "
            f"({self.before_events} events) -> "
            f"{self.after_level.value} ({self.after_events} events)"
        )


def risk_delta(before: SystemModel, after: SystemModel,
               user) -> RiskDelta:
    """Run the disclosure analysis on both versions and compare."""
    from ..core.risk.disclosure import analyse_disclosure
    before_report = analyse_disclosure(before, user)
    after_report = analyse_disclosure(after, user)
    return RiskDelta(
        user_name=user.name,
        before_level=before_report.max_level,
        after_level=after_report.max_level,
        before_events=len(before_report.events),
        after_events=len(after_report.events),
    )
