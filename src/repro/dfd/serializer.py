"""Serialization of system models: dict/JSON and the model DSL.

Two interchange forms are supported:

- **dict/JSON** (:func:`system_to_dict`, :func:`system_from_dict`,
  :func:`to_json`, :func:`from_json`) for programmatic exchange, and
- **the model DSL** (:func:`to_dsl`; parsing lives in
  :mod:`repro.dfd.parser`) — the human-curated design artifact of the
  paper's Step 1.

Both round-trip: ``system_from_dict(system_to_dict(m))`` and
``parse_dsl(to_dsl(m))`` reproduce an equivalent model.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..access import Permission
from ..errors import ModelError
from ..schema import DataSchema, Field, FieldKind, FieldType
from .model import Actor, Datastore, Flow, Service, SystemModel


# -- dict form ---------------------------------------------------------------

def system_to_dict(system: SystemModel) -> Dict:
    """Serialize a system model to a JSON-compatible dict."""
    return {
        "name": system.name,
        "schemas": [_schema_to_dict(s) for s in system.schemas.values()],
        "actors": [
            {
                "name": a.name,
                "role": a.role,
                "description": a.description,
                "originates": list(a.originates),
            }
            for a in system.actors.values()
        ],
        "datastores": [
            {
                "name": d.name,
                "schema": d.schema.name,
                "anonymised": d.anonymised,
                "description": d.description,
            }
            for d in system.datastores.values()
        ],
        "roles": [
            {"name": name, "parents": list(
                system.policy.rbac._roles[name].parents)}
            for name in system.policy.rbac.defined_roles()
        ],
        "assignments": {
            actor: list(roles)
            for actor, roles in system.policy.rbac.assignments().items()
        },
        "services": [
            {
                "name": s.name,
                "description": s.description,
                "flows": [_flow_to_dict(f) for f in s.flows],
            }
            for s in system.services.values()
        ],
        "acl": [
            {
                "subject": e.subject,
                "store": e.store,
                "permissions": [p.value for p in e.permissions],
                "fields": list(e.fields),
            }
            for e in system.policy.acl
        ],
    }


def _schema_to_dict(schema: DataSchema) -> Dict:
    return {
        "name": schema.name,
        "fields": [
            {
                "name": f.name,
                "type": f.ftype.value,
                "kind": f.kind.value,
                "anonymised_of": f.anonymised_of,
                "description": f.description,
            }
            for f in schema
        ],
    }


def _flow_to_dict(flow: Flow) -> Dict:
    return {
        "order": flow.order,
        "source": flow.source,
        "target": flow.target,
        "fields": list(flow.fields),
        "purpose": flow.purpose,
    }


def system_from_dict(data: Dict) -> SystemModel:
    """Rebuild a system model from :func:`system_to_dict` output."""
    try:
        system = SystemModel(data["name"])
    except KeyError:
        raise ModelError("serialized system is missing its name") from None

    for schema_data in data.get("schemas", []):
        fields = [
            Field(
                name=f["name"],
                ftype=FieldType(f.get("type", "string")),
                kind=FieldKind(f.get("kind", "regular")),
                anonymised_of=f.get("anonymised_of"),
                description=f.get("description", ""),
            )
            for f in schema_data.get("fields", [])
        ]
        schema = DataSchema(schema_data["name"])
        # Bypass intra-schema anonymised_of checks: serialized schemas
        # are trusted to be internally consistent as a set.
        schema._fields = {f.name: f for f in fields}
        system.add_schema(schema)

    # Roles before actors, so actor(role=...) reuses definitions.
    for role_data in data.get("roles", []):
        system.policy.rbac.define_role(
            role_data["name"], role_data.get("parents", ()))

    for actor_data in data.get("actors", []):
        system.add_actor(Actor(
            actor_data["name"],
            actor_data.get("role"),
            actor_data.get("description", ""),
            tuple(actor_data.get("originates", ())),
        ))

    for actor, roles in data.get("assignments", {}).items():
        already = system.policy.rbac.assignments().get(actor, ())
        extra = [r for r in roles if r not in already]
        if extra:
            system.policy.rbac.assign(actor, *extra)

    for store_data in data.get("datastores", []):
        schema_name = store_data["schema"]
        if schema_name not in system.schemas:
            raise ModelError(
                f"datastore {store_data['name']!r} references missing "
                f"schema {schema_name!r}"
            )
        system.add_datastore(Datastore(
            store_data["name"],
            system.schemas[schema_name],
            store_data.get("anonymised", False),
            store_data.get("description", ""),
        ))

    for service_data in data.get("services", []):
        service = Service(service_data["name"],
                          description=service_data.get("description", ""))
        for flow_data in service_data.get("flows", []):
            service.add_flow(Flow(
                flow_data["order"],
                flow_data["source"],
                flow_data["target"],
                tuple(flow_data["fields"]),
                flow_data.get("purpose", ""),
            ))
        system.add_service(service)

    for entry_data in data.get("acl", []):
        system.policy.acl.allow(
            entry_data["subject"],
            [Permission(p) for p in entry_data["permissions"]],
            entry_data["store"],
            tuple(entry_data.get("fields", ("*",))),
        )
    return system


def canonical_system_dict(system: SystemModel) -> Dict:
    """A canonical form of :func:`system_to_dict` for fingerprinting.

    Two models that differ only in *construction order* — schemas,
    actors, stores, grants or role assignments added in a different
    sequence — canonicalise identically: every list whose order carries
    no meaning is sorted, and descriptions (pure documentation) are
    dropped. Flow order within a service is semantic (it drives the
    ``sequence`` generation ordering) and is preserved; services
    themselves are sorted by name.
    """
    data = system_to_dict(system)
    for schema in data["schemas"]:
        schema["fields"].sort(key=lambda f: f["name"])
        for field in schema["fields"]:
            del field["description"]
    data["schemas"].sort(key=lambda s: s["name"])
    for actor in data["actors"]:
        del actor["description"]
        actor["originates"] = sorted(actor["originates"])
    data["actors"].sort(key=lambda a: a["name"])
    for store in data["datastores"]:
        del store["description"]
    data["datastores"].sort(key=lambda d: d["name"])
    for role in data["roles"]:
        role["parents"] = sorted(role["parents"])
    data["roles"].sort(key=lambda r: r["name"])
    data["assignments"] = {
        actor: sorted(roles)
        for actor, roles in sorted(data["assignments"].items())
    }
    for service in data["services"]:
        del service["description"]
        service["flows"].sort(key=lambda f: f["order"])
    data["services"].sort(key=lambda s: s["name"])
    for entry in data["acl"]:
        entry["permissions"] = sorted(entry["permissions"])
        entry["fields"] = sorted(entry["fields"])
    data["acl"].sort(key=lambda e: (e["subject"], e["store"],
                                    e["permissions"], e["fields"]))
    return data


def to_json(system: SystemModel, indent: int = 2) -> str:
    return json.dumps(system_to_dict(system), indent=indent)


def from_json(text: str) -> SystemModel:
    return system_from_dict(json.loads(text))


# -- DSL form ------------------------------------------------------------------

def _dsl_name(name: str) -> str:
    """Quote a name unless it is a plain identifier."""
    if name.replace("_", "").isalnum() and not name[0].isdigit():
        return name
    return json.dumps(name)


def _dsl_fields(fields) -> str:
    return "[" + ", ".join(fields) + "]"


def to_dsl(system: SystemModel) -> str:
    """Render a system model in the model DSL (parseable back)."""
    lines: List[str] = [f"system {_dsl_name(system.name)} {{", ""]

    for schema in system.schemas.values():
        lines.append(f"  schema {_dsl_name(schema.name)} {{")
        for field in schema:
            parts = [f"    field {field.name}: {field.ftype.value}"]
            if field.kind is not FieldKind.REGULAR:
                parts.append(f"kind {field.kind.value}")
            if field.anonymised_of is not None:
                parts.append(f"anonymises {field.anonymised_of}")
            if field.description:
                parts.append(f"desc {json.dumps(field.description)}")
            lines.append(" ".join(parts))
        lines.append("  }")
        lines.append("")

    for role_name in system.policy.rbac.defined_roles():
        role = system.policy.rbac._roles[role_name]
        if role.parents:
            lines.append(
                f"  role {_dsl_name(role.name)} parents "
                f"{_dsl_fields(_dsl_name(p) for p in role.parents)}")
        else:
            lines.append(f"  role {_dsl_name(role.name)}")
    if system.policy.rbac.defined_roles():
        lines.append("")

    direct_roles = {}
    for actor in system.actors.values():
        line = f"  actor {_dsl_name(actor.name)}"
        if actor.role is not None:
            line += f" role {_dsl_name(actor.role)}"
        if actor.originates:
            line += f" originates {_dsl_fields(actor.originates)}"
        if actor.description:
            line += f" desc {json.dumps(actor.description)}"
        lines.append(line)
        direct_roles[actor.name] = actor.role
    lines.append("")

    for actor, roles in system.policy.rbac.assignments().items():
        extra = [r for r in roles if r != direct_roles.get(actor)]
        if extra:
            lines.append(
                f"  assign {_dsl_name(actor)} roles "
                f"{_dsl_fields(_dsl_name(r) for r in extra)}")

    for store in system.datastores.values():
        prefix = "anonymised datastore" if store.anonymised else "datastore"
        line = (
            f"  {prefix} {_dsl_name(store.name)} schema "
            f"{_dsl_name(store.schema.name)}")
        if store.description:
            line += f" desc {json.dumps(store.description)}"
        lines.append(line)
    lines.append("")

    for service in system.services.values():
        header = f"  service {_dsl_name(service.name)}"
        if service.description:
            header += f" desc {json.dumps(service.description)}"
        lines.append(header + " {")
        for flow in service.flows:
            line = (
                f"    flow {flow.order} {_dsl_name(flow.source)} -> "
                f"{_dsl_name(flow.target)} fields "
                f"{_dsl_fields(flow.fields)}"
            )
            if flow.purpose:
                line += f" purpose {json.dumps(flow.purpose)}"
            lines.append(line)
        lines.append("  }")
        lines.append("")

    if len(system.policy.acl):
        lines.append("  acl {")
        for entry in system.policy.acl:
            perms = ", ".join(p.value for p in entry.permissions)
            line = (
                f"    allow {_dsl_name(entry.subject)} {perms} on "
                f"{_dsl_name(entry.store)}"
            )
            if not entry.grants_all_fields:
                line += f" fields {_dsl_fields(entry.fields)}"
            lines.append(line)
        lines.append("  }")

    lines.append("}")
    return "\n".join(lines) + "\n"
