"""A second domain case study: a retail loyalty programme.

The paper's motivation is general "online services [that] are becoming
increasingly data-centric" — healthcare is the worked example, but the
method must carry to other domains. This fixture models a retail
loyalty programme with:

- a role *hierarchy* (``head_office`` inheriting ``analytics``), so
  RBAC resolution beyond flat roles is exercised;
- three services (checkout, personalised offers, trend analytics over
  a pseudonymised store);
- a *delete* grant for the data-protection officer, exercising the
  ``delete`` action and its effect on ``could`` variables.

Used by tests and available to users as a template for non-healthcare
modelling.
"""

from __future__ import annotations

from ..consent import UserProfile
from ..dfd import SystemBuilder, SystemModel

CHECKOUT_SERVICE = "Checkout"
OFFERS_SERVICE = "PersonalisedOffers"
ANALYTICS_SERVICE = "TrendAnalytics"


def build_loyalty_system() -> SystemModel:
    """The loyalty-programme model."""
    return (
        SystemBuilder("LoyaltyProgramme")
        .schema("PurchaseSchema", [
            ("customer_id", "string", "identifier"),
            ("postcode", "string", "quasi"),
            ("age_band", "category", "quasi"),
            ("basket", "string", "sensitive"),
            ("spend", "float", "sensitive"),
        ])
        .anonymised_schema("AnonPurchaseSchema", "PurchaseSchema",
                           ["postcode", "age_band", "basket", "spend"])
        .role("analytics")
        .role("head_office", parents=["analytics"])
        .actor("Cashier", role="front_of_house")
        .actor("OffersEngine", role="marketing",
               originates=["basket"])  # derives offer baskets
        .actor("Analyst", role="analytics")
        .actor("MarketingDirector", role="head_office")
        .actor("DataOfficer", role="compliance")
        .datastore("SalesDB", "PurchaseSchema")
        .datastore("TrendsDB", "AnonPurchaseSchema", anonymised=True)
        .service(CHECKOUT_SERVICE,
                 description="record a purchase at the till")
        .flow(1, "User", "Cashier",
              ["customer_id", "postcode", "age_band", "basket",
               "spend"],
              purpose="process purchase")
        .flow(2, "Cashier", "SalesDB",
              ["customer_id", "postcode", "age_band", "basket",
               "spend"],
              purpose="sales record")
        .service(OFFERS_SERVICE,
                 description="personalised offers from purchase history")
        .flow(1, "SalesDB", "OffersEngine",
              ["customer_id", "basket", "spend"],
              purpose="offer generation")
        .flow(2, "OffersEngine", "User", ["basket"],
              purpose="deliver offers")
        .service(ANALYTICS_SERVICE,
                 description="aggregate trends over pseudonymised data")
        .flow(1, "SalesDB", "DataOfficer",
              ["postcode", "age_band", "basket", "spend"],
              purpose="prepare release")
        .flow(2, "DataOfficer", "TrendsDB",
              ["postcode", "age_band", "basket", "spend"],
              purpose="pseudonymise")
        .flow(3, "TrendsDB", "Analyst",
              ["postcode_anon", "age_band_anon", "basket_anon",
               "spend_anon"],
              purpose="trend analysis")
        .allow("Cashier", ["read", "create"], "SalesDB")
        .allow("OffersEngine", "read", "SalesDB",
               ["customer_id", "basket", "spend"])
        .allow("DataOfficer", ["read", "delete"], "SalesDB")
        .allow("DataOfficer", "create", "TrendsDB")
        # grant to the *role*: MarketingDirector inherits via hierarchy
        .allow("analytics", "read", "TrendsDB")
        .build()
    )


def loyalty_member(name: str = "member-0") -> UserProfile:
    """A member who uses checkout and offers but rejected analytics,
    and cares most about the basket contents."""
    return UserProfile(
        name,
        agreed_services=[CHECKOUT_SERVICE, OFFERS_SERVICE],
        sensitivities={"basket": "high", "spend": "medium"},
        default_sensitivity=0.15,
        acceptable_risk="low",
    )
