"""Datasets for the evaluation: Table I's records and synthetic data.

:func:`table1_records` returns the six 2-anonymised records of the
paper's Table I verbatim (age and height generalised, weight raw).
:func:`raw_physical_records` returns plausible pre-anonymisation
records that 2-anonymise *exactly* to Table I under the standard
hierarchies (age bins of 10, height bins of 20) — used to exercise the
full pipeline rather than starting from the released form.

:func:`synthetic_physical_records` draws larger seeded populations for
scalability and ablation benches.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..anonymize import HierarchySet, Interval, NumericHierarchy
from ..datastore import Record, make_records

TABLE1_QUASI_IDENTIFIERS = ("age", "height")
TABLE1_SENSITIVE = "weight"
TABLE1_CLOSENESS_KG = 5.0
TABLE1_CONFIDENCE = 0.9


def table1_records() -> Tuple[Record, ...]:
    """The six sample records of Table I, as released (2-anonymised)."""
    rows = [
        {"age": Interval(30, 40), "height": Interval(180, 200),
         "weight": 100},
        {"age": Interval(30, 40), "height": Interval(180, 200),
         "weight": 102},
        {"age": Interval(20, 30), "height": Interval(180, 200),
         "weight": 110},
        {"age": Interval(20, 30), "height": Interval(180, 200),
         "weight": 111},
        {"age": Interval(20, 30), "height": Interval(160, 180),
         "weight": 80},
        {"age": Interval(20, 30), "height": Interval(160, 180),
         "weight": 110},
    ]
    return make_records(rows)


def raw_physical_records() -> Tuple[Record, ...]:
    """Pre-anonymisation records consistent with Table I.

    Running 2-anonymisation by global recoding with
    :func:`table1_hierarchies` generalises these to exactly the Table I
    release (ages to 30-40/20-30, heights to 180-200/160-180, weights
    untouched).
    """
    rows = [
        {"name": "alice", "age": 34, "height": 185, "weight": 100},
        {"name": "bruno", "age": 38, "height": 190, "weight": 102},
        {"name": "carla", "age": 25, "height": 187, "weight": 110},
        {"name": "deniz", "age": 27, "height": 182, "weight": 111},
        {"name": "erik", "age": 22, "height": 165, "weight": 80},
        {"name": "fatima", "age": 29, "height": 170, "weight": 110},
    ]
    return make_records(rows)


def table1_hierarchies() -> HierarchySet:
    """Generalization hierarchies matching Table I's bins."""
    return HierarchySet([
        NumericHierarchy("age", widths=[10, 20, 40]),
        NumericHierarchy("height", widths=[20, 40], origin=0),
    ])


def synthetic_physical_records(count: int,
                               seed: int = 0) -> Tuple[Record, ...]:
    """A seeded population of physical-attribute records.

    Ages 18-90, heights 150-205 cm, weights correlated with height plus
    noise — enough structure that anonymisation and risk sweeps behave
    like real data rather than uniform noise.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    rows: List[dict] = []
    for index in range(count):
        age = rng.randint(18, 90)
        height = rng.randint(150, 205)
        base_weight = (height - 100) * 0.9
        weight = round(base_weight + rng.gauss(0, 12), 1)
        weight = max(40.0, min(160.0, weight))
        rows.append({
            "name": f"person-{index:05d}",
            "age": age,
            "height": height,
            "weight": weight,
        })
    return make_records(rows)


def synthetic_ehr_rows(count: int, seed: int = 0) -> List[dict]:
    """Plain dict rows for the surgery EHR (used by runtime examples)."""
    issues = ("cough", "back pain", "headache", "rash", "fatigue",
              "fever")
    diagnoses = ("bronchitis", "sciatica", "migraine", "eczema",
                 "anaemia", "influenza")
    treatments = ("antibiotics", "physiotherapy", "analgesics",
                  "topical steroids", "iron supplements", "rest")
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        picked = rng.randrange(len(issues))
        rows.append({
            "name": f"patient-{index:04d}",
            "dob": f"19{rng.randint(40, 99):02d}-"
                   f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            "medical_issues": issues[picked],
            "diagnosis": diagnoses[picked],
            "treatment": treatments[picked],
        })
    return rows
