"""Parametrically scaled system models for engine workloads.

The paper's two case studies are fixed-size; the batch engine needs
*fleets* of structurally varied models. :func:`build_scaled_system`
produces a clinic-shaped system whose actor, field and store counts are
dials, with optional pseudonymised release — the same archetype as
Fig. 1 (collect -> store -> staff reads -> pseudonymised research
release) at any size. Construction is purely parameter-driven and
deterministic, so a (actors, fields, stores, pseudonymise) tuple always
yields the identical model — a requirement for content-addressed
caching of analysis results.

An ``Auditor`` actor always carries a policy-only read grant on the
primary store (no flow prescribes it), so unwanted-disclosure analysis
finds potential-read risk events at every size, mirroring the
Administrator of IV.A.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dfd import SystemBuilder, SystemModel

INTAKE_SERVICE = "Intake"
PROCESSING_SERVICE = "Processing"
RELEASE_SERVICE = "Release"

_KIND_CYCLE = ("quasi", "sensitive", "regular")


def scaled_field_names(fields: int) -> Tuple[str, ...]:
    """The field names of a :func:`build_scaled_system` model."""
    return ("subject_id",) + tuple(f"attr{i}" for i in range(1, fields))


def build_scaled_system(actors: int = 3, fields: int = 4,
                        stores: int = 1, pseudonymise: bool = False,
                        name: Optional[str] = None) -> SystemModel:
    """Build a clinic-shaped model of the requested size.

    Parameters
    ----------
    actors:
        Staff actors (>= 2): a collecting ``Clerk`` plus readers
        ``Staff1``..; an out-of-flow ``Auditor`` (and, when
        pseudonymising, ``Officer`` and ``Researcher``) come on top.
    fields:
        Personal data fields (>= 2): an identifying ``subject_id``
        plus ``attr1``.. cycling quasi / sensitive / regular kinds.
    stores:
        Datastores (>= 1); collected fields are partitioned across
        them round-robin (the identifier goes to every store).
    pseudonymise:
        Add an anonymised release store, an ``Officer`` who
        pseudonymises the primary store's sensitive content and a
        ``Researcher`` reading the release.
    """
    if actors < 2:
        raise ValueError(f"actors must be >= 2, got {actors}")
    if fields < 2:
        raise ValueError(f"fields must be >= 2, got {fields}")
    if stores < 1:
        raise ValueError(f"stores must be >= 1, got {stores}")
    if name is None:
        name = (f"Scaled-a{actors}-f{fields}-s{stores}"
                f"{'-anon' if pseudonymise else ''}")

    field_names = scaled_field_names(fields)
    specs = [("subject_id", "string", "identifier")]
    for index, field_name in enumerate(field_names[1:]):
        specs.append((field_name, "string",
                      _KIND_CYCLE[index % len(_KIND_CYCLE)]))

    # Round-robin partition of the non-identifier fields; every store
    # also keeps the identifier so its records stay linkable.
    partitions: List[List[str]] = [["subject_id"] for _ in range(stores)]
    for index, field_name in enumerate(field_names[1:]):
        partitions[index % stores].append(field_name)

    builder = (
        SystemBuilder(name)
        .schema("RecordSchema", specs)
        .actor("Clerk", role="admin_staff")
        .actor("Auditor", role="it_staff")
    )
    staff = [f"Staff{i}" for i in range(1, actors)]
    for staff_name in staff:
        builder.actor(staff_name, role="clinician")
    for index in range(stores):
        builder.datastore(f"Store{index}", "RecordSchema")

    builder.service(INTAKE_SERVICE,
                    description="collect and shard the record")
    builder.flow(1, "User", "Clerk", list(field_names),
                 purpose="register subject")
    for index, partition in enumerate(partitions):
        builder.flow(index + 2, "Clerk", f"Store{index}", partition,
                     purpose="persist shard")

    builder.service(PROCESSING_SERVICE,
                    description="staff work over the shards")
    for order, staff_name in enumerate(staff, start=1):
        store_index = (order - 1) % stores
        builder.flow(order, f"Store{store_index}", staff_name,
                     partitions[store_index], purpose="process shard")

    for index, partition in enumerate(partitions):
        builder.allow("Clerk", ["create", "read"], f"Store{index}")
    for order, staff_name in enumerate(staff, start=1):
        store_index = (order - 1) % stores
        builder.allow(staff_name, "read", f"Store{store_index}",
                      partitions[store_index])
    # The IV.A-style exposure: a grant no agreed flow ever exercises.
    builder.allow("Auditor", "read", "Store0")

    if pseudonymise:
        release_fields = [f for f in partitions[0] if f != "subject_id"]
        if not release_fields:
            release_fields = list(field_names[1:2])
        builder.anonymised_schema("AnonRecordSchema", "RecordSchema",
                                  release_fields)
        builder.actor("Officer", role="it_staff")
        builder.actor("Researcher", role="research_staff")
        builder.datastore("AnonStore", "AnonRecordSchema",
                          anonymised=True)
        builder.service(RELEASE_SERVICE,
                        description="pseudonymised research release")
        builder.flow(1, "Store0", "Officer", release_fields,
                     purpose="prepare release")
        builder.flow(2, "Officer", "AnonStore", release_fields,
                     purpose="pseudonymise")
        builder.flow(3, "AnonStore", "Researcher",
                     [f"{f}_anon" for f in release_fields],
                     purpose="research analysis")
        builder.allow("Officer", "read", "Store0", release_fields)
        builder.allow("Officer", "create", "AnonStore")
        builder.allow("Researcher", "read", "AnonStore")

    return builder.build()


def build_interleaving_system(width: int) -> SystemModel:
    """``width`` independent user->actor collects — the worst-case
    interleaving archetype (2^width reachable states). The scalability
    and generation benchmarks and the golden-snapshot capture all
    measure this exact model, so it lives here rather than being
    re-declared per bench."""
    builder = SystemBuilder(f"par{width}")
    fields = [f"f{i}" for i in range(width)]
    builder.schema("S", fields)
    for index in range(width):
        builder.actor(f"A{index}")
    builder.service("svc")
    for index in range(width):
        builder.flow(index + 1, "User", f"A{index}", [fields[index]])
    return builder.build()


def build_pipeline_system(depth: int) -> SystemModel:
    """A depth-long disclose chain (linear state space)."""
    builder = SystemBuilder(f"chain{depth}")
    builder.schema("S", ["x"])
    for index in range(depth):
        builder.actor(f"A{index}")
    builder.service("svc")
    builder.flow(1, "User", "A0", ["x"])
    for index in range(depth - 1):
        builder.flow(index + 2, f"A{index}", f"A{index + 1}", ["x"])
    return builder.build()
