"""The paper's case studies as ready-made fixtures (section IV)."""

from .datasets import (
    TABLE1_CLOSENESS_KG,
    TABLE1_CONFIDENCE,
    TABLE1_QUASI_IDENTIFIERS,
    TABLE1_SENSITIVE,
    raw_physical_records,
    synthetic_ehr_rows,
    synthetic_physical_records,
    table1_hierarchies,
    table1_records,
)
from .loyalty import (
    ANALYTICS_SERVICE,
    CHECKOUT_SERVICE,
    OFFERS_SERVICE,
    build_loyalty_system,
    loyalty_member,
)
from .synthetic import (
    INTAKE_SERVICE,
    PROCESSING_SERVICE,
    RELEASE_SERVICE,
    build_scaled_system,
    scaled_field_names,
)
from .healthcare import (
    MEDICAL_SERVICE,
    RESEARCH_SERVICE,
    SURGERY_ACTORS,
    SURGERY_FIELDS,
    build_research_system,
    build_surgery_system,
    surgery_patient,
    tighten_administrator_policy,
)

__all__ = [
    "TABLE1_CLOSENESS_KG",
    "TABLE1_CONFIDENCE",
    "TABLE1_QUASI_IDENTIFIERS",
    "TABLE1_SENSITIVE",
    "raw_physical_records",
    "synthetic_ehr_rows",
    "synthetic_physical_records",
    "table1_hierarchies",
    "table1_records",
    "ANALYTICS_SERVICE",
    "CHECKOUT_SERVICE",
    "OFFERS_SERVICE",
    "build_loyalty_system",
    "loyalty_member",
    "INTAKE_SERVICE",
    "PROCESSING_SERVICE",
    "RELEASE_SERVICE",
    "build_scaled_system",
    "scaled_field_names",
    "MEDICAL_SERVICE",
    "RESEARCH_SERVICE",
    "SURGERY_ACTORS",
    "SURGERY_FIELDS",
    "build_research_system",
    "build_surgery_system",
    "surgery_patient",
    "tighten_administrator_policy",
]
