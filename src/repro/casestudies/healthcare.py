"""The paper's doctors'-surgery case study (Fig. 1, section IV).

Two systems are provided:

- :func:`build_surgery_system` — the healthcare service of Fig. 1:
  five actors (Receptionist, Doctor, Nurse, Administrator, Researcher),
  six data fields (name, dob, appointment, medical_issues, diagnosis,
  treatment), three datastores (Appointments, EHR, AnonEHR) and two
  services (Medical Service, Medical Research Service). With five
  actors and six fields the privacy model carries exactly
  2 x 5 x 6 = 60 state variables, as section II.B computes.

- :func:`build_research_system` — the physical-attributes study behind
  Table I and Fig. 4: age and height quasi-identifiers, weight as the
  sensitive value, a researcher with access to the pseudonymised
  release only.

Both are plain :class:`~repro.dfd.SystemModel` builds; everything the
benches and examples do with them goes through the public API.
"""

from __future__ import annotations

from ..consent import UserProfile
from ..dfd import SystemBuilder, SystemModel

MEDICAL_SERVICE = "MedicalService"
RESEARCH_SERVICE = "MedicalResearchService"

SURGERY_FIELDS = ("name", "dob", "appointment", "medical_issues",
                  "diagnosis", "treatment")
SURGERY_ACTORS = ("Receptionist", "Doctor", "Nurse", "Administrator",
                  "Researcher")


def build_surgery_system() -> SystemModel:
    """The Fig. 1 doctors' surgery model."""
    builder = (
        SystemBuilder("DoctorsSurgery")
        .schema("AppointmentSchema", [
            ("name", "string", "identifier"),
            ("dob", "date", "quasi"),
            ("appointment", "string", "regular"),
        ])
        .schema("EHRSchema", [
            ("name", "string", "identifier"),
            ("dob", "date", "quasi"),
            ("medical_issues", "string", "sensitive"),
            ("diagnosis", "string", "sensitive"),
            ("treatment", "string", "sensitive"),
        ])
        .anonymised_schema("AnonEHRSchema", "EHRSchema",
                           ["dob", "medical_issues", "diagnosis",
                            "treatment"])
        .actor("Receptionist", role="admin_staff",
               originates=["appointment"])
        .actor("Doctor", role="clinician",
               originates=["diagnosis", "treatment"])
        .actor("Nurse", role="clinician")
        .actor("Administrator", role="it_staff")
        .actor("Researcher", role="research_staff")
        .datastore("Appointments", "AppointmentSchema")
        .datastore("EHR", "EHRSchema")
        .datastore("AnonEHR", "AnonEHRSchema", anonymised=True)
    )

    builder = (
        builder
        .service(MEDICAL_SERVICE,
                 description="book an appointment, consult, treat")
        .flow(1, "User", "Receptionist", ["name", "dob"],
              purpose="book appointment")
        .flow(2, "Receptionist", "Appointments",
              ["name", "dob", "appointment"],
              purpose="store appointment")
        .flow(3, "Appointments", "Doctor",
              ["name", "dob", "appointment"],
              purpose="consultation schedule")
        .flow(4, "User", "Doctor", ["medical_issues"],
              purpose="consultation")
        .flow(5, "Doctor", "EHR",
              ["name", "dob", "medical_issues", "diagnosis", "treatment"],
              purpose="record consultation")
        .flow(6, "EHR", "Nurse", ["name", "treatment"],
              purpose="administer treatment")
    )

    builder = (
        builder
        .service(RESEARCH_SERVICE,
                 description="anonymise records for medical research")
        .flow(1, "EHR", "Administrator",
              ["dob", "medical_issues", "diagnosis", "treatment"],
              purpose="prepare research dataset")
        .flow(2, "Administrator", "AnonEHR",
              ["dob", "medical_issues", "diagnosis", "treatment"],
              purpose="pseudonymise records")
        .flow(3, "AnonEHR", "Researcher",
              ["dob_anon", "medical_issues_anon", "diagnosis_anon",
               "treatment_anon"],
              purpose="research analysis")
    )

    builder = (
        builder
        .allow("Receptionist", ["read", "create"], "Appointments")
        .allow("Doctor", "read", "Appointments")
        .allow("Doctor", ["read", "create"], "EHR")
        .allow("Nurse", "read", "EHR", ["name", "treatment"])
        .allow("Administrator", ["read", "delete"], "EHR")
        .allow("Administrator", "create", "AnonEHR")
        .allow("Researcher", "read", "AnonEHR")
    )
    return builder.build()


def tighten_administrator_policy(system: SystemModel) -> SystemModel:
    """The section IV.A remediation: remove the Administrator's read
    access to the sensitive EHR fields, keeping maintenance access to
    the rest. Returns the same system (mutated) for chaining."""
    from ..access import Permission
    ehr_fields = system.datastore("EHR").field_names()
    system.policy.revoke(
        "Administrator", Permission.READ, "EHR",
        fields=["medical_issues", "diagnosis", "treatment"],
        store_fields=ehr_fields,
    )
    return system


def surgery_patient(name: str = "patient-0") -> UserProfile:
    """The IV.A user: agreed to the Medical Service only, highly
    sensitive about the diagnosis, mildly about everything else."""
    return UserProfile(
        name,
        agreed_services=[MEDICAL_SERVICE],
        sensitivities={"diagnosis": "high"},
        default_sensitivity=0.2,
        acceptable_risk="low",
    )


def build_research_system() -> SystemModel:
    """The physical-attributes study of section IV.B (Table I, Fig. 4).

    The researcher may read only the pseudonymised release; the two
    read flows model the researcher pulling stature (height + weight)
    and age (age + weight) statistics, which is what makes the
    quasi-identifier sets {height}, {age}, {age, height} reachable in
    the LTS exactly as Fig. 4 steps through them.
    """
    return (
        SystemBuilder("PhysicalAttributesStudy")
        .schema("PhysicalSchema", [
            ("name", "string", "identifier"),
            ("age", "int", "quasi"),
            ("height", "int", "quasi"),
            ("weight", "float", "sensitive"),
        ])
        .anonymised_schema("AnonPhysicalSchema", "PhysicalSchema",
                           ["age", "height", "weight"])
        .actor("Clinician", role="clinician")
        .actor("DataManager", role="it_staff")
        .actor("Researcher", role="research_staff")
        .datastore("HealthRecords", "PhysicalSchema")
        .datastore("AnonHealthRecords", "AnonPhysicalSchema",
                   anonymised=True)
        .service("HealthCheckService",
                 description="collect physical attributes")
        .flow(1, "User", "Clinician", ["name", "age", "height", "weight"],
              purpose="health check")
        .flow(2, "Clinician", "HealthRecords",
              ["name", "age", "height", "weight"],
              purpose="record measurements")
        .service("ResearchService",
                 description="statistics over the pseudonymised release")
        .flow(1, "HealthRecords", "DataManager",
              ["age", "height", "weight"],
              purpose="prepare release")
        .flow(2, "DataManager", "AnonHealthRecords",
              ["age", "height", "weight"],
              purpose="2-anonymise")
        .flow(3, "AnonHealthRecords", "Researcher",
              ["height_anon", "weight_anon"],
              purpose="stature statistics")
        .flow(4, "AnonHealthRecords", "Researcher",
              ["age_anon", "weight_anon"],
              purpose="age statistics")
        .allow("Clinician", ["read", "create"], "HealthRecords")
        .allow("DataManager", "read", "HealthRecords",
               ["age", "height", "weight"])
        .allow("DataManager", "create", "AnonHealthRecords")
        .allow("Researcher", "read", "AnonHealthRecords")
        .build()
    )
