"""Transitive data-flow closure over the DFD graph.

A sound over-approximation of the exact LTS semantics in
:mod:`repro.core.generation`, computed directly on the model — linear
in model size, no state explosion (von Maltitz et al., "Privacy
Assessment of Software Architectures based on Static Taint Analysis").
The closure answers "can field F ever reach actor A" and, when the
answer is *no everywhere that matters*, proves the exact disclosure
analyzer will report zero risk events, so exact generation can be
skipped for the model.

The fixpoint propagates **taint atoms** — ``("actor", name, field)``
for an actor holding a field, ``("store", name, field)`` for a store
containing one — through every mechanism the exact generator has:

* USER-source flows are always ready; their target gains the fields.
* actor-source flows are ready once the source holds every
  non-originated field (originated fields materialise on firing,
  exactly :func:`_originated_gain`'s rule).
* flows into an anonymised store rename fields via
  :func:`repro.schema.anon_name` when the pseudonym is in the store's
  schema — the pseudonymisation edge.
* store-source flows are ready once every field is present; a field
  outside the store's content universe makes the flow never ready
  (mirroring ``_FlowRecord.never_ready``).
* potential reads (the access-policy grants): a potential-read actor
  gains every reachable stored field the policy lets it read. The
  gain feeds back into the fixpoint — an actor whose only path onward
  starts from a policy read still propagates.

Soundness direction: the closure ignores joint readiness (each field
propagates independently), ignores flow ordering, and ignores deletes
(contents only ever shrink through them), so its reachable set is a
superset of anything the exact state space can produce. Conditions
that would make exact generation *raise* rather than run — unknown
endpoints, unsupported endpoint combinations, an empty flow
selection, invalid initial store contents — become ``blockers``: the
model is conservatively not clean and is never screened out.

The one accepted divergence: a screened-clean model bypasses the
exact generator's resource limits (``max_states`` /
``StateLimitExceeded``), since no state space is built at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core import GenerationOptions
from ..dfd import SystemModel
from ..dfd.model import USER, NodeKind
from ..errors import ModelError
from ..schema import anon_name

#: A taint atom: ("actor"|"store", node name, field name).
Atom = Tuple[str, str, str]


def content_universe(system: SystemModel) -> Dict[str, FrozenSet[str]]:
    """Per store, the fields it can ever contain.

    Mirrors ``StateCodec``'s content universe exactly: the store's
    schema plus every extra field an inbound actor->store flow writes
    (after pseudonym renaming) — validation normally forbids
    non-schema writes, but generation never required it.
    """
    extra: Dict[str, set] = {}
    for flow in system.all_flows():
        if flow.target in system.datastores and \
                flow.source in system.actors:
            store = system.datastores[flow.target]
            for field_name in flow.fields:
                if store.anonymised and \
                        anon_name(field_name) in store.schema:
                    field_name = anon_name(field_name)
                extra.setdefault(flow.target, set()).add(field_name)
    universe: Dict[str, FrozenSet[str]] = {}
    for store_name, store in system.datastores.items():
        names = set(store.field_names()) | extra.get(store_name, set())
        universe[store_name] = frozenset(names)
    return universe


@dataclass(frozen=True)
class TaintReport:
    """The closure's verdicts for one (model, generation options) pair.

    ``content_atoms`` / ``actor_atoms`` are the reachable taint sets;
    ``potential_read_fields`` maps each potential-read actor to the
    reachable stored fields the policy lets it read (each such pair is
    a possible exact READ event); ``flow_read_fields`` maps actors
    targeted by a fireable store->actor flow to the fields read that
    way. ``blockers`` are conservative not-clean reasons — conditions
    under which exact generation would raise.
    """

    system_name: str
    options_key: Optional[tuple]
    content_atoms: FrozenSet[Tuple[str, str]]
    actor_atoms: FrozenSet[Tuple[str, str]]
    potential_read_fields: Mapping[str, FrozenSet[str]]
    flow_read_fields: Mapping[str, FrozenSet[str]]
    blockers: Tuple[str, ...]
    universe: Mapping[str, FrozenSet[str]]
    parents: Mapping[Atom, Tuple[str, Tuple[Atom, ...]]] = \
        field(repr=False, default_factory=dict)

    # -- per-(field, actor) verdicts ------------------------------------------

    def reaches(self, field_name: str, actor: str) -> bool:
        """Can ``field_name`` ever reach ``actor``? (over-approximate)

        The data subject trivially "reaches" every field about itself.
        When the closure hit a blocker, every pair conservatively
        answers yes — no impossibility claim survives a model that
        exact generation would refuse to analyse.
        """
        if actor == USER:
            return True
        if self.blockers:
            return True
        return (actor, field_name) in self.actor_atoms

    def unreachable_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """Every (field, actor) pair proven impossible, sorted."""
        if self.blockers:
            return ()
        fields = sorted({f for fields in self.universe.values()
                         for f in fields})
        pairs = []
        for actor in sorted(self.actors()):
            for field_name in fields:
                if not self.reaches(field_name, actor):
                    pairs.append((field_name, actor))
        return tuple(pairs)

    def actors(self) -> Tuple[str, ...]:
        return tuple(sorted({a for a, _ in self.actor_atoms} |
                            set(self.potential_read_fields) |
                            set(self.flow_read_fields)))

    # -- risk-event verdicts ---------------------------------------------------

    def flagged_actors(self) -> Tuple[str, ...]:
        """Actors that can appear as the reader of an exact READ event."""
        return tuple(sorted(set(self.potential_read_fields) |
                            set(self.flow_read_fields)))

    def clean_for(self, non_allowed) -> bool:
        """Taint-clear for a user whose non-allowed set is given?

        True proves the exact disclosure analyzer reports zero risk
        events for any user with exactly this non-allowed actor set
        (risk events are READ transitions by non-allowed actors).
        """
        if self.blockers:
            return False
        bad = set(non_allowed)
        return not (bad & set(self.potential_read_fields) or
                    bad & set(self.flow_read_fields))

    # -- witnesses -------------------------------------------------------------

    def witness_path(self, field_name: str, actor: str,
                     limit: int = 12) -> Tuple[str, ...]:
        """A derivation chain showing *why* (field, actor) is reachable.

        Empty for unreachable pairs (and for the trivially-reachable
        data subject). Each entry is one human-readable closure step,
        seed first.
        """
        atom: Atom = ("actor", actor, field_name)
        if atom not in self.parents:
            return ()
        steps: List[str] = []
        seen = set()

        def walk(current: Atom) -> None:
            if current in seen or len(steps) >= limit:
                return
            seen.add(current)
            description, prereqs = self.parents[current]
            for prereq in prereqs:
                walk(prereq)
            if len(steps) < limit and description not in steps:
                steps.append(description)

        walk(atom)
        return tuple(steps)


class _Rule:
    """One compiled flow: prerequisites -> gained atoms."""

    __slots__ = ("need", "gains", "description", "read_target",
                 "read_fields")

    def __init__(self, need: Sequence[Atom], gains: Sequence[Atom],
                 description: str,
                 read_target: Optional[str] = None,
                 read_fields: Tuple[str, ...] = ()):
        self.need = tuple(need)
        self.gains = tuple(gains)
        self.description = description
        self.read_target = read_target
        self.read_fields = read_fields


def compute_taint(system: SystemModel,
                  options: Optional[GenerationOptions] = None
                  ) -> TaintReport:
    """Run the closure to fixpoint and return the verdicts."""
    blockers: List[str] = []
    universe = content_universe(system)
    reached: set = set()
    parents: Dict[Atom, Tuple[str, Tuple[Atom, ...]]] = {}

    def add(atom: Atom, description: str,
            prereqs: Tuple[Atom, ...] = ()) -> bool:
        if atom in reached:
            return False
        reached.add(atom)
        parents[atom] = (description, prereqs)
        return True

    # -- flow selection (mirrors _compiled_flows) -----------------------------
    if options is None or options.services is None:
        names = tuple(system.services)
    else:
        names = tuple(options.services)
    flows = []
    for name in names:
        try:
            flows.extend(system.service(name).flows)
        except ModelError as error:
            blockers.append(str(error))
    if not flows and not blockers:
        blockers.append(
            "no flows selected for generation; check the services "
            f"option (selected: {list(names)})")

    # -- seeds: initial store contents (mirrors _initial_packed) --------------
    if options is not None:
        for store_name, fields in sorted(
                options.initial_store_contents.items()):
            try:
                store = system.datastore(store_name)
            except ModelError as error:
                blockers.append(str(error))
                continue
            for field_name in fields:
                if field_name not in store.schema:
                    blockers.append(
                        f"initial contents: field {field_name!r} is "
                        f"not in datastore {store_name!r}")
                else:
                    add(("store", store_name, field_name),
                        f"store {store_name!r} initially holds "
                        f"{field_name!r}")

    # -- compile flows to closure rules ---------------------------------------
    rules: List[_Rule] = []
    for flow in flows:
        try:
            source_kind = system.node_kind(flow.source)
            target_kind = system.node_kind(flow.target)
        except ModelError as error:
            blockers.append(str(error))
            continue
        where = flow.describe()
        if source_kind is NodeKind.USER and \
                target_kind is NodeKind.ACTOR:
            rules.append(_Rule(
                (), [("actor", flow.target, f) for f in flow.fields],
                f"flow {where}: the user sends "
                f"{sorted(flow.fields)} to {flow.target!r}"))
            continue
        if source_kind is NodeKind.ACTOR:
            originated = set(system.actors[flow.source].originates)
            need = [("actor", flow.source, f) for f in flow.fields
                    if f not in originated]
            # Firing materialises originated fields at the source
            # (exactly _originated_gain).
            gains: List[Atom] = [("actor", flow.source, f)
                                 for f in flow.fields if f in originated]
            if target_kind is NodeKind.ACTOR:
                gains.extend(("actor", flow.target, f)
                             for f in flow.fields)
                rules.append(_Rule(
                    need, gains,
                    f"flow {where}: {flow.source!r} discloses "
                    f"{sorted(flow.fields)} to {flow.target!r}"))
                continue
            if target_kind is NodeKind.USER:
                rules.append(_Rule(
                    need, gains,
                    f"flow {where}: {flow.source!r} returns "
                    f"{sorted(flow.fields)} to the user"))
                continue
            if target_kind is NodeKind.DATASTORE:
                store = system.datastore(flow.target)
                for field_name in flow.fields:
                    stored = field_name
                    if store.anonymised and \
                            anon_name(field_name) in store.schema:
                        stored = anon_name(field_name)
                    gains.append(("store", store.name, stored))
                action = "pseudonymises" if store.anonymised \
                    else "stores"
                rules.append(_Rule(
                    need, gains,
                    f"flow {where}: {flow.source!r} {action} "
                    f"{sorted(flow.fields)} into {store.name!r}"))
                continue
        if source_kind is NodeKind.DATASTORE and \
                target_kind is NodeKind.ACTOR:
            store_universe = universe.get(flow.source, frozenset())
            if any(f not in store_universe for f in flow.fields):
                # mirrors _FlowRecord.never_ready: the required
                # contents can never exist, the flow can never fire.
                continue
            rules.append(_Rule(
                [("store", flow.source, f) for f in flow.fields],
                [("actor", flow.target, f) for f in flow.fields],
                f"flow {where}: {flow.target!r} reads "
                f"{sorted(flow.fields)} from {flow.source!r}",
                read_target=flow.target, read_fields=flow.fields))
            continue
        blockers.append(
            f"flow {where} has an unsupported endpoint combination "
            f"({source_kind.value} -> {target_kind.value})")

    # -- potential-read configuration -----------------------------------------
    potential_actors: Tuple[str, ...] = ()
    if options is not None and options.include_potential_reads:
        if options.potential_read_actors is not None:
            potential_actors = tuple(sorted(
                options.potential_read_actors))
        else:
            potential_actors = tuple(sorted(system.actors))
    can_read = system.policy.can_read

    # -- fixpoint --------------------------------------------------------------
    flow_read_fields: Dict[str, set] = {}
    potential_read_fields: Dict[str, set] = {}
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if any(atom not in reached for atom in rule.need):
                continue
            if rule.read_target is not None:
                have = flow_read_fields.setdefault(
                    rule.read_target, set())
                if not set(rule.read_fields) <= have:
                    have.update(rule.read_fields)
                    changed = True
            for atom in rule.gains:
                if add(atom, rule.description, rule.need):
                    changed = True
        for actor in potential_actors:
            for store_name, store_fields in universe.items():
                for field_name in store_fields:
                    atom = ("store", store_name, field_name)
                    if atom not in reached:
                        continue
                    if not can_read(actor, store_name, field_name):
                        continue
                    have = potential_read_fields.setdefault(
                        actor, set())
                    if field_name not in have:
                        have.add(field_name)
                        changed = True
                    if add(("actor", actor, field_name),
                           f"policy: {actor!r} may read "
                           f"{field_name!r} from {store_name!r}",
                           (atom,)):
                        changed = True

    return TaintReport(
        system_name=system.name,
        options_key=options.cache_key() if options is not None
        else None,
        content_atoms=frozenset(
            (node, f) for kind, node, f in reached if kind == "store"),
        actor_atoms=frozenset(
            (node, f) for kind, node, f in reached if kind == "actor"),
        potential_read_fields={
            actor: frozenset(fields)
            for actor, fields in potential_read_fields.items()},
        flow_read_fields={
            actor: frozenset(fields)
            for actor, fields in flow_read_fields.items()},
        blockers=tuple(blockers),
        universe=universe,
        parents=parents,
    )
