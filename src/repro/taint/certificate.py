"""Taint certificates: cacheable impossibility assertions.

A :class:`TaintCertificate` is the durable distillation of a
:class:`~repro.taint.closure.TaintReport`: a content-fingerprinted
artifact asserting which (field, actor) disclosures are *impossible*
for one (model, generation options) pair. The engine caches it under
a taint-stage key (see :func:`repro.engine.fingerprint.taint_stage_key`)
and uses :meth:`TaintCertificate.clean_for` to skip exact LTS
generation for disclosure jobs the closure already clears.

Unlike the report, the certificate carries no witness chains — only
the facts that decide verdicts and survival, so its fingerprint is a
stable content address.

Survival under model edits is the precision contract with
:mod:`repro.engine.incremental`: an ACL-only edit that adds read
grants exclusively on **untracked** atoms — (store, field) pairs the
closure proved unreachable — cannot change any verdict, so the
certificate survives verbatim even though the LTS stage (whose
could-read display vectors see every grant) is invalidated. The one
hazard is wildcard grants: ``AclEntry.covers`` matches *any* field of
a store for a ``*`` entry, while :func:`repro.dfd.diff.diff_models`
expands wildcards against the store's schema only. Stores that track
reachable non-schema fields (pseudonym spillover, extra-write flows)
are therefore recorded in ``nonschema_tracked_stores`` and any
read-grant addition on them invalidates the certificate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..access.acl import ALL_FIELDS
from ..core import GenerationOptions
from ..dfd import ModelDiff, SystemModel
from .closure import TaintReport, compute_taint

#: Version of the certificate payload contract; part of the
#: fingerprint and of the engine's taint-stage cache key. Bump on any
#: change to the closure rules or the certificate layout.
CERT_FORMAT = 1


def _stable_hash(data) -> str:
    """sha256 over canonical JSON (sorted keys, no whitespace).

    Local twin of :func:`repro.engine.fingerprint.stable_hash` — the
    taint package must stay importable without the engine.
    """
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TaintCertificate:
    """What the closure proved, in survivable, fingerprintable form.

    ``tracked_atoms`` are the reachable (store, field) content pairs;
    everything outside them is proven impossible.
    ``potential_flags`` / ``flow_read_targets`` are per-actor sorted
    field tuples naming every way an exact READ event can arise.
    ``blockers`` are conservative not-clean reasons (exact generation
    would raise). ``model_fp`` / ``options_key`` pin the inputs the
    certificate speaks for.
    """

    model_fp: str
    options_key: Optional[tuple]
    tracked_atoms: Tuple[Tuple[str, str], ...]
    nonschema_tracked_stores: Tuple[str, ...]
    potential_flags: Tuple[Tuple[str, Tuple[str, ...]], ...]
    flow_read_targets: Tuple[Tuple[str, Tuple[str, ...]], ...]
    blockers: Tuple[str, ...]

    # -- verdicts --------------------------------------------------------------

    def flagged_actors(self) -> Tuple[str, ...]:
        """Actors that can appear as the reader of an exact READ event."""
        return tuple(sorted({a for a, _ in self.potential_flags} |
                            {a for a, _ in self.flow_read_targets}))

    def clean_for(self, non_allowed) -> bool:
        """Taint-clear for a user with this non-allowed actor set?

        True proves the exact disclosure analyzer reports zero risk
        events for any such user (risk events are READ transitions by
        non-allowed actors).
        """
        if self.blockers:
            return False
        bad = set(non_allowed)
        return not bad & set(self.flagged_actors())

    # -- survival under model edits -------------------------------------------

    def survives_acl_change(self, diff: ModelDiff) -> bool:
        """Does an ACL-only edit leave every verdict intact?

        The caller must already have established that nothing outside
        the ACL changed (see
        :func:`repro.engine.incremental.certificate_survives`).
        Read-grant *removals* only shrink the exact policy-read
        surface, so the over-approximation stays sound; create/delete
        grants never feed a READ event. Only read-grant *additions*
        can widen reachability — and only when they touch a tracked
        atom (or a store whose wildcard coverage the diff cannot
        enumerate, see module docstring).
        """
        if diff.structural_change:
            return False
        tracked = set(self.tracked_atoms)
        tracked_stores = {store for store, _ in tracked}
        risky_stores = set(self.nonschema_tracked_stores)
        for grant in diff.added_grants:
            if grant.permission != "read":
                continue
            if grant.store in risky_stores:
                return False
            if grant.field == ALL_FIELDS:
                if grant.store in tracked_stores:
                    return False
                continue
            if (grant.store, grant.field) in tracked:
                return False
        return True

    def rebind(self, model_fp: str) -> "TaintCertificate":
        """The same certificate re-pinned to an edited model's
        fingerprint (valid only when the edit provably survives)."""
        return replace(self, model_fp=model_fp)

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """The certificate's content address."""
        return _stable_hash([
            "taint-certificate",
            CERT_FORMAT,
            self.model_fp,
            self.options_key,
            self.tracked_atoms,
            self.nonschema_tracked_stores,
            self.potential_flags,
            self.flow_read_targets,
            self.blockers,
        ])

    def describe(self) -> str:
        flagged = self.flagged_actors()
        status = "blocked" if self.blockers else (
            "flags " + ", ".join(flagged) if flagged else "clean")
        return (f"taint certificate {self.fingerprint()[:12]}: "
                f"{len(self.tracked_atoms)} tracked atoms, {status}")


def certificate_from_report(
        report: TaintReport, system: SystemModel,
        model_fp: Optional[str] = None) -> TaintCertificate:
    """Distil a closure report into a certificate.

    When ``model_fp`` is omitted the certificate is pinned to a local
    canonical hash of the model (the engine-compatible recipe).
    """
    if model_fp is None:
        from ..dfd import canonical_system_dict
        model_fp = _stable_hash(canonical_system_dict(system))
    nonschema = set()
    for store_name, field_name in report.content_atoms:
        store = system.datastores.get(store_name)
        if store is None or field_name not in store.schema:
            nonschema.add(store_name)
    return TaintCertificate(
        model_fp=model_fp,
        options_key=report.options_key,
        tracked_atoms=tuple(sorted(report.content_atoms)),
        nonschema_tracked_stores=tuple(sorted(nonschema)),
        potential_flags=tuple(sorted(
            (actor, tuple(sorted(fields)))
            for actor, fields in report.potential_read_fields.items())),
        flow_read_targets=tuple(sorted(
            (actor, tuple(sorted(fields)))
            for actor, fields in report.flow_read_fields.items())),
        blockers=report.blockers,
    )


def build_certificate(system: SystemModel,
                      options: Optional[GenerationOptions] = None,
                      model_fp: Optional[str] = None) -> TaintCertificate:
    """Closure + distillation in one call.

    ``model_fp`` lets callers pass an already-computed model
    fingerprint; when omitted the certificate is pinned to a local
    canonical hash of the model via the engine-compatible recipe.
    """
    if model_fp is None:
        from ..dfd import canonical_system_dict
        model_fp = _stable_hash(canonical_system_dict(system))
    report = compute_taint(system, options)
    return certificate_from_report(report, system, model_fp)
