"""Static taint pre-screen: sound disclosure triage on the DFD graph.

A transitive data-flow closure over flows + grants + pseudonymisation
edges (:mod:`repro.taint.closure`), distilled into cacheable
:class:`TaintCertificate` artifacts (:mod:`repro.taint.certificate`)
that the engine uses to skip exact LTS generation for models the
over-approximation already clears. Deliberately engine-free: this
package imports only the model layers, so the engine can import *it*
for cache keys and screening without a cycle.
"""

from .certificate import (
    CERT_FORMAT,
    TaintCertificate,
    build_certificate,
    certificate_from_report,
)
from .closure import TaintReport, compute_taint, content_universe

__all__ = [
    "CERT_FORMAT",
    "TaintCertificate",
    "TaintReport",
    "build_certificate",
    "certificate_from_report",
    "compute_taint",
    "content_universe",
]
