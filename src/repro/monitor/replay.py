"""Replaying datastore audit trails through the privacy monitor.

Runtime datastores record every operation (actor, permission, fields,
counts). This module converts those trails back into
:class:`~repro.monitor.events.ObservedEvent` streams and replays them
against a (risk-annotated) LTS — post-hoc analysis of a system that
ran *without* a live monitor attached, which is how the paper's method
would be retrofitted onto an existing deployment.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..access import Permission
from ..core.actions import ActionType
from ..datastore import Operation, RuntimeDatastore
from .events import ObservedEvent
from .tracker import PrivacyMonitor

_PERMISSION_ACTIONS = {
    Permission.READ: ActionType.READ,
    Permission.CREATE: ActionType.CREATE,
    Permission.DELETE: ActionType.DELETE,
}


def events_from_audit(store: RuntimeDatastore,
                      anonymised: bool = False) -> List[ObservedEvent]:
    """Convert a store's audit trail to observed events.

    ``anonymised`` marks writes into an anonymised store, which the
    model labels ``anon`` rather than ``create``.
    """
    events: List[ObservedEvent] = []
    for index, operation in enumerate(store.audit_trail):
        events.append(_event_from_operation(operation, anonymised,
                                            float(index)))
    return events


def _event_from_operation(operation: Operation, anonymised: bool,
                          timestamp: float) -> ObservedEvent:
    action = _PERMISSION_ACTIONS[operation.permission]
    if action is ActionType.CREATE and anonymised:
        action = ActionType.ANON
    if action is ActionType.READ:
        source, target = operation.store, operation.actor
    else:
        source, target = operation.actor, operation.store
    return ObservedEvent(
        action=action,
        actor=operation.actor,
        fields=operation.fields,
        source=source,
        target=target,
        timestamp=timestamp,
    )


def merged_audit_events(stores: Sequence[Tuple[RuntimeDatastore, bool]]
                        ) -> List[ObservedEvent]:
    """Interleave several stores' audits into one stream.

    Each item is ``(store, anonymised)``. Operations keep their
    per-store order; across stores they are merged by audit position,
    which matches wall-clock order for single-threaded runtimes.
    """
    streams = [events_from_audit(store, anonymised)
               for store, anonymised in stores]
    merged: List[ObservedEvent] = []
    indices = [0] * len(streams)
    while True:
        best = None
        for stream_index, stream in enumerate(streams):
            position = indices[stream_index]
            if position >= len(stream):
                continue
            event = stream[position]
            if best is None or event.timestamp < best[1].timestamp:
                best = (stream_index, event)
        if best is None:
            return merged
        merged.append(best[1])
        indices[best[0]] += 1


def replay(monitor: PrivacyMonitor,
           events: Iterable[ObservedEvent],
           stop_on_divergence: bool = False) -> List[Optional[object]]:
    """Feed an event stream through a monitor.

    Returns the matched transitions (``None`` per diverged event).
    With ``stop_on_divergence`` the replay halts at the first
    unexplained event instead of accumulating alerts.
    """
    matches: List[Optional[object]] = []
    for event in events:
        matched = monitor.observe(event)
        matches.append(matched)
        if matched is None and stop_on_divergence:
            break
    return matches
