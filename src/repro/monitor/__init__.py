"""Runtime monitoring: events, LTS tracking, alerts, simulated runtime."""

from .alerts import (
    Alert,
    AlertSeverity,
    DivergenceAlert,
    RiskAlert,
    divergence_alert,
    risk_alert,
)
from .events import (
    ObservedEvent,
    anon_event,
    collect_event,
    create_event,
    delete_event,
    disclose_event,
    read_event,
)
from .pool import MonitorPool
from .replay import events_from_audit, merged_audit_events, replay
from .runtime import ServiceRuntime
from .tracker import PrivacyMonitor

__all__ = [
    "Alert",
    "AlertSeverity",
    "DivergenceAlert",
    "RiskAlert",
    "divergence_alert",
    "risk_alert",
    "ObservedEvent",
    "anon_event",
    "collect_event",
    "create_event",
    "delete_event",
    "disclose_event",
    "read_event",
    "MonitorPool",
    "events_from_audit",
    "merged_audit_events",
    "replay",
    "ServiceRuntime",
    "PrivacyMonitor",
]
