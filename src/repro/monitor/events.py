"""Runtime privacy events.

The paper's motivation includes "monitor[ing] the privacy risks during
the lifetime of the service (as the users, data, and behaviour may
change)". An :class:`ObservedEvent` is one observed action of the
running system, in the same vocabulary as the model's transitions so
the tracker can walk the LTS alongside the execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .._util import freeze_fields
from ..core.actions import ActionType
from ..dfd.model import USER


@dataclass(frozen=True)
class ObservedEvent:
    """One observed privacy action in the running system.

    ``source``/``target`` are node names exactly as modelled (actor
    names, datastore names, or the user node).
    """

    action: ActionType
    actor: str
    fields: Tuple[str, ...]
    source: str
    target: str
    timestamp: Optional[float] = None

    def __post_init__(self):
        if not self.fields:
            raise ValueError("an event must touch at least one field")
        object.__setattr__(self, "fields", freeze_fields(self.fields))

    def matches(self, transition) -> bool:
        """Whether this event corresponds to an LTS transition.

        Action, acting actor, endpoints and the exact field set must
        agree; field order does not matter.
        """
        label = transition.label
        return (
            label.action is self.action
            and label.actor == self.actor
            and set(label.fields) == set(self.fields)
            and label.source == self.source
            and label.target == self.target
        )

    def describe(self) -> str:
        fields = ", ".join(self.fields)
        return (
            f"{self.action.value}{{{fields}}} by {self.actor} "
            f"({self.source} -> {self.target})"
        )


def collect_event(actor: str, fields, timestamp=None) -> ObservedEvent:
    """The user handed ``fields`` to ``actor``."""
    return ObservedEvent(ActionType.COLLECT, actor, tuple(fields),
                         USER, actor, timestamp)


def disclose_event(source_actor: str, target_actor: str, fields,
                   timestamp=None) -> ObservedEvent:
    """``source_actor`` passed ``fields`` to ``target_actor``."""
    return ObservedEvent(ActionType.DISCLOSE, source_actor,
                         tuple(fields), source_actor, target_actor,
                         timestamp)


def create_event(actor: str, store: str, fields,
                 timestamp=None) -> ObservedEvent:
    """``actor`` wrote ``fields`` into ``store``."""
    return ObservedEvent(ActionType.CREATE, actor, tuple(fields),
                         actor, store, timestamp)


def anon_event(actor: str, store: str, fields,
               timestamp=None) -> ObservedEvent:
    """``actor`` wrote pseudonymised ``fields`` into ``store``."""
    return ObservedEvent(ActionType.ANON, actor, tuple(fields),
                         actor, store, timestamp)


def read_event(actor: str, store: str, fields,
               timestamp=None) -> ObservedEvent:
    """``actor`` read ``fields`` from ``store``."""
    return ObservedEvent(ActionType.READ, actor, tuple(fields),
                         store, actor, timestamp)


def delete_event(actor: str, store: str, fields,
                 timestamp=None) -> ObservedEvent:
    """``actor`` deleted ``fields`` from ``store``."""
    return ObservedEvent(ActionType.DELETE, actor, tuple(fields),
                         actor, store, timestamp)
